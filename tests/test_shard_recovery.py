"""Differential kill-and-recover suite for the supervised sharded engine.

The contract under test: with supervision on, killing, stalling or
poisoning any single shard worker mid-stream leaves the merged results
**bit-identical** to the single-process reference engine — the
supervisor restarts the worker and re-seeds it exactly from its
checkpoint plus a replay of that shard's journal suffix. Once a shard
exhausts its restart budget it degrades: its key-range folds into the
local process (still exact) and the engine reports it as degraded.

Everything here is seeded through ``REPRO_FAULT_SEED`` (default 0) so a
failing chaos run replays byte-for-byte.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import random_events
from repro.engine.engine import StreamEngine
from repro.engine.sharded import ShardedStreamEngine, shard_of
from repro.errors import EngineError, OverloadError
from repro.events.event import Event
from repro.query import parse_query
from repro.resilience.faults import (
    FaultPlan,
    fault_seed,
    hang_shard_pipe,
    kill_shard,
    stall_shard,
)

SEEDS = [fault_seed(0) * 101 + offset for offset in (0, 1, 2)]

QUERIES = {
    "count": "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms GROUP BY g",
    "sum": "PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 40 ms GROUP BY g",
    "avg": "PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 40 ms GROUP BY g",
    "max": "PATTERN SEQ(A, B) AGG MAX(B.v) WITHIN 40 ms GROUP BY g",
    "min": "PATTERN SEQ(A, B) AGG MIN(B.v) WITHIN 40 ms GROUP BY g",
    "neg": "PATTERN SEQ(A, !C, B) AGG COUNT WITHIN 40 ms GROUP BY g",
}


def _attrs(rng, _event_type):
    return {"g": rng.randrange(16), "v": rng.randrange(1000)}


def _stream(plan: FaultPlan, count: int):
    return random_events(plan.rng, "ABC", count, attr_maker=_attrs)


def _reference(events) -> dict:
    engine = StreamEngine()
    for name, text in QUERIES.items():
        engine.register(parse_query(text), name=name)
    for event in events:
        engine.process(event)
    engine.advance_clock(events[-1].ts)
    return engine.results()


def _supervised(shards: int, **overrides) -> ShardedStreamEngine:
    settings = dict(
        shards=shards,
        batch_size=64,
        heartbeat_interval_s=0.05,
        heartbeat_max_missed=2,
        checkpoint_every_batches=4,
    )
    settings.update(overrides)
    engine = ShardedStreamEngine(**settings)
    for name, text in QUERIES.items():
        engine.register(parse_query(text), name=name)
    return engine


def _wait_for(predicate, timeout_s: float = 10.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


# ----- exactness across SIGKILL ---------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shards", [2, 3, 4])
def test_sigkill_mid_stream_is_exact(seed, shards):
    """Kill one worker at a seeded offset; merged results stay
    bit-identical to the single-process reference."""
    plan = FaultPlan(seed)
    events = _stream(plan, 900)
    expected = _reference(events)
    crash_at = plan.crash_point(len(events))
    victim = plan.shard_to_kill(shards)
    with _supervised(shards) as engine:
        for index, event in enumerate(events):
            engine.process(event)
            if index == crash_at:
                kill_shard(engine, victim)
        assert engine.results() == expected
        restarts = sum(h["restarts"] for h in engine.shard_health())
        assert restarts >= 1


@pytest.mark.parametrize("seed", SEEDS)
def test_kill_every_shard_once_is_exact(seed):
    """Serial kills of every worker, one at a time, stay exact."""
    plan = FaultPlan(seed)
    shards = 3
    events = _stream(plan, 900)
    expected = _reference(events)
    stride = len(events) // (shards + 1)
    kill_points = {stride * (index + 1): index for index in range(shards)}
    with _supervised(shards) as engine:
        for index, event in enumerate(events):
            engine.process(event)
            victim = kill_points.get(index)
            if victim is not None:
                kill_shard(engine, victim)
        assert engine.results() == expected
        assert all(h["restarts"] >= 1 for h in engine.shard_health())


def test_heartbeat_detects_idle_death_and_revives_exactly():
    """A worker killed while the router is idle (nothing being sent to
    it) is noticed by the heartbeat thread, not by a failed send."""
    plan = FaultPlan(SEEDS[0])
    events = _stream(plan, 700)
    expected = _reference(events)
    with _supervised(2) as engine:
        for event in events[:350]:
            engine.process(event)
        engine.flush()
        kill_shard(engine, 0)
        assert _wait_for(
            lambda: engine.shard_health()[0]["restarts"] >= 1
        ), "heartbeat supervisor never revived the killed shard"
        for event in events[350:]:
            engine.process(event)
        assert engine.results() == expected


def test_heartbeat_stall_triggers_restart_and_stays_exact():
    """A worker that stops answering pings (but is not dead) is
    restarted after max_missed misses; results stay exact."""
    plan = FaultPlan(SEEDS[1])
    events = _stream(plan, 700)
    expected = _reference(events)
    with _supervised(2) as engine:
        for event in events[:300]:
            engine.process(event)
        engine.flush()
        stall_shard(engine, 1, seconds=60.0)
        assert _wait_for(
            lambda: engine.shard_health()[1]["restarts"] >= 1
        ), "stalled shard was never restarted"
        for event in events[300:]:
            engine.process(event)
        assert engine.results() == expected


def test_poisoned_batch_does_not_crash_router():
    """An event whose payload crashes the worker engine (a string
    where the aggregates need a number) poisons the shard; the router
    must keep serving results — via restart, then degradation — and
    never raise out of ``results()``."""
    plan = FaultPlan(SEEDS[2])
    events = _stream(plan, 400)
    last_ts = events[-1].ts
    with _supervised(2, restart_limit=1) as engine:
        for event in events:
            engine.process(event)
        # One poison B per group: whichever groups have a pending A
        # prefix complete a match and feed "boom" into SUM/AVG/MAX.
        for group in range(16):
            engine.process(
                Event("B", last_ts + 1 + group, {"g": group, "v": "boom"})
            )
        results = engine.results()  # must not raise
        assert set(results) == set(QUERIES)
        health = engine.shard_health()
        assert sum(h["failures"] for h in health) >= 1


# ----- degradation ----------------------------------------------------------


def test_repeated_kills_degrade_shard_into_local_lane():
    plan = FaultPlan(SEEDS[0])
    events = _stream(plan, 800)
    expected = _reference(events)
    with _supervised(2, restart_limit=1) as engine:
        for event in events[:400]:
            engine.process(event)
        engine.flush()
        kill_shard(engine, 0)
        assert _wait_for(
            lambda: engine.shard_health()[0]["restarts"] >= 1
        )
        kill_shard(engine, 0)  # the restarted generation, budget spent
        assert _wait_for(lambda: 0 in engine.degraded_shards)
        assert engine.degraded_shards == {0}
        health = engine.shard_health()[0]
        assert health["degraded"] is True
        assert health["alive"] is False
        for event in events[400:]:
            engine.process(event)
        assert engine.results() == expected
        state = engine.inspect()
        assert state["degraded_shards"] == [0]
        assert state["supervised"] is True


def test_degraded_shard_serves_rows_and_inspect():
    plan = FaultPlan(SEEDS[1])
    events = _stream(plan, 400)
    with _supervised(2, restart_limit=0) as engine:
        for event in events:
            engine.process(event)
        engine.flush()
        kill_shard(engine, 1)
        _wait_for(lambda: 1 in engine.degraded_shards)
        assert engine.degraded_shards == {1}
        rows = engine.query_rows()
        assert {row["query"] for row in rows} == set(QUERIES)
        state = engine.inspect()
        assert state["degraded_shards"] == [1]
        workers = state["workers"]
        assert workers[1].get("degraded") is True


def test_health_snapshot_reports_degraded_shards():
    from repro.obs.inspect import health_snapshot

    plan = FaultPlan(SEEDS[2])
    events = _stream(plan, 300)
    with _supervised(2, restart_limit=0) as engine:
        for event in events:
            engine.process(event)
        engine.flush()
        health = health_snapshot(engine)
        assert health["healthy"] is True
        assert health["degraded_shards"] == []
        assert len(health["shards"]) == 2
        kill_shard(engine, 0)
        _wait_for(lambda: 0 in engine.degraded_shards)
        health = health_snapshot(engine)
        assert health["healthy"] is False
        assert health["status"] == "degraded"
        assert health["degraded_shards"] == [0]


# ----- backpressure ---------------------------------------------------------


def _flood_events(shard: int, shards: int, count: int) -> list[Event]:
    """Events all routed to one shard, padded so the pipe fills fast."""
    key = next(k for k in range(10_000) if shard_of(k, shards) == shard)
    pad = "x" * 4096
    return [
        Event("A", ts, {"g": key, "v": ts, "pad": pad})
        for ts in range(1, count + 1)
    ]


def test_overload_policy_raise():
    with _supervised(
        2,
        batch_size=8,
        heartbeat_interval_s=30.0,
        send_timeout_s=0.2,
        overload_policy="raise",
        checkpoint_every_batches=0,
    ) as engine:
        flood = _flood_events(0, 2, 4000)
        engine.process(flood[0])
        hang_shard_pipe(engine, 0, seconds=8.0)
        with pytest.raises(OverloadError):
            for event in flood[1:]:
                engine.process(event)


def test_overload_policy_shed_oldest_counts_drops():
    with _supervised(
        2,
        batch_size=8,
        heartbeat_interval_s=30.0,
        send_timeout_s=0.2,
        overload_policy="shed_oldest",
        checkpoint_every_batches=0,
    ) as engine:
        flood = _flood_events(0, 2, 2500)
        engine.process(flood[0])
        hang_shard_pipe(engine, 0, seconds=5.0)
        for event in flood[1:]:
            engine.process(event)
        assert engine.shed_events > 0
        assert engine.inspect()["shed_events"] == engine.shed_events


def test_overload_policy_block_recovers_exactly():
    """The block policy restarts the wedged worker and redelivers —
    nothing is lost, so results match the reference exactly."""
    plan = FaultPlan(SEEDS[0])

    def padded(rng, event_type):
        attrs = _attrs(rng, event_type)
        attrs["pad"] = "x" * 2048  # fills the pipe fast; ignored by queries
        return attrs

    events = random_events(plan.rng, "ABC", 600, attr_maker=padded)
    expected = _reference(events)
    with _supervised(
        2,
        batch_size=16,
        heartbeat_interval_s=30.0,
        send_timeout_s=0.2,
        overload_policy="block",
        checkpoint_every_batches=0,
    ) as engine:
        for event in events[:200]:
            engine.process(event)
        hang_shard_pipe(engine, 0, seconds=30.0)
        for event in events[200:]:
            engine.process(event)
        assert engine.results() == expected


# ----- shutdown escalation (satellite) --------------------------------------


def test_close_escalates_to_kill_when_sigterm_is_ignored():
    plan = FaultPlan(SEEDS[1])
    events = _stream(plan, 100)
    engine = _supervised(
        2, heartbeat_interval_s=30.0, shutdown_timeout_s=0.3
    )
    try:
        for event in events:
            engine.process(event)
        pid = engine._workers[0].process.pid
        stall_shard(engine, 0, seconds=60.0, hard=True)
        time.sleep(0.3)  # let the worker install SIG_IGN and stall
    finally:
        engine.close()
    with pytest.raises(ProcessLookupError):
        os.kill(pid, 0)
    # Idempotent: a second close (and re-close via context exit) is a
    # no-op, not an error.
    engine.close()


def test_close_reaps_killed_workers():
    plan = FaultPlan(SEEDS[2])
    events = _stream(plan, 100)
    engine = _supervised(2, heartbeat_interval_s=30.0)
    for event in events:
        engine.process(event)
    pids = [worker.process.pid for worker in engine._workers]
    kill_shard(engine, 0)
    engine.close()
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
    assert engine._workers == []


# ----- unsupervised behavior ------------------------------------------------


def test_unsupervised_dead_shard_raises_engine_error():
    plan = FaultPlan(SEEDS[0])
    events = _stream(plan, 300)
    with _supervised(2, supervise=False) as engine:
        for event in events:
            engine.process(event)
        engine.flush()
        kill_shard(engine, 0)
        time.sleep(0.2)
        with pytest.raises(EngineError):
            engine.results()


# ----- durable per-shard journals -------------------------------------------


def test_disk_shard_journal_layout_and_exact_recovery(tmp_path):
    plan = FaultPlan(SEEDS[1])
    events = _stream(plan, 600)
    expected = _reference(events)
    crash_at = plan.crash_point(len(events))
    with _supervised(
        2, journal_dir=tmp_path, checkpoint_every_batches=2
    ) as engine:
        for index, event in enumerate(events):
            engine.process(event)
            if index == crash_at:
                kill_shard(engine, plan.shard_to_kill(2))
        assert engine.results() == expected
    for shard in (0, 1):
        directory = tmp_path / f"shard-{shard:02d}"
        assert directory.is_dir()
        assert list(directory.glob("journal-*.wal"))


def test_checkpoint_prunes_memory_journal():
    plan = FaultPlan(SEEDS[2])
    events = _stream(plan, 800)
    with _supervised(
        2, batch_size=16, checkpoint_every_batches=2
    ) as engine:
        for event in events:
            engine.process(event)
        engine.flush()
        for worker in engine._workers:
            assert worker.checkpoint is not None
            log = worker.log
            # truncate_to(checkpoint seq) ran: the retained suffix is
            # bounded by the checkpoint cadence, not the stream length.
            assert log.next_seq - log._base <= 16 * 2 + 16
        assert engine.results() == _reference(events)


def test_supervision_with_no_faults_is_invisible():
    """With no injected faults the supervised engine is semantically
    identical to the reference: no restarts, no degradation."""
    plan = FaultPlan(SEEDS[0])
    events = _stream(plan, 500)
    with _supervised(3) as engine:
        for event in events:
            engine.process(event)
        assert engine.results() == _reference(events)
        assert engine.degraded_shards == set()
        assert all(h["restarts"] == 0 for h in engine.shard_health())
        assert engine.shed_events == 0
