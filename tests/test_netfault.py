"""Chaos TCP proxy suite: seeded network faults, bit-identical results.

:class:`NetFaultProxy` sits between the router's framed-TCP transport
and a listening worker and misbehaves like a real network — partition
(silence without FIN), delay, corruption, truncation, reorder. The
unit half of this file pins each fault shape at the channel level:
corruption and reorder must surface as *typed* frame errors (never an
undefined pickle failure), a partition must read as pure silence that
heals without data loss, and a delay must be survivable (a slow link
is not a dead peer).

The differential half is the network-fault acceptance gate: a sharded
run whose every byte crosses the chaos proxy — corrupt frames forcing
revive/reconnect cycles mid-stream — must produce merged aggregates
bit-identical to an uninterrupted single-process reference, i.e. no
event is lost or duplicated no matter what the wire does. Fault
injection is seeded through the suite-wide ``REPRO_FAULT_SEED``
convention, so a failing chaos run replays.
"""

from __future__ import annotations

import os
import re
import socket
import subprocess
import sys
import threading
import time

import pytest

from conftest import random_events
from repro.engine.engine import StreamEngine
from repro.engine.sharded import ShardedStreamEngine
from repro.engine.transport import CHANNEL_ERRORS, FramedChannel
from repro.query import parse_query
from repro.resilience.faults import FaultPlan, fault_seed
from repro.resilience.netfault import NetFaultPlan, NetFaultProxy

SEEDS = [fault_seed(0) * 307 + offset for offset in (0, 1, 2)]

QUERIES = {
    "count": "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms GROUP BY g",
    "sum": "PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 40 ms GROUP BY g",
    "avg": "PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 40 ms GROUP BY g",
    "neg": "PATTERN SEQ(A, !C, B) AGG COUNT WITHIN 40 ms GROUP BY g",
}


def _attrs(rng, _event_type):
    return {"g": rng.randrange(16), "v": rng.randrange(1000)}


def _reference(events) -> dict:
    engine = StreamEngine()
    for name, text in QUERIES.items():
        engine.register(parse_query(text), name=name)
    for event in events:
        engine.process(event)
    engine.advance_clock(events[-1].ts)
    return engine.results()


# ----- channel-level fault shapes --------------------------------------------


class _EchoServer:
    """A raw byte echo behind the proxy: whatever frames arrive come
    straight back, so one FramedChannel can converse with itself."""

    def __init__(self):
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()
        self._threads: list[threading.Thread] = []
        accept = threading.Thread(target=self._accept, daemon=True)
        accept.start()
        self._threads.append(accept)

    def _accept(self) -> None:
        while True:
            try:
                sock, _ = self._listener.accept()
            except OSError:
                return
            pump = threading.Thread(
                target=self._echo, args=(sock,), daemon=True
            )
            pump.start()
            self._threads.append(pump)

    @staticmethod
    def _echo(sock: socket.socket) -> None:
        with sock:
            while True:
                try:
                    chunk = sock.recv(65536)
                except OSError:
                    return
                if not chunk:
                    return
                try:
                    sock.sendall(chunk)
                except OSError:
                    return

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:
            pass


@pytest.fixture()
def echo():
    server = _EchoServer()
    yield server
    server.close()


def _proxied_channel(
    proxy: NetFaultProxy, **channel_kwargs
) -> FramedChannel:
    sock = socket.create_connection(proxy.address, timeout=5.0)
    return FramedChannel(sock, **channel_kwargs)


def test_clean_proxy_forwards_frames_untouched(echo):
    with NetFaultProxy(echo.address, seed=SEEDS[0]) as proxy:
        channel = _proxied_channel(proxy)
        try:
            payloads = ["ping", {"batch": list(range(2000))}, ("t", 1)]
            for payload in payloads:
                channel.send(payload)
                assert channel.poll(5.0)
                assert channel.recv() == payload
        finally:
            channel.close()
        assert all(count == 0 for count in proxy.counts.values())


def test_partition_is_silence_without_fin_and_heals(echo):
    with NetFaultProxy(echo.address, seed=SEEDS[0]) as proxy:
        channel = _proxied_channel(proxy)
        try:
            channel.send("before")
            assert channel.recv() == "before"
            proxy.partition()
            channel.send("held")
            # Pure silence: no frame, but also no EOF/RST — exactly a
            # vanished host, which only a deadline can distinguish.
            assert not channel.poll(0.6)
            assert proxy.live_links() == 1
            proxy.heal()
            assert channel.poll(5.0), "held bytes never flowed on heal"
            assert channel.recv() == "held"
            assert proxy.counts["partition"] == 1
        finally:
            channel.close()


def test_corruption_surfaces_as_typed_channel_error(echo):
    plan = NetFaultPlan(corrupt_rate=1.0)
    with NetFaultProxy(echo.address, plan=plan, seed=SEEDS[1]) as proxy:
        channel = _proxied_channel(proxy, read_deadline_s=2.0)
        try:
            with pytest.raises(CHANNEL_ERRORS):
                # Every chunk is corrupted somewhere; the CRC32 (or the
                # magic scan starving under the read deadline) must
                # fail typed, never as an undefined pickle decode.
                channel.send({"payload": list(range(500))})
                channel.recv()
        finally:
            channel.close()
        assert proxy.counts["corrupt"] >= 1


def test_truncation_tears_the_connection(echo):
    plan = NetFaultPlan(truncate_rate=1.0)
    with NetFaultProxy(echo.address, plan=plan, seed=SEEDS[2]) as proxy:
        channel = _proxied_channel(proxy, read_deadline_s=5.0)
        try:
            with pytest.raises(CHANNEL_ERRORS):
                channel.send({"payload": list(range(5000))})
                channel.recv()
        finally:
            channel.close()
        assert proxy.counts["truncate"] >= 1


def test_reorder_fails_typed_not_undefined(echo):
    plan = NetFaultPlan(reorder_rate=1.0)
    with NetFaultProxy(echo.address, plan=plan, seed=SEEDS[0]) as proxy:
        channel = _proxied_channel(proxy, read_deadline_s=1.5)
        try:
            with pytest.raises(CHANNEL_ERRORS):
                for index in range(4):
                    channel.send(("frame", index))
                    time.sleep(0.05)  # separate chunks on the wire
                for _ in range(4):
                    channel.recv()
        finally:
            channel.close()
        assert proxy.counts["reorder"] >= 1


def test_delay_is_a_slow_link_not_a_dead_peer(echo):
    plan = NetFaultPlan(delay_rate=1.0, delay_ms=(30, 60))
    with NetFaultProxy(echo.address, plan=plan, seed=SEEDS[1]) as proxy:
        channel = _proxied_channel(proxy, read_deadline_s=5.0)
        try:
            started = time.monotonic()
            channel.send("slow")
            assert channel.recv() == "slow"
            assert time.monotonic() - started >= 0.03
            assert proxy.counts["delay"] >= 1
        finally:
            channel.close()


def test_cut_all_reads_as_eof(echo):
    with NetFaultProxy(echo.address, seed=SEEDS[2]) as proxy:
        channel = _proxied_channel(proxy)
        try:
            channel.send("up")
            assert channel.recv() == "up"
            proxy.cut_all()
            with pytest.raises(CHANNEL_ERRORS):
                while True:  # drain any straggler, then hit the EOF
                    assert channel.poll(5.0)
                    channel.recv()
        finally:
            channel.close()


def test_fault_plan_any_rate():
    assert not NetFaultPlan().any_rate()
    assert NetFaultPlan(corrupt_rate=0.01).any_rate()
    assert NetFaultPlan(reorder_rate=0.5).any_rate()


# ----- the network-fault differential suite -----------------------------------


def _spawn_worker() -> tuple[subprocess.Popen, tuple[str, int]]:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.shard_worker",
            "--listen", "127.0.0.1:0", "--orphan-timeout", "120",
        ],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"worker never announced its port: {line!r}"
    return process, (match.group(1), int(match.group(2)))


def _chaos_run(seed: int, plan: NetFaultPlan, events,
               **engine_overrides) -> tuple[dict, list[NetFaultProxy]]:
    """One sharded run whose every worker byte crosses a chaos proxy."""
    workers, proxies = [], []
    try:
        for _ in range(2):
            process, address = _spawn_worker()
            workers.append(process)
            proxies.append(
                NetFaultProxy(address, plan=plan, seed=seed).start()
            )
        settings = dict(
            shards=2,
            batch_size=16,
            heartbeat_interval_s=0.1,
            heartbeat_max_missed=3,
            checkpoint_every_batches=4,
            worker_addresses=[p.address_text for p in proxies],
        )
        settings.update(engine_overrides)
        with ShardedStreamEngine(**settings) as engine:
            for name, text in QUERIES.items():
                engine.register(parse_query(text), name=name)
            for event in events:
                engine.process(event)
            results = engine.results()
        return results, proxies
    finally:
        for proxy in proxies:
            proxy.stop()
        for process in workers:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


@pytest.mark.parametrize("seed", SEEDS)
def test_corrupt_and_slow_network_is_exact(seed):
    """Corruption forces revive/reconnect cycles and delays stretch
    every exchange, yet the merged aggregates stay bit-identical: no
    event lost, none double-counted."""
    plan = FaultPlan(seed)
    events = random_events(plan.rng, "ABC", 900, attr_maker=_attrs)
    expected = _reference(events)
    chaos = NetFaultPlan(
        corrupt_rate=0.02, delay_rate=0.2, delay_ms=(1, 5)
    )
    results, proxies = _chaos_run(seed, chaos, events)
    assert results == expected
    injected = sum(
        proxy.counts["corrupt"] + proxy.counts["delay"]
        for proxy in proxies
    )
    assert injected >= 1, "the chaos plan injected nothing"


def test_partition_heal_mid_stream_is_exact():
    """A sub-deadline partition is a slow link: the run rides it out
    without a revive and stays exact (the deadline/backoff machinery
    must not confuse held bytes with a dead peer)."""
    plan = FaultPlan(SEEDS[0])
    events = random_events(plan.rng, "ABC", 900, attr_maker=_attrs)
    expected = _reference(events)
    workers, proxies = [], []
    try:
        for _ in range(2):
            process, address = _spawn_worker()
            workers.append(process)
            proxies.append(NetFaultProxy(address, seed=SEEDS[0]).start())
        with ShardedStreamEngine(
            shards=2,
            batch_size=16,
            heartbeat_interval_s=0.2,
            heartbeat_max_missed=20,  # partitions outlast a ping or two
            worker_addresses=[p.address_text for p in proxies],
        ) as engine:
            for name, text in QUERIES.items():
                engine.register(parse_query(text), name=name)
            for index, event in enumerate(events):
                engine.process(event)
                if index == 300:
                    proxies[0].partition()
                elif index == 450:
                    proxies[0].heal()
            assert engine.results() == expected
            assert proxies[0].counts["partition"] == 1
    finally:
        for proxy in proxies:
            proxy.stop()
        for process in workers:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


def test_hard_cut_reconnects_and_stays_exact():
    """Deterministic fault: every proxied connection is hard-closed
    mid-stream; the revive path reconnects through the proxy and
    re-seeds, results exact."""
    plan = FaultPlan(SEEDS[1])
    events = random_events(plan.rng, "ABC", 900, attr_maker=_attrs)
    expected = _reference(events)
    workers, proxies = [], []
    try:
        for _ in range(2):
            process, address = _spawn_worker()
            workers.append(process)
            proxies.append(NetFaultProxy(address, seed=SEEDS[1]).start())
        with ShardedStreamEngine(
            shards=2,
            batch_size=16,
            heartbeat_interval_s=0.1,
            heartbeat_max_missed=3,
            checkpoint_every_batches=4,
            worker_addresses=[p.address_text for p in proxies],
        ) as engine:
            for name, text in QUERIES.items():
                engine.register(parse_query(text), name=name)
            for index, event in enumerate(events):
                engine.process(event)
                if index == 450:
                    for proxy in proxies:
                        proxy.cut_all()
            assert engine.results() == expected
    finally:
        for proxy in proxies:
            proxy.stop()
        for process in workers:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
