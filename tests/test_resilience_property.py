"""Hypothesis property: checkpoint/restore at *any* split point of
*any* stream is invisible — the restored engine's remaining outputs
equal the uninterrupted run, including windows that expire across the
split.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.checkpoint import checkpoint as executor_checkpoint
from repro.core.checkpoint import restore as executor_restore
from repro.core.executor import ASeqEngine
from repro.engine.sinks import CollectSink
from repro.events import Event
from repro.query import seq
from repro.resilience import SupervisedStreamEngine


def event_lists(max_size: int = 30):
    element = st.tuples(
        st.sampled_from("ABCN"),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=9),
    )

    def build(specs):
        events, ts = [], 0
        for event_type, gap, value in specs:
            ts += gap
            events.append(Event(event_type, ts, {"w": value, "id": value % 2}))
        return events

    return st.lists(element, min_size=0, max_size=max_size).map(build)


def split_points():
    return st.integers(min_value=0, max_value=30)


QUERY_MAKERS = {
    "dpc": lambda: seq("A", "B", "C").count().named("q").build(),
    "sem": lambda: seq("A", "B", "C").count().within(ms=7).named("q").build(),
    "negation": lambda: seq("A", "!N", "B").count().within(ms=9)
    .named("q").build(),
    "hpc": lambda: seq("A", "B").where_equal("id").count().within(ms=9)
    .named("q").build(),
    "groupby": lambda: seq("A", "B").group_by("id").count().within(ms=9)
    .named("q").build(),
    "sum": lambda: seq("A", "B").sum("B", "w").within(ms=9)
    .named("q").build(),
}


@settings(max_examples=60, deadline=None)
@given(
    events=event_lists(),
    split=split_points(),
    kind=st.sampled_from(sorted(QUERY_MAKERS)),
)
def test_executor_checkpoint_split_is_invisible(events, split, kind):
    """Per-executor: run to split, checkpoint, restore into a fresh
    executor, finish — aggregate equals the uninterrupted run."""
    split = min(split, len(events))
    query = QUERY_MAKERS[kind]()

    oracle = ASeqEngine(query)
    for event in events:
        oracle.process(event)

    first = ASeqEngine(query)
    for event in events[:split]:
        first.process(event)
    state = executor_checkpoint(first)
    second = executor_restore(QUERY_MAKERS[kind](), state)
    for event in events[split:]:
        second.process(event)
    assert second.result() == oracle.result()


@settings(max_examples=40, deadline=None)
@given(
    events=event_lists(),
    split=split_points(),
    kind=st.sampled_from(["sem", "hpc", "groupby"]),
)
def test_engine_checkpoint_split_preserves_incremental_outputs(
    events, split, kind
):
    """Whole-engine: the restored engine's *remaining emissions* (not
    just the final aggregate) equal the uninterrupted run's tail.

    This exercises the same serialize→JSON→parse→restore path that
    ``recover()`` uses, minus the journal (the split index stands in
    for the journal offset)."""
    import json

    from repro.query.parser import parse_query
    from repro.resilience.checkpointer import (
        engine_state,
        validate_engine_state,
    )

    split = min(split, len(events))
    query = QUERY_MAKERS[kind]()

    oracle = SupervisedStreamEngine()
    oracle_sink = CollectSink()
    oracle.register(query, oracle_sink)
    for event in events:
        oracle.process(event)

    first = SupervisedStreamEngine()
    first_sink = CollectSink()
    first.register(QUERY_MAKERS[kind](), first_sink)
    for event in events[:split]:
        first.process(event)

    state = validate_engine_state(
        json.loads(json.dumps(engine_state(first, journal_seq=split)))
    )
    second = SupervisedStreamEngine()
    second_sink = CollectSink()
    for entry in state["registrations"]:
        restored = executor_restore(
            parse_query(entry["state"]["query"], name=entry["name"]),
            entry["state"],
            vectorized=bool(entry["vectorized"]),
        )
        second.register_executor(entry["name"], restored, second_sink)
    for event in events[split:]:
        second.process(event)

    head = first_sink.values()
    tail = second_sink.values()
    assert head + tail == oracle_sink.values()
    assert second.result("q") == oracle.result("q")
