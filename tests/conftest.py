"""Shared test helpers.

``replay`` drives an engine over an event list; ``events_of`` builds
event lists from compact specs like ``[("A", 1), ("B", 2)]``. The
differential helpers compare any set of engines against the brute-force
oracle on the same stream.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Sequence

import pytest

from repro.baseline.oracle import BruteForceOracle
from repro.events.event import Event
from repro.query.ast import Query


def events_of(*specs: tuple) -> list[Event]:
    """Build events from ``(type, ts)`` or ``(type, ts, attrs)`` tuples."""
    events = []
    for spec in specs:
        if len(spec) == 2:
            event_type, ts = spec
            events.append(Event(event_type, ts))
        else:
            event_type, ts, attrs = spec
            events.append(Event(event_type, ts, attrs))
    return events


def replay(engine: Any, events: Iterable[Event]) -> list[Any]:
    """Feed events through an engine; returns the non-None outputs."""
    outputs = []
    for event in events:
        fresh = engine.process(event)
        if fresh is not None:
            outputs.append(fresh)
    return outputs


def assert_matches_oracle(
    query: Query, engines: Sequence[Any], events: Sequence[Event]
) -> None:
    """Replay everything and compare final results against the oracle."""
    expected = BruteForceOracle(query).aggregate(events)
    for engine in engines:
        replay(engine, events)
        actual = engine.result()
        assert _equalish(actual, expected), (
            f"{type(engine).__name__} disagrees with the oracle: "
            f"{actual!r} != {expected!r} on query\n{query}"
        )


def _equalish(actual: Any, expected: Any) -> bool:
    if isinstance(expected, dict):
        if not isinstance(actual, dict):
            return False
        keys = set(expected) | set(actual)
        return all(
            _equalish(actual.get(k, 0), expected.get(k, 0)) for k in keys
        )
    if actual is None or expected is None:
        return actual == expected
    if isinstance(expected, float) or isinstance(actual, float):
        return abs(actual - expected) < 1e-9
    return actual == expected


def random_events(
    rng: random.Random,
    alphabet: Sequence[str],
    count: int,
    max_gap: int = 3,
    attr_maker=None,
) -> list[Event]:
    """Random in-order events with strictly increasing timestamps."""
    events = []
    ts = 0
    for _ in range(count):
        ts += rng.randint(1, max_gap)
        event_type = rng.choice(list(alphabet))
        attrs = attr_maker(rng, event_type) if attr_maker else None
        events.append(Event(event_type, ts, attrs))
    return events


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xA5EC)
