"""Match funnel: unit semantics + path-invariance differential tests.

The differential classes are the load-bearing part: the six stage
counters must be identical whichever execution path carried the events
(per-event, routed micro-batches, vectorized, sharded), because the
stage semantics are pinned to the runtime's cost accounting, which the
PR 4 differential suite already holds bit-identical across paths.
"""

import random

import pytest

from repro.core.executor import ASeqEngine
from repro.events import Event
from repro.obs.funnel import (
    NULL_FUNNEL,
    STAGES,
    FunnelRecorder,
    NullFunnel,
    funnel_rows,
    funnel_totals,
    get_default_funnel,
    resolve_funnel,
    set_default_funnel,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.query import seq


def make_events(seed, count=600, types="ABC", keys=6, gap=25):
    rng = random.Random(seed)
    ts = 0
    events = []
    for _ in range(count):
        ts += rng.randint(1, gap)
        events.append(
            Event(rng.choice(types), ts, {"k": rng.randrange(keys)})
        )
    return events


class TestQueryFunnelUnit:
    def test_counts_start_at_zero(self):
        fq = FunnelRecorder().for_query("q")
        assert fq.counts() == {stage: 0 for stage in STAGES}

    def test_counts_reflect_increments(self):
        fq = FunnelRecorder().for_query("q")
        fq.routed.inc(3)
        fq.passed.inc(2)
        fq.extended.inc(7)
        fq.emitted.inc()
        counts = fq.counts()
        assert counts["events_routed"] == 3
        assert counts["predicate_pass"] == 2
        assert counts["runs_extended"] == 7
        assert counts["matches_emitted"] == 1
        assert counts["runs_expired"] == 0
        assert counts["negation_blocked"] == 0

    def test_note_ts_first_once_last_max(self):
        fq = FunnelRecorder().for_query("q")
        fq.routed.inc()
        fq.note_ts(50.0)
        fq.note_ts(10.0)  # earlier arrival must not rewind first_ts
        fq.note_ts(90.0)
        snap = fq.snapshot()
        assert snap["first_event_ms"] == 50.0
        assert snap["last_event_ms"] == 90.0

    def test_snapshot_span_is_none_without_routed_events(self):
        fq = FunnelRecorder().for_query("q")
        assert fq.snapshot()["first_event_ms"] is None
        assert fq.snapshot()["last_event_ms"] is None

    def test_sample_due_cadence(self):
        fq = FunnelRecorder(sample_every=4).for_query("q")
        due = [fq.sample_due() for _ in range(8)]
        assert due == [False, False, False, True] * 2

    def test_for_query_get_or_create(self):
        funnel = FunnelRecorder()
        assert funnel.for_query("a") is funnel.for_query("a")
        assert funnel.for_query("a") is not funnel.for_query("b")
        assert funnel.query_names() == ["a", "b"]

    def test_disabled_registry_falls_back_to_private(self):
        funnel = FunnelRecorder(NULL_REGISTRY)
        assert funnel.registry.enabled
        funnel.for_query("q").routed.inc()
        assert funnel.registry.value(
            "repro_funnel_events_routed_total", query="q"
        ) == 1


class TestNullFunnel:
    def test_disabled_and_shared_handle(self):
        assert not NULL_FUNNEL.enabled
        assert NULL_FUNNEL.for_query("a") is NULL_FUNNEL.for_query("b")
        assert NULL_FUNNEL.query_names() == []

    def test_all_operations_are_noops(self):
        fq = NullFunnel().for_query("q")
        fq.routed.inc(10)
        fq.note_ts(5.0)
        assert not fq.sample_due()
        assert fq.counts() == {stage: 0 for stage in STAGES}

    def test_default_install_and_restore(self):
        mine = FunnelRecorder()
        previous = set_default_funnel(mine)
        try:
            assert get_default_funnel() is mine
            assert resolve_funnel(None) is mine
            assert resolve_funnel(NULL_FUNNEL) is NULL_FUNNEL
        finally:
            set_default_funnel(previous)
        assert get_default_funnel() is previous


class TestFunnelRows:
    def test_rows_sum_shard_series(self):
        registry = MetricsRegistry()
        for shard, routed, first, last in (
            ("0", 10, 100.0, 900.0),
            ("1", 4, 250.0, 700.0),
        ):
            registry.counter(
                "repro_funnel_events_routed_total", "h",
                query="q", shard=shard,
            ).inc(routed)
            registry.gauge(
                "repro_funnel_first_event_ms", "h", query="q", shard=shard
            ).set(first)
            registry.gauge(
                "repro_funnel_last_event_ms", "h", query="q", shard=shard
            ).set(last)
        (row,) = funnel_rows(registry)
        assert row["query"] == "q"
        assert row["events_routed"] == 14
        assert row["first_event_ms"] == 100.0
        assert row["last_event_ms"] == 900.0

    def test_span_ignores_idle_shards(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_funnel_events_routed_total", "h", query="q", shard="0"
        ).inc(5)
        registry.gauge(
            "repro_funnel_first_event_ms", "h", query="q", shard="0"
        ).set(300.0)
        registry.gauge(
            "repro_funnel_last_event_ms", "h", query="q", shard="0"
        ).set(800.0)
        # Shard 1 never routed an event; its zero gauges must not
        # drag first_event_ms down to 0.
        registry.counter(
            "repro_funnel_events_routed_total", "h", query="q", shard="1"
        )
        registry.gauge(
            "repro_funnel_first_event_ms", "h", query="q", shard="1"
        )
        (row,) = funnel_rows(registry)
        assert row["first_event_ms"] == 300.0
        assert row["last_event_ms"] == 800.0

    def test_totals_fold(self):
        rows = [
            {stage: 2 for stage in STAGES},
            {stage: 3 for stage in STAGES},
        ]
        assert funnel_totals(rows) == {stage: 5 for stage in STAGES}


def run_per_event(query, events):
    funnel = FunnelRecorder()
    engine = ASeqEngine(query, funnel=funnel)
    for event in events:
        engine.process(event)
    engine.result()  # final expiry sweep, matching results() elsewhere
    return engine.funnel_counts()


def run_batched(query, events, batch=64):
    funnel = FunnelRecorder()
    engine = ASeqEngine(query, funnel=funnel)
    for start in range(0, len(events), batch):
        engine.process_batch(events[start:start + batch])
    engine.result()
    return engine.funnel_counts()


def run_vectorized(query, events):
    funnel = FunnelRecorder()
    engine = ASeqEngine(query, vectorized=True, funnel=funnel)
    for event in events:
        engine.process(event)
    engine.result()
    return engine.funnel_counts()


def run_sharded(query, events, shards=2):
    from repro.engine.sharded import ShardedStreamEngine

    funnel = FunnelRecorder()
    engine = ShardedStreamEngine(
        shards=shards, funnel=funnel, supervise=False
    )
    try:
        engine.register(query, name=query.name or "q")
        engine.run(events)
        engine.results()
        engine.refresh_cost_metrics()  # merges worker funnel snapshots
        (row,) = funnel_rows(engine.funnel.registry)
        return {stage: row[stage] for stage in STAGES}
    finally:
        engine.close()


@pytest.mark.parametrize("seed", [0, 1, 2])
class TestPathInvariance:
    """Identical stage counts on every execution path, per ISSUE 8."""

    def query(self):
        return (
            seq("A", "B")
            .count()
            .within(ms=200)
            .group_by("k")
            .named("q")
            .build()
        )

    def test_batched_matches_per_event(self, seed):
        events = make_events(seed)
        reference = run_per_event(self.query(), events)
        assert run_batched(self.query(), events) == reference
        assert reference["events_routed"] > 0
        assert reference["runs_extended"] > 0

    def test_vectorized_matches_per_event(self, seed):
        events = make_events(seed)
        assert run_vectorized(self.query(), events) == run_per_event(
            self.query(), events
        )

    def test_sharded_matches_per_event(self, seed):
        events = make_events(seed)
        assert run_sharded(self.query(), events) == run_per_event(
            self.query(), events
        )


class TestNegationFunnel:
    def query(self):
        return seq("A", "!C", "B").count().within(ms=200).named("q").build()

    def test_negation_blocked_counts(self):
        events = make_events(7, types="ABC")
        counts = run_per_event(self.query(), events)
        assert counts["negation_blocked"] > 0
        assert counts["runs_expired"] > 0

    def test_negation_paths_agree(self):
        events = make_events(7, types="ABC")
        reference = run_per_event(self.query(), events)
        assert run_batched(self.query(), events) == reference
        assert run_vectorized(self.query(), events) == reference


class TestColumnarFunnelParity:
    """Columnar-lane stage counts and event-time gauges must match the
    per-event path — both when the zero-object kernel engages and when
    a registration falls back through the batch materializer."""

    def run_stream_engine(self, query, events, columnar, batch=97):
        from repro.engine.engine import StreamEngine
        from repro.events.batch import batches_from_events

        funnel = FunnelRecorder()
        engine = StreamEngine(routed=True, vectorized=True, funnel=funnel)
        engine.register(query, name="q")
        if columnar:
            engine.run(batches_from_events(events, batch_size=batch))
        else:
            for event in events:
                engine.process(event)
        engine.results()
        (row,) = funnel_rows(funnel.registry)
        return row

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_kernel_lane_counts_and_watermarks(self, seed):
        query = seq("A", "B").count().within(ms=200).named("q").build()
        events = make_events(seed)
        reference = self.run_stream_engine(query, events, columnar=False)
        columnar = self.run_stream_engine(query, events, columnar=True)
        assert {s: columnar[s] for s in STAGES} == {
            s: reference[s] for s in STAGES
        }
        assert columnar["first_event_ms"] == reference["first_event_ms"]
        assert columnar["last_event_ms"] == reference["last_event_ms"]
        assert reference["events_routed"] > 0
        assert reference["runs_extended"] > 0
        assert reference["matches_emitted"] > 0

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fallback_lane_matches_per_event(self, seed):
        # GROUP BY compiles to HPC, which the kernel cannot consume:
        # the batch→Event materializer must keep the funnel identical.
        query = (
            seq("A", "B")
            .count()
            .within(ms=200)
            .group_by("k")
            .named("q")
            .build()
        )
        events = make_events(seed)
        reference = self.run_stream_engine(query, events, columnar=False)
        columnar = self.run_stream_engine(query, events, columnar=True)
        assert {s: columnar[s] for s in STAGES} == {
            s: reference[s] for s in STAGES
        }
        assert columnar["first_event_ms"] == reference["first_event_ms"]
        assert columnar["last_event_ms"] == reference["last_event_ms"]


class TestLatencySampling:
    def test_sampled_latency_appears_in_rows(self):
        funnel = FunnelRecorder(sample_every=1)
        query = seq("A", "B").count().within(ms=200).named("q").build()
        engine = ASeqEngine(query, funnel=funnel)
        for event in make_events(3, count=200):
            engine.process(event)
        (row,) = funnel_rows(funnel.registry)
        assert row["stage_latency_us"]  # at least one stage sampled
        for stats in row["stage_latency_us"].values():
            assert stats["count"] > 0
            assert stats["mean_us"] >= 0.0
