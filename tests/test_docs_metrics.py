"""Docs lint: every `repro_` metric in src/ is documented.

CI runs this as the docs-lint gate: a new `repro_*` series merged
without a row in docs/OBSERVABILITY.md's metric catalogue fails here,
naming the missing metric.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DOC = REPO / "docs" / "OBSERVABILITY.md"

TOKEN = re.compile(r"repro_[a-z0-9_]+")


def source_metric_names():
    names = set()
    for path in SRC.rglob("*.py"):
        for token in TOKEN.findall(path.read_text(encoding="utf-8")):
            # Tokens ending in "_" are prefixes (startswith checks,
            # f-string stems), not metric names.
            if not token.endswith("_"):
                names.add(token)
    return names


def documented_metric_names():
    names = set()
    for line in DOC.read_text(encoding="utf-8").splitlines():
        if line.startswith("| `"):
            names.update(TOKEN.findall(line))
    return names


def test_observability_doc_exists():
    assert DOC.exists()


def test_every_source_metric_is_documented():
    missing = sorted(source_metric_names() - documented_metric_names())
    assert not missing, (
        "metrics used in src/ but missing from the catalogue table in "
        f"docs/OBSERVABILITY.md: {missing}"
    )


def test_source_actually_defines_metrics():
    # Guards the lint itself: if the regex or layout drifts and the
    # scan comes back empty, the lint would pass vacuously.
    names = source_metric_names()
    assert "repro_funnel_events_routed_total" in names
    assert "repro_query_cost_drift_ratio" in names
    assert len(names) >= 10
