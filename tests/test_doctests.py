"""Every docstring example in the package must actually run.

The examples in module/class docstrings are part of the public
documentation; this collects them all through doctest so they can never
rot silently.
"""

import doctest
import importlib
import pkgutil

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing entry points runs them
        yield importlib.import_module(info.name)


def test_all_docstring_examples_pass():
    total = 0
    failures = []
    for module in _iter_modules():
        results = doctest.testmod(
            module, verbose=False, report=False
        )
        total += results.attempted
        if results.failed:
            failures.append((module.__name__, results.failed))
    assert not failures, f"doctest failures: {failures}"
    # Guard against the suite silently collecting nothing.
    assert total >= 10, f"only {total} doctest examples found"
