"""The mixed-workload router (WorkloadEngine)."""

import random

import pytest

from conftest import random_events, replay
from repro.baseline.oracle import BruteForceOracle
from repro.errors import PlanError
from repro.events import Event
from repro.multi import WorkloadEngine
from repro.query import parse_workload, seq


def q(name, *pattern, win=50, **clauses):
    builder = seq(*pattern).count()
    if win:
        builder = builder.within(ms=win)
    return builder.named(name).build()


class TestRouting:
    def test_shareable_queries_go_shared(self):
        engine = WorkloadEngine(
            [q("q1", "A", "B", "C"), q("q2", "X", "B", "C")]
        )
        assert engine.shared_query_names == ["q1", "q2"]
        assert engine.unshared_query_names == []

    def test_negation_goes_unshared(self):
        engine = WorkloadEngine(
            [
                q("q1", "A", "B", "C"),
                q("q2", "X", "B", "C"),
                q("q3", "A", "!N", "D"),
            ]
        )
        assert engine.shared_query_names == ["q1", "q2"]
        assert engine.unshared_query_names == ["q3"]

    def test_different_window_goes_unshared(self):
        engine = WorkloadEngine(
            [
                q("q1", "A", "B", "C", win=50),
                q("q2", "X", "B", "C", win=50),
                q("q3", "Y", "B", "C", win=999),
            ]
        )
        assert engine.shared_query_names == ["q1", "q2"]
        assert engine.unshared_query_names == ["q3"]

    def test_value_aggregate_goes_unshared(self):
        sum_query = (
            seq("A", "B").sum("B", "w").within(ms=50).named("s").build()
        )
        engine = WorkloadEngine(
            [q("q1", "A", "B", "C"), q("q2", "X", "B", "C"), sum_query]
        )
        assert "s" in engine.unshared_query_names

    def test_nothing_shareable_runs_everything_unshared(self):
        engine = WorkloadEngine([q("q1", "A", "B"), q("q2", "X", "Y")])
        assert engine.shared_query_names == []
        assert len(engine.unshared_query_names) == 2

    def test_unnamed_rejected(self):
        query = seq("A", "B").count().within(ms=5).build()
        with pytest.raises(PlanError):
            WorkloadEngine([query])

    def test_empty_rejected(self):
        with pytest.raises(PlanError):
            WorkloadEngine([])

    def test_describe(self):
        engine = WorkloadEngine(
            [q("q1", "A", "B", "C"), q("q2", "X", "B", "C"),
             q("q3", "A", "!N", "D")]
        )
        text = engine.describe()
        assert "Chop-Connect" in text and "q3" in text


class TestResults:
    def test_mixed_workload_matches_oracle(self):
        rng = random.Random(91)
        kleene_query = (
            seq("A", "B+").count().within(ms=20).named("k").build()
        )
        grouped = (
            seq("A", "B")
            .group_by("ip")
            .count()
            .within(ms=20)
            .named("g")
            .build()
        )
        queries = [
            q("q1", "A", "B", "C", win=20),
            q("q2", "X", "B", "C", win=20),
            kleene_query,
            grouped,
        ]

        def attrs(r, event_type):
            return {"ip": r.choice(["u", "v"])}

        for _ in range(25):
            events = random_events(
                rng, ["A", "B", "C", "X"], 22, attr_maker=attrs
            )
            engine = WorkloadEngine(queries)
            replay(engine, events)
            results = engine.result()
            for query in queries:
                expected = BruteForceOracle(query).aggregate(events)
                actual = results[query.name]
                if isinstance(expected, dict):
                    keys = set(expected) | set(actual)
                    for key in keys:
                        assert actual.get(key, 0) == expected.get(key, 0)
                else:
                    assert actual == expected, query.name

    def test_process_reports_completed_queries(self):
        engine = WorkloadEngine(
            [q("q1", "A", "B", "C"), q("q2", "A", "!N", "D")]
        )
        assert engine.process(Event("A", 1)) is None
        engine.process(Event("B", 2))
        fresh = engine.process(Event("C", 3))
        assert fresh == {"q1": 1}
        fresh = engine.process(Event("D", 4))
        assert fresh == {"q2": 1}

    def test_result_by_name(self):
        engine = WorkloadEngine(
            [q("q1", "A", "B", "C"), q("q2", "X", "B", "C"),
             q("q3", "A", "!N", "D")]
        )
        replay(engine, [Event("A", 1), Event("B", 2), Event("C", 3)])
        assert engine.result("q1") == 1
        assert engine.result("q3") == 0

    def test_from_workload_text(self):
        workload = parse_workload(
            """
            a: PATTERN SEQ(A, B, C) AGG COUNT WITHIN 100 ms;
            b: PATTERN SEQ(X, B, C) AGG COUNT WITHIN 100 ms;
            c: PATTERN SEQ(A, B+)   AGG COUNT WITHIN 100 ms;
            """
        )
        engine = WorkloadEngine(workload)
        assert engine.shared_query_names == ["a", "b"]
        replay(
            engine,
            [Event("A", 1), Event("B", 2), Event("C", 3), Event("X", 4)],
        )
        assert engine.result("a") == 1
        assert engine.result("c") == 1
