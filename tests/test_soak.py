"""Soak tests: long streams, bounded state, periodic invariant checks.

These run an order of magnitude more events than the unit tests and
assert the properties that only show up over time: state stays bounded
by the window, engines never drift apart, and periodic results agree
with an independent recomputation over the raw tail of the stream.
"""

import random

from repro.baseline.oracle import BruteForceOracle
from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.datagen import StockTradeGenerator
from repro.query import parse_query, seq


def test_state_stays_bounded_by_window():
    """Active counters track the window, not the stream length."""
    window_ms = 200
    query = (
        seq("DELL", "IPIX", "AMAT").count().within(ms=window_ms).build()
    )
    engine = ASeqEngine(query)
    high_water = 0
    for event in StockTradeGenerator(mean_gap_ms=1, seed=41).events(40_000):
        engine.process(event)
        high_water = max(high_water, engine.current_objects())
    # DELL arrivals per window ~ window/20 types = 10; leave slack for
    # bursts but fail if state ever tracked the stream (40k events).
    assert high_water < 60


def test_engines_never_drift_on_long_stream():
    """A-Seq (both runtimes) and the baseline agree at every output."""
    query = parse_query(
        "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 250 ms"
    )
    reference = ASeqEngine(query)
    columnar = ASeqEngine(query, vectorized=True)
    baseline = TwoStepEngine(query)
    for event in StockTradeGenerator(mean_gap_ms=1, seed=42).events(25_000):
        a = reference.process(event)
        b = columnar.process(event)
        c = baseline.process(event)
        assert a == b == c


def test_periodic_results_match_oracle_on_stream_tail():
    """Spot-check the running result against recomputation from scratch.

    Because everything older than the window cannot contribute, the
    oracle only needs the events of the last window (plus the negated
    log horizon) to validate the engine's running aggregate.
    """
    window_ms = 60
    query = seq("A", "!N", "B", "C").count().within(ms=window_ms).build()
    engine = ASeqEngine(query)
    rng = random.Random(43)
    oracle = BruteForceOracle(query)

    history = []
    ts = 0
    checks = 0
    for i in range(6_000):
        ts += rng.randint(1, 3)
        from repro.events import Event

        event = Event(rng.choice(["A", "B", "C", "N", "Z"]), ts)
        history.append(event)
        engine.process(event)
        if i % 500 == 250:
            tail = [e for e in history if e.ts > ts - 2 * window_ms]
            assert engine.result() == oracle.aggregate(tail, now=ts)
            checks += 1
    assert checks >= 10


def test_group_by_partitions_bounded():
    """Partition count tracks key cardinality, not stream length."""
    query = (
        seq("DELL", "AMAT").group_by("bucket").count().within(ms=300).build()
    )
    engine = ASeqEngine(query)
    rng = random.Random(44)
    for event in StockTradeGenerator(mean_gap_ms=1, seed=45).events(20_000):
        engine.process(event.with_attrs(bucket=rng.randrange(8)))
    assert engine.runtime.partition_count <= 8
