"""Unit tests for the query text parser."""

import pytest

from repro.errors import ParseError, QueryError
from repro.query import parse_query
from repro.query.ast import AggKind
from repro.query.predicates import (
    AttributeComparison,
    EquivalencePredicate,
    LocalPredicate,
)


class TestPatternClause:
    def test_simple_pattern(self):
        query = parse_query("PATTERN SEQ(A, B, C)")
        assert query.pattern.positive_types == ("A", "B", "C")

    def test_negation(self):
        query = parse_query("PATTERN SEQ(A, !N, B)")
        assert query.pattern.negations == {1: ("N",)}

    def test_paper_style_angle_brackets(self):
        query = parse_query(
            "PATTERN <SEQ(TypeUsername,TypePassword,ClickSubmit)>"
        )
        assert query.pattern.length == 3

    def test_missing_pattern_keyword(self):
        with pytest.raises(ParseError):
            parse_query("SEQ(A, B)")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse_query("PATTERN SEQ(A, B")

    def test_keyword_as_type_rejected(self):
        with pytest.raises(ParseError):
            parse_query("PATTERN SEQ(A, WHERE)")

    def test_garbage_character(self):
        with pytest.raises(ParseError):
            parse_query("PATTERN SEQ(A, B) #")


class TestWhereClause:
    def test_local_predicate_number(self):
        query = parse_query("PATTERN SEQ(A, B) WHERE A.price > 100")
        (predicate,) = query.predicates
        assert predicate == LocalPredicate("A", "price", ">", 100)

    def test_local_predicate_float_and_string(self):
        query = parse_query(
            "PATTERN SEQ(A, B) WHERE A.price >= 10.5 AND B.model = 'touch'"
        )
        assert query.predicates[0].value == 10.5
        assert query.predicates[1].value == "touch"

    def test_equivalence_chain(self):
        query = parse_query(
            "PATTERN SEQ(A, B, C) WHERE A.id = B.id = C.id"
        )
        (predicate,) = query.predicates
        assert isinstance(predicate, EquivalencePredicate)
        assert predicate.event_types == ("A", "B", "C")

    def test_two_term_equivalence_across_types(self):
        query = parse_query("PATTERN SEQ(A, B) WHERE A.id = B.id")
        (predicate,) = query.predicates
        assert isinstance(predicate, EquivalencePredicate)

    def test_intra_event_comparison(self):
        query = parse_query("PATTERN SEQ(A, B) WHERE A.x != A.y")
        (predicate,) = query.predicates
        assert isinstance(predicate, AttributeComparison)
        assert predicate.op == "!="

    def test_cross_type_inequality_rejected(self):
        with pytest.raises(ParseError):
            parse_query("PATTERN SEQ(A, B) WHERE A.x < B.y")

    def test_predicate_on_unknown_type_rejected(self):
        with pytest.raises(QueryError):
            parse_query("PATTERN SEQ(A, B) WHERE Z.x > 1")

    def test_boolean_constant(self):
        query = parse_query("PATTERN SEQ(A, B) WHERE A.flag = TRUE")
        assert query.predicates[0].value is True


class TestOtherClauses:
    def test_group_by(self):
        query = parse_query("PATTERN SEQ(A, B) GROUP BY ip")
        assert query.group_by == "ip"

    def test_agg_count_default(self):
        query = parse_query("PATTERN SEQ(A, B)")
        assert query.aggregate.kind is AggKind.COUNT

    def test_agg_sum(self):
        query = parse_query("PATTERN SEQ(A, B) AGG SUM(B.weight)")
        aggregate = query.aggregate
        assert aggregate.kind is AggKind.SUM
        assert (aggregate.event_type, aggregate.attribute) == ("B", "weight")

    def test_agg_target_must_be_in_pattern(self):
        with pytest.raises(QueryError):
            parse_query("PATTERN SEQ(A, B) AGG SUM(Z.weight)")

    @pytest.mark.parametrize(
        "text,expected_ms",
        [
            ("WITHIN 500 ms", 500),
            ("WITHIN 10s", 10_000),
            ("WITHIN 2 minutes", 120_000),
            ("WITHIN 1 hour", 3_600_000),
            ("WITHIN 1.5 s", 1500),
        ],
    )
    def test_within_units(self, text, expected_ms):
        query = parse_query(f"PATTERN SEQ(A, B) {text}")
        assert query.window.size_ms == expected_ms

    def test_within_without_unit_rejected(self):
        with pytest.raises(ParseError):
            parse_query("PATTERN SEQ(A, B) WITHIN 500")

    def test_clauses_any_order(self):
        query = parse_query(
            "PATTERN SEQ(A, B) WITHIN 1s AGG COUNT GROUP BY ip"
        )
        assert query.window.size_ms == 1000
        assert query.group_by == "ip"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("PATTERN SEQ(A, B) EXTRA")


class TestPaperQueries:
    """The three motivating applications parse verbatim."""

    def test_application_1_network_security(self):
        query = parse_query(
            """
            PATTERN <SEQ(TypeUsername, TypePassword, ClickSubmit)>
            WHERE <TypePassword.value != TypePassword.expected>
            GROUP BY <ip>
            AGG COUNT
            WITHIN 10s
            """
        )
        assert query.group_by == "ip"
        assert query.window.size_ms == 10_000

    def test_application_2_ecommerce(self):
        query = parse_query(
            """
            PATTERN <SEQ(Kindle, KindleCase, Stylus)>
            WHERE <Kindle.userId = KindleCase.userId = Stylus.userId>
            AGG COUNT
            WITHIN 1 hour
            """
        )
        assert query.window.size_ms == 3_600_000

    def test_negation_query_q2(self):
        query = parse_query("PATTERN SEQ(DELL, IPIX, !QQQ, AMAT)")
        assert query.pattern.negations == {2: ("QQQ",)}
