"""The distributed observability plane of the sharded engine.

Per-shard metrics collection (worker snapshots merged into the router
registry under ``shard=`` labels, monotonic across SIGKILL + revive),
cross-process trace stitching, supervision-lifecycle spans, stale-
tolerant scrapes while a shard is mid-restart, and the supervision
health series (``repro_shard_*``).
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.engine import StreamEngine
from repro.engine.sharded import ShardedStreamEngine
from repro.engine.sinks import CallbackSink, Output
from repro.events.event import Event
from repro.obs.export import to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.server import AdminServer
from repro.obs.tracing import Stage, TraceRecorder
from repro.query import parse_query
from repro.resilience.faults import kill_shard

QUERY = "PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 60 ms GROUP BY g"


def _events(count: int, seed: int = 7, start_ts: int = 0) -> list[Event]:
    rng = random.Random(seed)
    events = []
    for index in range(count):
        events.append(
            Event(
                "A" if index % 2 == 0 else "B",
                start_ts + index,
                {"g": rng.randrange(32), "v": rng.randrange(100)},
            )
        )
    return events


def _engine(registry=None, **overrides) -> ShardedStreamEngine:
    settings = dict(
        shards=4,
        batch_size=32,
        registry=registry,
        heartbeat_interval_s=0.05,
        heartbeat_max_missed=2,
        checkpoint_every_batches=4,
    )
    settings.update(overrides)
    engine = ShardedStreamEngine(**settings)
    engine.register(parse_query(QUERY), name="q")
    return engine


def _wait_for(predicate, timeout: float = 15.0, what: str = "condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    pytest.fail(f"timed out waiting for {what}")


def _shard_value(registry, name: str, shard: int) -> float | None:
    metric = registry.get(name, shard=str(shard))
    return None if metric is None else float(metric.value)


# ----- per-shard metrics collection -----------------------------------------


class TestShardMetricsCollection:
    def test_every_shard_exports_labeled_series(self):
        registry = MetricsRegistry()
        with _engine(registry) as engine:
            engine.run(iter(_events(2000)))
            engine.refresh_cost_metrics()
            text = to_prometheus(registry)
            for shard in range(4):
                assert f'events_ingested_total{{shard="{shard}"}}' in text
            # the router's own unlabeled supervision series coexist
            assert "shard_checkpoints_total" in text

    def test_collection_off_without_registry(self):
        with _engine() as engine:  # NULL registry: no merger built
            engine.run(iter(_events(200)))
            engine.refresh_cost_metrics()  # must not raise
            assert engine._merger is None

    def test_counters_monotonic_across_sigkill_and_revive(self):
        registry = MetricsRegistry()
        with _engine(registry) as engine:
            engine.run(iter(_events(2000)))
            engine.refresh_cost_metrics()
            before = _shard_value(registry, "events_ingested_total", 1)
            assert before is not None and before > 0
            kill_shard(engine, 1)
            _wait_for(
                lambda: engine.shard_health()[1]["restarts"] >= 1
                and engine.shard_health()[1]["alive"],
                what="shard 1 revive",
            )
            engine.run(iter(_events(2000, seed=8, start_ts=10_000)))
            engine.refresh_cost_metrics()
            after = _shard_value(registry, "events_ingested_total", 1)
            assert after is not None
            assert after >= before, "counter went backwards across revive"

    def test_health_series_exported(self):
        registry = MetricsRegistry()
        with _engine(registry) as engine:
            engine.run(iter(_events(500)))
            kill_shard(engine, 2)
            _wait_for(
                lambda: engine.shard_health()[2]["restarts"] >= 1,
                what="shard 2 restart",
            )
            engine.refresh_cost_metrics()
            assert (
                _shard_value(registry, "repro_shard_restarts_total", 2) >= 1
            )
            assert _shard_value(registry, "repro_shard_degraded", 2) == 0.0
            age = registry.get(
                "repro_shard_heartbeat_age_seconds", shard="0"
            )
            assert age is not None

    def test_degraded_shard_folds_into_local_lane(self):
        registry = MetricsRegistry()
        with _engine(registry, restart_limit=0) as engine:
            engine.run(iter(_events(500)))
            kill_shard(engine, 3)
            _wait_for(
                lambda: 3 in engine.degraded_shards,
                what="shard 3 degrade",
            )
            engine.run(iter(_events(500, seed=9, start_ts=5_000)))
            engine.refresh_cost_metrics()
            assert _shard_value(registry, "repro_shard_degraded", 3) == 1.0
            # scrapes keep working; the merged export never raises
            assert "shards_degraded 1" in to_prometheus(registry)


# ----- cross-process tracing ------------------------------------------------


class TestCrossProcessTracing:
    def test_stitched_router_shard_merge_chains(self):
        trace = TraceRecorder(capacity=4096)
        with _engine(trace=trace, trace_sample=1) as engine:
            engine.run(iter(_events(600)))
            drained = engine.drain_trace()
        assert drained["enabled"] is True
        shards_seen = {span["shard"] for span in drained["spans"]}
        assert "router" in shards_seen
        assert any(isinstance(shard, int) for shard in shards_seen)
        complete = [
            chain for chain in drained["stitched"] if chain["complete"]
        ]
        assert complete, "no complete route→shard_ingest→merge chain"
        chain = complete[0]
        assert chain["stages"][0] == Stage.ROUTE
        assert Stage.SHARD_INGEST in chain["stages"]
        assert chain["stages"][-1] == Stage.MERGE

    def test_drain_is_destructive(self):
        trace = TraceRecorder(capacity=4096)
        with _engine(trace=trace, trace_sample=1) as engine:
            engine.run(iter(_events(300)))
            first = engine.drain_trace()
            second = engine.drain_trace()
        assert first["spans"]
        assert second["spans"] == [] or len(second["spans"]) < len(
            first["spans"]
        )

    def test_disabled_trace_shape(self):
        with _engine() as engine:
            engine.run(iter(_events(100)))
            assert engine.drain_trace() == {
                "spans": [],
                "recorded_total": 0,
                "enabled": False,
            }

    def _wait_for_stage(self, engine, stage) -> None:
        # The revive thread records the span at the *end* of the
        # restart; accumulate destructive drains until it shows up.
        stages: set[str] = set()

        def seen() -> bool:
            stages.update(
                span["stage"] for span in engine.drain_trace()["spans"]
            )
            return stage in stages

        _wait_for(seen, what=f"{stage} span")

    def test_revive_records_lifecycle_span(self):
        trace = TraceRecorder(capacity=4096)
        with _engine(trace=trace) as engine:
            engine.run(iter(_events(500)))
            kill_shard(engine, 0)
            self._wait_for_stage(engine, Stage.SHARD_REVIVE)

    def test_degrade_records_lifecycle_span(self):
        trace = TraceRecorder(capacity=4096)
        with _engine(trace=trace, restart_limit=0) as engine:
            engine.run(iter(_events(500)))
            kill_shard(engine, 1)
            self._wait_for_stage(engine, Stage.SHARD_DEGRADE)


class TestSinkLifecycleSpans:
    def _flaky_sink(self, failures: int):
        attempts = {"left": failures}

        def emit(output: Output) -> None:
            if attempts["left"] > 0:
                attempts["left"] -= 1
                raise RuntimeError("sink down")

        return CallbackSink(emit)

    def test_sink_retry_span(self):
        trace = TraceRecorder(capacity=256)
        engine = StreamEngine(
            trace=trace, sink_retries=2, sink_retry_backoff_s=0.0
        )
        query = parse_query(
            "PATTERN SEQ(A, B) AGG COUNT WITHIN 60 ms"
        )
        engine.register(query, self._flaky_sink(1), name="q")
        for event in _events(50):
            engine.process(event)
        assert trace.spans(Stage.SINK_RETRY)

    def test_sink_dead_letter_span(self):
        from repro.resilience import DeadLetterQueue

        trace = TraceRecorder(capacity=256)
        engine = StreamEngine(
            trace=trace,
            sink_retries=1,
            sink_retry_backoff_s=0.0,
            sink_dlq=DeadLetterQueue(capacity=16),
        )
        query = parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 60 ms")
        engine.register(query, self._flaky_sink(10_000), name="q")
        for event in _events(50):
            engine.process(event)
        assert trace.spans(Stage.SINK_DEAD_LETTER)


# ----- stale-tolerant scrapes -----------------------------------------------


class TestStaleTolerantScrapes:
    def test_query_rows_marks_stale_when_shard_unreachable(self):
        with _engine(supervise=False) as engine:
            # A query with no GROUP BY runs in the local lane: a dead
            # shard must not smear its stale flag onto it.
            engine.register(
                parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 60 ms"),
                name="local_q",
            )
            engine.run(iter(_events(1000)))
            fresh = engine.query_rows()
            assert fresh and not any(
                row.get("stale") for row in fresh
            )
            # Kill one worker outright; without supervision nothing
            # will revive it — the scrape must degrade, not raise.
            engine._workers[1].process.kill()
            engine._workers[1].process.join(5.0)
            rows = engine.query_rows()
            assert rows, "scrape returned nothing"
            by_name = {row["query"]: row for row in rows}
            assert by_name["q"].get("stale") is True
            assert not by_name["local_q"].get("stale")

    def test_scrape_during_revive_stays_up(self):
        registry = MetricsRegistry()
        engine = _engine(registry)
        admin = AdminServer(engine, registry=registry).start()
        statuses: list[tuple[str, int]] = []
        ingested: list[float] = []
        stop = threading.Event()

        def scrape(path: str) -> None:
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(
                        admin.url(path), timeout=10
                    ) as response:
                        body = response.read().decode()
                        statuses.append((path, response.status))
                        if path == "/metrics":
                            for line in body.splitlines():
                                if line.startswith(
                                    'events_ingested_total{shard="1"}'
                                ):
                                    ingested.append(
                                        float(line.rsplit(" ", 1)[1])
                                    )
                except urllib.error.HTTPError as error:
                    statuses.append((path, error.code))
                time.sleep(0.02)

        scrapers = [
            threading.Thread(target=scrape, args=(path,), daemon=True)
            for path in ("/metrics", "/queries")
        ]
        try:
            engine.run(iter(_events(2000)))
            for thread in scrapers:
                thread.start()
            kill_shard(engine, 1)
            _wait_for(
                lambda: engine.shard_health()[1]["restarts"] >= 1
                and engine.shard_health()[1]["alive"],
                what="shard 1 revive",
            )
            engine.run(iter(_events(1000, seed=11, start_ts=20_000)))
            time.sleep(0.3)  # a few scrapes of the revived fleet
        finally:
            stop.set()
            for thread in scrapers:
                thread.join(5.0)
            admin.stop()
            engine.close()
        served = {path for path, _ in statuses}
        assert served == {"/metrics", "/queries"}
        assert all(status == 200 for _, status in statuses), statuses
        # monotonic across every scrape, including mid-revive ones
        assert ingested == sorted(ingested), "per-shard counter dipped"
        # the revived shard's series reappeared after the restart
        assert ingested[-1] >= ingested[0]


# ----- scrape/ingest concurrency --------------------------------------------


class TestScrapeIngestConcurrency:
    def test_concurrent_scrape_flush_drops_no_events(self):
        """Regression: ``_try_flush`` on the scrape thread used to swap
        ``buffer``/``traced`` while the ingest thread appended without
        a lock — an append racing the swap landed in the orphaned list
        and was silently lost. Hammer both paths with a tiny batch size
        and pin the merged result against the single-process reference.
        """
        events = _events(6000, seed=13)
        reference = StreamEngine()
        reference.register(parse_query(QUERY), name="q")
        for event in events:
            reference.process(event)

        with _engine(batch_size=4) as engine:
            engine.run(iter(events[:16]))  # spawn workers first
            stop = threading.Event()
            errors: list[BaseException] = []

            def scrape() -> None:
                while not stop.is_set():
                    try:
                        engine.query_rows()
                    except BaseException as error:  # pragma: no cover
                        errors.append(error)
                        return

            scraper = threading.Thread(target=scrape, daemon=True)
            scraper.start()
            try:
                engine.run(iter(events[16:]))
            finally:
                stop.set()
                scraper.join(10.0)
            assert not errors, errors
            assert engine.result("q") == reference.result("q")
            assert not any(
                health["restarts"] for health in engine.shard_health()
            )


# ----- worker-side trace stamping -------------------------------------------


class TestWorkerTraceStamping:
    def test_corrupt_trace_offset_degrades_to_missing_span(self):
        """A malformed trace offset in a batch payload must cost the
        worker a span, not its life (and not a supervisor restart)."""
        trace = TraceRecorder(capacity=1024)
        with _engine(trace=trace, trace_sample=1) as engine:
            engine.run(iter(_events(200)))
            worker = engine._workers[0]
            with worker.lock:
                worker.conn.send(
                    (
                        "batch",
                        {
                            "r": [("A", 1, {"g": 1, "v": 1})],
                            "t": [(99, "t-oob"), (-7, "t-neg"),
                                  ("x", "t-type")],
                        },
                    )
                )
            engine.run(iter(_events(200, seed=21, start_ts=5_000)))
            assert engine.results()["q"] is not None
            assert engine.shard_health()[0]["restarts"] == 0


# ----- stale-reply salvage --------------------------------------------------


class TestStaleReplySalvage:
    def test_salvaged_pong_spans_reach_trace_drain(self):
        """Spans riding a discarded stale pong are ingested, not lost:
        worker-side span drains are destructive, so the drain loops
        salvage the obs shipment before dropping the message."""
        trace = TraceRecorder(capacity=1024)
        with _engine(trace=trace, trace_sample=1) as engine:
            engine.run(iter(_events(100)))
            worker = engine._workers[0]
            stale_pong = (
                "pong",
                {
                    "events": 0,
                    "failure": None,
                    "obs": {
                        "wall": time.time(),
                        "spans": [
                            (
                                123,
                                Stage.SHARD_INGEST,
                                "A",
                                "shard=0",
                                "t-stale",
                                time.time(),
                            )
                        ],
                    },
                },
            )
            engine._salvage_reply(worker, stale_pong)
            drained = engine.drain_trace()
            assert any(
                span["trace_id"] == "t-stale"
                for span in drained["spans"]
            )

    def test_salvage_ignores_malformed_messages(self):
        with _engine() as engine:
            engine.run(iter(_events(10)))
            worker = engine._workers[0]
            engine._salvage_reply(worker, None)
            engine._salvage_reply(worker, ("ok",))
            engine._salvage_reply(worker, ("ok", [1, 2]))
            engine._salvage_reply(worker, ("ok", {"unrelated": 1}))


# ----- admin endpoints ------------------------------------------------------


class TestAdminEndpoints:
    def _get(self, admin, path: str) -> tuple[int, str]:
        with urllib.request.urlopen(admin.url(path), timeout=10) as resp:
            return resp.status, resp.read().decode()

    def test_dashboard_and_profile_wiring(self):
        from repro.obs.history import default_history

        registry = MetricsRegistry()
        with _engine(registry, profile=True) as engine:
            history = default_history(registry, interval_s=0.05).start()
            admin = AdminServer(
                engine, registry=registry, history=history
            ).start()
            try:
                engine.run(iter(_events(2000)))
                _wait_for(
                    lambda: history.samples_taken >= 3,
                    what="history samples",
                )
                status, body = self._get(admin, "/dashboard.json")
                payload = json.loads(body)
                assert status == 200 and payload["enabled"] is True
                status, body = self._get(admin, "/dashboard")
                assert status == 200
                status, body = self._get(admin, "/profile")
                assert status == 200
                assert "router;" in body or "no samples" in body
            finally:
                admin.stop()
                history.stop()

    def test_profile_404_when_off(self):
        registry = MetricsRegistry()
        with _engine(registry) as engine:
            admin = AdminServer(engine, registry=registry).start()
            try:
                engine.run(iter(_events(100)))
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    self._get(admin, "/profile")
                assert excinfo.value.code == 404
            finally:
                admin.stop()

    def test_trace_endpoint_serves_stitched_chains(self):
        registry = MetricsRegistry()
        trace = TraceRecorder(capacity=4096)
        with _engine(registry, trace=trace, trace_sample=1) as engine:
            admin = AdminServer(
                engine, registry=registry, trace=trace
            ).start()
            try:
                engine.run(iter(_events(600)))
                status, body = self._get(admin, "/trace")
                payload = json.loads(body)
                assert status == 200 and payload["enabled"] is True
                assert any(
                    chain["complete"] for chain in payload["stitched"]
                )
            finally:
                admin.stop()
