"""Trace-file reading/writing (the paper's dataset format)."""

import io

import pytest

from repro.datagen import StockTradeGenerator
from repro.datagen.tracefile import (
    iter_trace,
    read_trace,
    trace_text,
    write_trace,
)
from repro.errors import OutOfOrderError, StreamError
from repro.events import Event


class TestReading:
    def test_minimal_lines(self):
        events = list(iter_trace(io.StringIO("DELL,100\nAMAT,101\n")))
        assert [(e.event_type, e.ts) for e in events] == [
            ("DELL", 100),
            ("AMAT", 101),
        ]

    def test_price_and_volume(self):
        (event,) = iter_trace(io.StringIO("DELL,100,24.5,300\n"))
        assert event["price"] == 24.5
        assert event["volume"] == 300
        assert event["symbol"] == "DELL"

    def test_comments_and_blank_lines_skipped(self):
        text = "# header\n\nDELL,1\n  \n# more\nAMAT,2\n"
        assert len(list(iter_trace(io.StringIO(text)))) == 2

    def test_bad_timestamp(self):
        with pytest.raises(StreamError, match="line 1"):
            list(iter_trace(io.StringIO("DELL,notatime\n")))

    def test_bad_price(self):
        with pytest.raises(StreamError, match="bad price"):
            list(iter_trace(io.StringIO("DELL,1,cheap\n")))

    def test_bad_volume(self):
        with pytest.raises(StreamError, match="bad volume"):
            list(iter_trace(io.StringIO("DELL,1,2.5,many\n")))

    def test_missing_fields(self):
        with pytest.raises(StreamError):
            list(iter_trace(io.StringIO("DELL\n")))

    def test_read_trace_enforces_order(self):
        stream = read_trace(io.StringIO("DELL,5\nAMAT,3\n"))
        next(stream)
        with pytest.raises(OutOfOrderError):
            next(stream)

    def test_read_trace_from_path(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("DELL,1\nAMAT,2\n")
        assert len(list(read_trace(path))) == 2


class TestWriting:
    def test_round_trip_generator_stream(self, tmp_path):
        events = StockTradeGenerator(seed=4).take(500)
        path = tmp_path / "stream.txt"
        assert write_trace(events, path) == 500
        replayed = list(read_trace(path))
        assert [(e.event_type, e.ts) for e in replayed] == [
            (e.event_type, e.ts) for e in events
        ]
        assert [e["price"] for e in replayed] == [
            e["price"] for e in events
        ]

    def test_trace_text(self):
        text = trace_text([Event("DELL", 7, {"price": 1.5, "volume": 9})])
        assert text == "DELL,7,1.5,9\n"

    def test_event_without_attrs(self):
        assert trace_text([Event("X", 1)]) == "X,1\n"

    def test_volume_without_price(self):
        text = trace_text([Event("X", 1, {"volume": 5})])
        assert text == "X,1,,5\n"
        (event,) = iter_trace(io.StringIO(text))
        assert "price" not in event
        assert event["volume"] == 5


class TestEndToEnd:
    def test_query_over_written_trace(self, tmp_path):
        from repro import ASeqEngine, parse_query

        events = StockTradeGenerator(mean_gap_ms=1, seed=4).take(3_000)
        path = tmp_path / "t.txt"
        write_trace(events, path)
        query = parse_query(
            "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 300 ms"
        )
        from_file = ASeqEngine(query)
        for event in read_trace(path):
            from_file.process(event)
        in_memory = ASeqEngine(query)
        for event in events:
            in_memory.process(event)
        assert from_file.result() == in_memory.result()
