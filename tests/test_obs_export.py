"""Prometheus text exposition and JSON snapshot exporters."""

import json
import math

from repro.obs.export import (
    registry_snapshot,
    to_prometheus,
    write_json_snapshot,
    write_prometheus,
)
from repro.obs.registry import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("events_total", "all events").inc(10)
    registry.counter("query_outputs_total", query="q1").inc(2)
    registry.counter("query_outputs_total", query="q2").inc(3)
    registry.gauge("live_objects", "live state").set(42)
    histogram = registry.histogram("latency_us", "per-event latency")
    for value in (0.5, 1.5, 3.0, 2_000_000.0):
        histogram.observe(value)
    return registry


def _parse_exposition(text: str) -> dict[str, float]:
    """Parse sample lines of a Prometheus exposition into a dict."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        text = to_prometheus(_sample_registry())
        samples = _parse_exposition(text)
        assert samples["events_total"] == 10
        assert samples['query_outputs_total{query="q1"}'] == 2
        assert samples['query_outputs_total{query="q2"}'] == 3
        assert samples["live_objects"] == 42

    def test_type_headers_emitted_once_per_name(self):
        text = to_prometheus(_sample_registry())
        assert text.count("# TYPE query_outputs_total counter") == 1
        assert "# TYPE events_total counter" in text
        assert "# TYPE live_objects gauge" in text
        assert "# TYPE latency_us histogram" in text
        assert "# HELP events_total all events" in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = to_prometheus(_sample_registry())
        samples = _parse_exposition(text)
        buckets = [
            (key, value) for key, value in samples.items()
            if key.startswith("latency_us_bucket")
        ]
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)  # cumulative => non-decreasing
        assert samples['latency_us_bucket{le="+Inf"}'] == 4
        assert samples["latency_us_count"] == 4
        assert samples["latency_us_sum"] > 2_000_000
        # the 2e6 observation overflows the last finite (2^20) bound
        assert samples['latency_us_bucket{le="1048576"}'] == 3

    def test_every_line_parses(self):
        for line in to_prometheus(_sample_registry()).splitlines():
            if line.startswith("#"):
                prefix, kind, *rest = line.split(" ", 2)
                assert kind in ("HELP", "TYPE")
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            assert not math.isnan(float(value))

    def test_invalid_characters_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird.name-with chars").inc()
        text = to_prometheus(registry)
        assert "weird_name_with_chars 1" in text

    def test_empty_registry_exports_empty_string(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_write_prometheus_round_trip(self, tmp_path):
        path = tmp_path / "metrics.prom"
        registry = _sample_registry()
        write_prometheus(registry, str(path))
        assert path.read_text() == to_prometheus(registry)


class TestJsonSnapshot:
    def test_snapshot_shape(self):
        snapshot = registry_snapshot(_sample_registry())
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        names = {entry["name"] for entry in snapshot["counters"]}
        assert names == {"events_total", "query_outputs_total"}
        (histogram,) = snapshot["histograms"]
        assert histogram["count"] == 4
        assert {"p50", "p95", "p99", "max", "mean", "buckets"} <= set(
            histogram
        )
        assert histogram["buckets"][-1]["le"] == "+Inf"
        assert histogram["buckets"][-1]["count"] == 4

    def test_labels_preserved(self):
        snapshot = registry_snapshot(_sample_registry())
        labelled = [
            entry for entry in snapshot["counters"]
            if entry["name"] == "query_outputs_total"
        ]
        assert {entry["labels"]["query"] for entry in labelled} == {
            "q1", "q2"
        }

    def test_write_json_snapshot_with_extras(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_json_snapshot(
            _sample_registry(), str(path), run={"events": 10}
        )
        loaded = json.loads(path.read_text())
        assert loaded["run"] == {"events": 10}
        assert loaded["counters"]
        assert loaded["histograms"][0]["p50"] >= 0
