"""Workload profile export: build/write/load round-trip + schema checks."""

import json
import random

import pytest

from repro.core.executor import ASeqEngine
from repro.events import Event
from repro.multi.workload import WorkloadEngine
from repro.obs.funnel import STAGES, FunnelRecorder
from repro.obs.workload_profile import (
    PROFILE_VERSION,
    build_workload_profile,
    load_workload_profile,
    write_workload_profile,
)
from repro.query import seq
from repro.query.parser import parse_workload

WORKLOAD_TEXT = """
funnel_a: PATTERN SEQ(HOME, CART, BUY) AGG COUNT WITHIN 2 s;
funnel_b: PATTERN SEQ(HOME, CART, PAY) AGG COUNT WITHIN 2 s;
funnel_c: PATTERN SEQ(SEARCH, CLICK) AGG COUNT WITHIN 1 s;
"""

TYPES = ("HOME", "CART", "BUY", "PAY", "SEARCH", "CLICK")


def click_events(count=800, seed=11):
    rng = random.Random(seed)
    ts = 0
    events = []
    for _ in range(count):
        ts += rng.randint(1, 40)
        events.append(Event(rng.choice(TYPES), ts))
    return events


@pytest.fixture
def shared_profile(tmp_path):
    engine = WorkloadEngine(
        parse_workload(WORKLOAD_TEXT), funnel=FunnelRecorder()
    )
    for event in click_events():
        engine.process(event)
    path = tmp_path / "workload_profile.json"
    write_workload_profile(engine, path)
    return load_workload_profile(path)


class TestBuild:
    def test_round_trip_preserves_schema(self, shared_profile):
        profile = shared_profile
        assert profile["workload_profile_version"] == PROFILE_VERSION
        assert profile["engine_kind"] == "workload"
        assert set(profile["queries"]) == {
            "funnel_a", "funnel_b", "funnel_c",
        }

    def test_per_query_funnel_counts_are_live(self, shared_profile):
        for entry in shared_profile["queries"].values():
            assert set(entry["funnel"]) == set(STAGES)
            assert entry["funnel"]["events_routed"] > 0
            assert entry["first_event_ms"] is not None
            assert entry["last_event_ms"] > entry["first_event_ms"]

    def test_drift_present_for_active_queries(self, shared_profile):
        drift = shared_profile["queries"]["funnel_c"]["drift"]
        assert drift is not None
        assert drift["observed_updates_per_event"] > 0
        assert drift["drift_ratio"] > 0

    def test_shared_series_carries_segment_pseudo_queries(
        self, shared_profile
    ):
        # funnel_a/funnel_b share the (HOME, CART) prefix segment; its
        # extend/expire work is unattributable to either query and
        # lands under the segment pseudo-name instead.
        assert any(
            name.startswith("segment:")
            for name in shared_profile["shared_series"]
        )

    def test_overlap_pairs(self, shared_profile):
        pairs = {
            (pair["a"], pair["b"]): pair
            for pair in shared_profile["overlap"]
        }
        ab = pairs[("funnel_a", "funnel_b")]
        assert ab["common_prefix"] == 2
        assert ab["shared_types"] == ["CART", "HOME"]
        assert 0 < ab["jaccard"] < 1
        assert pairs[("funnel_a", "funnel_c")]["common_prefix"] == 0

    def test_totals_fold_query_rows(self, shared_profile):
        expected = sum(
            entry["funnel"]["matches_emitted"]
            for entry in shared_profile["queries"].values()
        )
        assert shared_profile["totals"]["matches_emitted"] == expected

    def test_single_query_engine_profile(self, tmp_path):
        query = seq("A", "B").count().within(ms=100).named("q").build()
        engine = ASeqEngine(query, funnel=FunnelRecorder())
        for index, name in enumerate("ABABAB"):
            engine.process(Event(name, ts=index + 1))
        profile = build_workload_profile(engine)
        assert profile["engine_kind"] == "executor"
        assert profile["queries"]["q"]["funnel"]["matches_emitted"] > 0

    def test_funnel_off_degrades_to_zero_counts(self):
        query = seq("A", "B").count().within(ms=100).named("q").build()
        engine = ASeqEngine(query)
        for index, name in enumerate("ABAB"):
            engine.process(Event(name, ts=index + 1))
        profile = build_workload_profile(engine)
        entry = profile["queries"]["q"]
        assert entry["funnel"] == {stage: 0 for stage in STAGES}
        assert entry["drift"] is None


class TestLoader:
    def write(self, tmp_path, document):
        path = tmp_path / "profile.json"
        path.write_text(json.dumps(document))
        return path

    def valid(self, shared_profile):
        return json.loads(json.dumps(shared_profile))

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not a JSON document"):
            load_workload_profile(path)

    def test_rejects_non_object(self, tmp_path):
        with pytest.raises(ValueError, match="JSON object"):
            load_workload_profile(self.write(tmp_path, [1, 2]))

    def test_rejects_missing_keys(self, tmp_path, shared_profile):
        document = self.valid(shared_profile)
        del document["overlap"]
        with pytest.raises(ValueError, match="missing keys.*overlap"):
            load_workload_profile(self.write(tmp_path, document))

    def test_rejects_wrong_version(self, tmp_path, shared_profile):
        document = self.valid(shared_profile)
        document["workload_profile_version"] = PROFILE_VERSION + 1
        with pytest.raises(ValueError, match="unsupported"):
            load_workload_profile(self.write(tmp_path, document))

    def test_rejects_missing_stage_counts(self, tmp_path, shared_profile):
        document = self.valid(shared_profile)
        del document["queries"]["funnel_a"]["funnel"]["runs_extended"]
        with pytest.raises(ValueError, match="funnel stage counts"):
            load_workload_profile(self.write(tmp_path, document))
