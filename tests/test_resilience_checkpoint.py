"""Engine-wide checkpoints: atomicity, retention, typed errors."""

import json
import os

import pytest

from repro.core.checkpoint import checkpoint as executor_checkpoint
from repro.core.checkpoint import restore as executor_restore
from repro.core.executor import ASeqEngine
from repro.errors import CheckpointError, EngineError, ReproError
from repro.events import Event
from repro.obs.registry import MetricsRegistry
from repro.query import seq
from repro.resilience.checkpointer import (
    Checkpointer,
    engine_state,
    list_checkpoints,
    load_checkpoint,
    load_latest_checkpoint,
    validate_engine_state,
    write_checkpoint,
)
from repro.resilience.faults import corrupt_latest_checkpoint
from repro.resilience.supervisor import SupervisedStreamEngine


def make_engine():
    engine = SupervisedStreamEngine()
    engine.register(seq("A", "B").count().within(ms=10).named("ab").build())
    engine.register(
        seq("A", "B", "C").group_by("id").count().within(ms=10)
        .named("grp").build()
    )
    return engine


def feed(engine, n=30):
    for i in range(n):
        engine.process(Event("ABC"[i % 3], i + 1, {"id": i % 2}))


# ----- engine_state ----------------------------------------------------------


def test_engine_state_round_trips_through_json(tmp_path):
    engine = make_engine()
    feed(engine)
    state = json.loads(json.dumps(engine_state(engine, journal_seq=30)))
    validate_engine_state(state)
    assert state["journal_seq"] == 30
    assert {r["name"] for r in state["registrations"]} == {"ab", "grp"}
    assert state["metrics"]["events"] == 30


def test_engine_state_rejects_non_checkpointable_executor():
    engine = SupervisedStreamEngine()

    class Opaque:
        def process(self, event):
            return None

        def result(self):
            return 0

    engine.register_executor("odd", Opaque())
    with pytest.raises(CheckpointError):
        engine_state(engine)


def test_write_checkpoint_is_atomic_no_tmp_left(tmp_path):
    engine = make_engine()
    feed(engine)
    path = write_checkpoint(tmp_path, engine_state(engine, journal_seq=30))
    assert path.exists()
    assert not list(tmp_path.glob("*.tmp"))
    assert load_checkpoint(path)["journal_seq"] == 30


def test_load_latest_falls_back_over_corruption(tmp_path):
    engine = make_engine()
    for seq_no in (10, 20, 30):
        write_checkpoint(tmp_path, engine_state(engine, journal_seq=seq_no))
    corrupt_latest_checkpoint(tmp_path)
    state, path = load_latest_checkpoint(tmp_path)
    assert state is not None
    assert state["journal_seq"] == 20
    assert path in list_checkpoints(tmp_path)


def test_load_latest_with_nothing_loadable(tmp_path):
    assert load_latest_checkpoint(tmp_path) == (None, None)
    write_checkpoint(
        tmp_path, engine_state(make_engine(), journal_seq=5)
    )
    for path in list_checkpoints(tmp_path):
        path.write_text("{ not json")
    assert load_latest_checkpoint(tmp_path) == (None, None)


def test_validate_rejects_malformed_documents():
    for bad in (
        [],
        {},
        {"version": 99, "journal_seq": 0, "registrations": []},
        {"version": 1, "registrations": []},
        {"version": 1, "journal_seq": 0},
        {"version": 1, "journal_seq": 0, "registrations": [{"name": 3}]},
    ):
        with pytest.raises(CheckpointError):
            validate_engine_state(bad)


# ----- Checkpointer scheduling ----------------------------------------------


def test_checkpointer_every_n_events(tmp_path):
    engine = make_engine()
    checkpointer = Checkpointer(tmp_path, engine, every_events=10)
    engine.attach_checkpointer(checkpointer)
    feed(engine, 35)
    assert len(list_checkpoints(tmp_path)) == 3


def test_checkpointer_retention_prunes_old_generations(tmp_path):
    engine = make_engine()
    checkpointer = Checkpointer(tmp_path, engine, every_events=5, retain=2)
    engine.attach_checkpointer(checkpointer)
    feed(engine, 40)
    assert len(list_checkpoints(tmp_path)) == 2


def test_checkpointer_time_trigger(tmp_path):
    engine = make_engine()
    checkpointer = Checkpointer(tmp_path, engine, every_ms=0.01)
    engine.attach_checkpointer(checkpointer)
    feed(engine, 3)
    assert len(list_checkpoints(tmp_path)) >= 1


def test_checkpointer_metrics(tmp_path):
    registry = MetricsRegistry()
    engine = SupervisedStreamEngine(registry=registry)
    engine.register(seq("A", "B").count().named("ab").build())
    checkpointer = Checkpointer(
        tmp_path, engine, every_events=5, registry=registry
    )
    engine.attach_checkpointer(checkpointer)
    feed(engine, 20)
    assert registry.value("checkpoints_written_total") == 4
    histogram = registry.get("checkpoint_duration_us")
    assert histogram.count == 4


def test_checkpointer_rejects_bad_schedule(tmp_path):
    engine = make_engine()
    with pytest.raises(ValueError):
        Checkpointer(tmp_path, engine, every_events=0)
    with pytest.raises(ValueError):
        Checkpointer(tmp_path, engine, every_ms=-1)
    with pytest.raises(ValueError):
        Checkpointer(tmp_path, engine, retain=0)


# ----- typed checkpoint errors (satellite) ----------------------------------


def test_checkpoint_error_is_engine_and_repro_error():
    assert issubclass(CheckpointError, EngineError)
    assert issubclass(CheckpointError, ReproError)


def test_version_mismatch_raises_checkpoint_error():
    query = seq("A", "B").count().build()
    state = executor_checkpoint(ASeqEngine(query))
    state["version"] = 99
    with pytest.raises(CheckpointError):
        executor_restore(query, state)


def test_query_mismatch_raises_checkpoint_error():
    query = seq("A", "B").count().build()
    other = seq("A", "C").count().build()
    state = executor_checkpoint(ASeqEngine(query))
    with pytest.raises(CheckpointError):
        executor_restore(other, state)


def test_runtime_mismatch_raises_checkpoint_error():
    query = seq("A", "B").count().within(ms=10).build()
    state = executor_checkpoint(ASeqEngine(query))
    with pytest.raises(CheckpointError):
        executor_restore(query, state, vectorized=True)


def test_malformed_state_raises_checkpoint_error_not_key_error():
    query = seq("A", "B").count().within(ms=10).build()
    state = executor_checkpoint(ASeqEngine(query))
    del state["runtime"]["counters"]
    with pytest.raises(CheckpointError):
        executor_restore(query, state)


def test_unsupported_runtime_raises_checkpoint_error():
    from repro.baseline.twostep import TwoStepEngine
    from repro.core.checkpoint import _runtime_state

    engine = TwoStepEngine(seq("A", "B").count().within(ms=10).build())
    with pytest.raises(CheckpointError):
        _runtime_state(engine)
