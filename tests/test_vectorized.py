"""The columnar SEM runtime must be indistinguishable from the reference."""

import pytest

from conftest import random_events
from repro.core.sem import SemEngine
from repro.core.vectorized import VectorizedSemEngine
from repro.errors import QueryError
from repro.query import seq


def _mirror(query, events):
    """Replay both engines and compare outputs step by step."""
    reference = SemEngine(query)
    vectorized = VectorizedSemEngine(query)
    for event in events:
        expected = reference.process(event)
        actual = vectorized.process(event)
        if expected is None or actual is None:
            assert expected == actual
        elif isinstance(expected, float):
            assert actual == pytest.approx(expected)
        else:
            assert actual == expected
        assert (
            vectorized.active_counters == reference.active_counters
        ), f"counter sets diverged at ts={event.ts}"
    return reference, vectorized


class TestVectorizedSem:
    def test_requires_window(self):
        with pytest.raises(QueryError):
            VectorizedSemEngine(seq("A", "B").build())

    def test_count_streams_mirror_reference(self, rng):
        query = seq("A", "B", "C").count().within(ms=15).build()
        for _ in range(25):
            events = random_events(rng, ["A", "B", "C", "Z"], 60)
            relevant = [e for e in events if e.event_type != "Z"]
            _mirror(query, relevant)

    def test_negation_mirrors_reference(self, rng):
        query = seq("A", "!N", "B", "C").count().within(ms=15).build()
        for _ in range(25):
            events = random_events(rng, ["A", "B", "C", "N"], 60)
            _mirror(query, events)

    @pytest.mark.parametrize("kind", ["sum", "avg", "max", "min"])
    def test_value_aggregates_mirror_reference(self, rng, kind):
        builder = seq("A", "B", "C")
        query = (
            getattr(builder, kind)("B", "w").within(ms=15).build()
        )

        def attrs(r, event_type):
            return {"w": r.randint(1, 20)}

        for _ in range(15):
            events = random_events(
                rng, ["A", "B", "C"], 50, attr_maker=attrs
            )
            _mirror(query, events)

    def test_start_slot_aggregate_mirrors_reference(self, rng):
        query = seq("A", "B").sum("A", "w").within(ms=10).build()

        def attrs(r, event_type):
            return {"w": r.randint(1, 9)}

        for _ in range(15):
            events = random_events(rng, ["A", "B"], 40, attr_maker=attrs)
            _mirror(query, events)

    def test_ring_buffer_growth_and_compaction(self):
        """Push far more STARTs than the initial capacity."""
        from repro.events import Event

        query = seq("A", "B").count().within(ms=50).build()
        engine = VectorizedSemEngine(query)
        reference = SemEngine(query)
        for ts in range(1, 2000):
            event = Event("A" if ts % 3 else "B", ts)
            engine.process(event)
            reference.process(event)
        assert engine.result() == reference.result()
        assert engine.active_counters == reference.active_counters

    def test_advance_time(self):
        from repro.events import Event

        query = seq("A", "B").count().within(ms=5).build()
        engine = VectorizedSemEngine(query)
        engine.process(Event("A", 1))
        engine.process(Event("B", 2))
        assert engine.result() == 1
        engine.advance_time(10)
        assert engine.result() == 0
        assert engine.active_counters == 0

    def test_count_and_wsum(self):
        from repro.events import Event

        query = seq("A", "B").sum("B", "w").within(ms=10).build()
        engine = VectorizedSemEngine(query)
        engine.process(Event("A", 1))
        engine.process(Event("B", 2, {"w": 4}))
        assert engine.count_and_wsum() == (1, 4.0)
