"""The analytical cost model (paper Eq. 3)."""

import pytest

from repro.baseline.cost_model import aseq_cost, stack_based_cost, uniform_counts


class TestStackBasedCost:
    def test_uniform_no_selectivity(self):
        # 10 + 10*10 + 10*100 = 1110
        assert stack_based_cost([10, 10, 10], 1.0) == 1110.0

    def test_exponential_in_length(self):
        """Under uniform counts the cost grows ~|E|^n (paper's reduction)."""
        costs = [
            stack_based_cost(uniform_counts(10, length), 1.0)
            for length in (2, 3, 4, 5)
        ]
        ratios = [b / a for a, b in zip(costs, costs[1:])]
        assert all(8 < r <= 11 for r in ratios)

    def test_polynomial_in_rate(self):
        low = stack_based_cost(uniform_counts(5, 3), 1.0)
        high = stack_based_cost(uniform_counts(10, 3), 1.0)
        assert high / low > 6  # cubic-ish growth, far beyond linear

    def test_selectivity_scales_down(self):
        full = stack_based_cost([10, 10], 1.0)
        half = stack_based_cost([10, 10], 0.5)
        assert half == 10 + 10 * 10 * 0.5
        assert half < full

    def test_per_pair_selectivity_mapping(self):
        cost = stack_based_cost([10, 10, 10], {(0, 1): 0.5, (1, 2): 0.1})
        assert cost == 10 + 10 * 5 + 10 * 5 * 10 * 0.1

    def test_empty(self):
        assert stack_based_cost([]) == 0.0

    def test_single_type(self):
        assert stack_based_cost([42], 1.0) == 42.0


class TestASeqCost:
    def test_linear_in_events(self):
        assert aseq_cost([10, 10, 10]) == 30.0

    def test_flat_in_length(self):
        """A-Seq's per-window work tracks events, not pattern length."""
        total_events = 100
        for length in (2, 5, 10):
            counts = uniform_counts(total_events / length, length)
            assert aseq_cost(counts) == pytest.approx(total_events)
