"""Unit tests for the PrefixCounter update rules (paper Lemmas 1/2/6)."""

import pytest

from repro.core.aggregates import PatternLayout
from repro.core.prefix_counter import PrefixCounter
from repro.errors import QueryError
from repro.query import seq


def layout_for(*names, agg=None):
    builder = seq(*names)
    if agg:
        kind, event_type, attribute = agg
        builder = getattr(builder, kind)(event_type, attribute)
    return PatternLayout.of(builder.build())


class TestLayout:
    def test_update_slots_descending_for_repeats(self):
        layout = layout_for("A", "B", "A")
        assert layout.update_slots["A"] == (2, 0)

    def test_reset_slot_targets_guarded_prefix(self):
        layout = layout_for("A", "B", "!C", "D")
        assert layout.reset_slot == {"C": 1}

    def test_categories(self):
        layout = layout_for("A", "B", "!C", "D")
        assert layout.categories_of("A") == "START"
        assert layout.categories_of("B") == "UPD"
        assert layout.categories_of("D") == "TRIG"
        assert layout.categories_of("C") == "NEG"
        assert layout.categories_of("Z") == "IGNORED"

    def test_value_slot(self):
        layout = layout_for("A", "B", "C", agg=("sum", "B", "w"))
        assert layout.value_slot == 1
        assert layout.tracks_values

    def test_ambiguous_value_target_rejected(self):
        with pytest.raises(QueryError):
            layout_for("A", "B", "A", agg=("sum", "A", "w"))

    def test_value_of_missing_attribute(self):
        from repro.errors import PredicateError
        from repro.events import Event

        layout = layout_for("A", "B", agg=("sum", "B", "w"))
        with pytest.raises(PredicateError):
            layout.value_of(Event("B", 1))


class TestCountUpdates:
    def test_lemma1_chain(self):
        """count(p_m) at t = count(p_m) + count(p_{m-1}) at t-1."""
        counter = PrefixCounter(layout_for("A", "B", "C"))
        counter.bump_start()        # a1: (A)=1
        counter.bump_start()        # a2: (A)=2
        counter.update(1)           # b1: (A,B)=2
        counter.update(2)           # c1: (A,B,C)=2
        counter.update(1)           # b2: (A,B)=4
        counter.update(2)           # c2: (A,B,C)=6
        assert counter.snapshot_counts() == (2, 4, 6)

    def test_paper_figure_4_column(self):
        """Fig. 4: counts (3, 2, 4, 2); a `b` arrival makes (A,B) = 5."""
        counter = PrefixCounter(layout_for("A", "B", "C", "D"))
        counter.counts[:] = [3, 2, 4, 2]
        counter.update(1)
        assert counter.snapshot_counts() == (3, 5, 4, 2)
        # ... and the later `d` arrival folds (A,B,C) into (A,B,C,D).
        counter.update(3)
        assert counter.full_count == 6

    def test_implicit_start_pins_slot0(self):
        counter = PrefixCounter(layout_for("A", "B"), implicit_start=True)
        assert counter.start_alive
        counter.update(1)
        counter.update(1)
        assert counter.full_count == 2

    def test_reset_clears_one_slot(self):
        counter = PrefixCounter(layout_for("A", "B", "!C", "D"))
        counter.bump_start()
        counter.update(1)
        counter.update(2)  # (A,B,D) via slot 2
        counter.reset(1)
        assert counter.snapshot_counts() == (1, 0, 1)

    def test_reset_slot0_kills_implicit_start(self):
        counter = PrefixCounter(layout_for("A", "!N", "B"), implicit_start=True)
        counter.reset(0)
        assert not counter.start_alive
        counter.update(1)
        assert counter.full_count == 0


class TestValueAggregates:
    def test_weighted_sum_propagation(self):
        layout = layout_for("A", "B", "C", agg=("sum", "B", "w"))
        counter = PrefixCounter(layout)
        counter.bump_start()            # a1
        counter.bump_start()            # a2
        counter.update(1, 10.0)         # b(10): 2 matches of (A,B), wsum 20
        counter.update(1, 5.0)          # b(5): +2 matches, wsum 20+10=30
        counter.update(2)               # c: 4 (A,B,C) matches, wsum 30
        assert counter.counts == [2, 4, 4]
        assert counter.full_wsum == 30.0

    def test_sum_on_start_slot(self):
        layout = layout_for("A", "B", agg=("sum", "A", "w"))
        counter = PrefixCounter(layout)
        counter.bump_start(3.0)
        counter.bump_start(4.0)
        counter.update(1)
        assert counter.full_wsum == 7.0

    def test_seed_start_for_sem_mode(self):
        layout = layout_for("A", "B", agg=("max", "A", "w"))
        counter = PrefixCounter(layout, implicit_start=True)
        counter.seed_start(9.0)
        counter.update(1)
        assert counter.full_extremum == 9.0

    def test_max_propagation(self):
        layout = layout_for("A", "B", "C", agg=("max", "B", "w"))
        counter = PrefixCounter(layout)
        counter.bump_start()
        counter.update(1, 7.0)
        counter.update(2)           # (A,B,C) max = 7
        counter.update(1, 3.0)      # smaller B
        counter.update(2)           # still 7
        assert counter.full_extremum == 7.0

    def test_min_propagation(self):
        layout = layout_for("A", "B", "C", agg=("min", "B", "w"))
        counter = PrefixCounter(layout)
        counter.bump_start()
        counter.update(1, 7.0)
        counter.update(1, 3.0)
        counter.update(2)
        assert counter.full_extremum == 3.0

    def test_extremum_ignored_when_no_prefix_matches(self):
        layout = layout_for("A", "B", "C", agg=("max", "B", "w"))
        counter = PrefixCounter(layout)
        counter.update(1, 99.0)  # no (A) yet: no (A,B) match forms
        counter.bump_start()
        counter.update(2)
        assert counter.full_extremum is None

    def test_reset_clears_value_companions(self):
        layout = layout_for("A", "!N", "B", "C", agg=("sum", "B", "w"))
        counter = PrefixCounter(layout)
        counter.bump_start()
        counter.update(1, 4.0)
        counter.reset(1)
        assert counter.wsums[1] == 0.0
        counter.update(2)
        assert counter.full_wsum == 0.0
