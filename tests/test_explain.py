"""EXPLAIN plans: golden text across every sharing strategy + CLI.

The golden files under ``tests/golden/`` pin the rendered EXPLAIN text
for each engine family; regenerate with::

    REPRO_UPDATE_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_explain.py

and review the diff like any other code change.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core.executor import ASeqEngine
from repro.engine.engine import StreamEngine
from repro.multi.ecube import ECubeEngine
from repro.multi.prefix_sharing import PrefixSharedEngine
from repro.multi.unshared import UnsharedEngine
from repro.multi.workload import WorkloadEngine
from repro.obs.explain import (
    EXPLAIN_VERSION,
    drift_from_counts,
    estimate_cost,
    explain_query,
    render_explain,
)
from repro.query import seq
from repro.query.parser import parse_query, parse_workload

GOLDEN_DIR = Path(__file__).parent / "golden"

WORKLOAD_TEXT = """
funnel_a: PATTERN SEQ(HOME, CART, BUY) AGG COUNT WITHIN 2 s;
funnel_b: PATTERN SEQ(HOME, CART, PAY) AGG COUNT WITHIN 2 s;
funnel_c: PATTERN SEQ(SEARCH, CLICK) AGG COUNT WITHIN 1 s;
"""


def build_single_sem():
    return ASeqEngine(
        parse_query(
            "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 1 s", name="q"
        )
    )


def build_single_negation():
    return ASeqEngine(
        parse_query("PATTERN SEQ(A, !N, B) AGG COUNT WITHIN 500 ms", name="q")
    )


def build_single_hpc_vectorized():
    query = (
        seq("A", "B").count().within(ms=200).group_by("k").named("g").build()
    )
    return ASeqEngine(query, vectorized=True)


def build_workload_shared():
    return WorkloadEngine(parse_workload(WORKLOAD_TEXT))


def build_workload_unshared():
    return UnsharedEngine(parse_workload(WORKLOAD_TEXT))


def build_pretree():
    return PrefixSharedEngine(
        [
            seq("A", "B", "C").count().within(ms=100).named("q1").build(),
            seq("A", "B", "D").count().within(ms=100).named("q2").build(),
            seq("X", "Y").count().within(ms=100).named("q3").build(),
        ]
    )


def build_ecube():
    return ECubeEngine(
        [
            seq("A", "B", "C").count().within(ms=100).named("e1").build(),
            seq("B", "C", "D").count().within(ms=100).named("e2").build(),
        ]
    )


def build_stream():
    engine = StreamEngine(stream_name="test")
    engine.register(
        seq("A", "B").count().within(ms=100).named("ab").build()
    )
    engine.register(
        seq("A", "!C", "B").count().within(ms=100).named("no_c").build()
    )
    return engine


SCENARIOS = {
    "single_sem": build_single_sem,
    "single_negation": build_single_negation,
    "single_hpc_vectorized": build_single_hpc_vectorized,
    "workload_shared": build_workload_shared,
    "workload_unshared": build_workload_unshared,
    "pretree": build_pretree,
    "ecube": build_ecube,
    "stream": build_stream,
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
class TestGoldenExplain:
    def test_rendered_plan_matches_golden(self, name):
        engine = SCENARIOS[name]()
        text = render_explain(engine.explain())
        path = GOLDEN_DIR / f"explain_{name}.txt"
        if os.environ.get("REPRO_UPDATE_GOLDENS"):
            path.write_text(text)
        assert path.exists(), (
            f"golden file {path} missing — regenerate with "
            "REPRO_UPDATE_GOLDENS=1"
        )
        assert text == path.read_text()

    def test_plan_is_json_serializable_and_versioned(self, name):
        plan = SCENARIOS[name]().explain()
        assert plan["explain_version"] == EXPLAIN_VERSION
        assert plan["queries"]
        json.dumps(plan)  # no sets, no objects


class TestPlanStructure:
    def test_single_query_plan_fields(self):
        plan = build_single_sem().explain()
        query = plan["queries"]["q"]
        assert query["lane"] == "per_event"
        assert query["runtime"]["kind"] == "sem"
        assert query["features"]["window_ms"] == 1000
        assert query["sharing"]["strategy"] == "unshared"
        assert query["estimated"]["updates_per_event"] > 1.0

    def test_group_by_compiles_to_hpc(self):
        plan = build_single_hpc_vectorized().explain()
        runtime = plan["queries"]["g"]["runtime"]
        assert runtime["kind"] == "hpc"
        assert runtime["partition_attribute"] == "k"
        assert runtime["vectorized"]

    def test_chop_connect_sharing_names_partners(self):
        plan = build_workload_shared().explain()
        sharing = plan["queries"]["funnel_a"]["sharing"]
        assert sharing["strategy"] == "chop-connect"
        assert sharing["shared_with"] == ["funnel_b"]
        shared_segments = [
            segment
            for segment in sharing["segments"]
            if segment["shared_with"]
        ]
        assert shared_segments, "prefix segment should be shared"

    def test_pretree_sharing_reports_prefix_lengths(self):
        plan = build_pretree().explain()
        sharing = plan["queries"]["q1"]["sharing"]
        assert sharing["strategy"] == "pretree"
        assert sharing["shared_prefix_length"] == {"q2": 2}
        lonely = plan["queries"]["q3"]["sharing"]
        assert not lonely.get("shared_prefix_length")

    def test_ecube_reports_shared_substring(self):
        plan = build_ecube().explain()
        assert plan["shared_types"] == ["B", "C"]
        for name in ("e1", "e2"):
            assert plan["queries"][name]["sharing"]["strategy"] == "ecube"

    def test_unwindowed_estimate_is_one_update_per_event(self):
        query = parse_query("PATTERN SEQ(A, B) AGG COUNT", name="q")
        assert estimate_cost(query)["updates_per_event"] == 1.0

    def test_explain_query_features(self):
        query = parse_query(
            "PATTERN SEQ(A, !N, B) AGG COUNT WITHIN 500 ms", name="q"
        )
        plan = explain_query(query)
        assert plan["features"]["negation"]
        assert plan["pattern"]["negated_types"] == ["N"]
        assert plan["features"]["window_ms"] == 500


class TestShardedExplain:
    def test_lanes_and_shard_metadata(self):
        from repro.engine.sharded import ShardedStreamEngine

        engine = ShardedStreamEngine(shards=2, supervise=False)
        try:
            engine.register(
                seq("A", "B")
                .count()
                .within(ms=100)
                .group_by("k")
                .named("grouped")
                .build()
            )
            engine.register(
                seq("A", "B").count().within(ms=100).named("flat").build()
            )
            plan = engine.explain()
            assert plan["kind"] == "sharded"
            assert plan["shards"] == 2
            assert plan["shard_attribute"] == "k"
            assert plan["queries"]["grouped"]["lane"] == "sharded"
            assert plan["queries"]["flat"]["lane"] == "local"
            json.dumps(plan)
        finally:
            engine.close()


class TestDriftFromCounts:
    def row(self, **overrides):
        row = {
            "predicate_pass": 1000,
            "runs_extended": 16000,
            "first_event_ms": 0.0,
            "last_event_ms": 10_000.0,
        }
        row.update(overrides)
        return row

    def test_windowed_drift(self):
        # 1000 events over 10s, 2 types, 1s window: 500 instances per
        # window per type -> estimated 500 updates/event; observed 16.
        drift = drift_from_counts(1000, 2, self.row())
        assert drift is not None
        assert drift["observed_updates_per_event"] == 16.0
        assert drift["estimated_updates_per_event"] == pytest.approx(50.0)
        assert drift["drift_ratio"] == pytest.approx(16.0 / 50.0)

    def test_unwindowed_estimate_is_one(self):
        drift = drift_from_counts(None, 2, self.row())
        assert drift["estimated_updates_per_event"] == 1.0
        assert drift["drift_ratio"] == 16.0

    def test_no_signal_returns_none(self):
        assert drift_from_counts(1000, 2, self.row(predicate_pass=0)) is None
        assert (
            drift_from_counts(1000, 2, self.row(first_event_ms=None)) is None
        )


class TestExplainCli:
    QUERY = "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 1 s"

    def test_offline_text(self, capsys):
        from repro.cli import main

        assert main(["explain", self.QUERY]) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN (executor)")
        assert "estimated:" in out

    def test_offline_json(self, capsys):
        from repro.cli import main

        assert main(["explain", self.QUERY, "--json"]) == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["kind"] == "executor"
        assert "q" in plan["queries"]

    def test_offline_workload(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "wl.cep"
        path.write_text(WORKLOAD_TEXT)
        assert main(
            ["explain", "--workload-file", str(path), "--shared"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("EXPLAIN (workload)")
        assert "sharing: chop-connect with funnel_b" in out

    def test_parse_error_exits_nonzero(self):
        from repro.cli import main

        assert main(["explain", "PATTERN GARBAGE("]) == 1

    def test_run_mode_explain_flag(self, capsys, tmp_path):
        from repro.cli import main

        trace = tmp_path / "t.txt"
        trace.write_text("A,1\nB,2\nA,3\nB,4\n")
        rc = main(
            [
                "--query",
                "PATTERN SEQ(A, B) AGG COUNT WITHIN 1 s",
                "--trace",
                str(trace),
                "--explain",
                "--emit",
                "none",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "EXPLAIN (executor)" in err
