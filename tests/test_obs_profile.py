"""Sampling profiler (``repro.obs.profile``)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profile import SamplingProfiler, collapsed_text


def _busy_thread(stop: threading.Event) -> threading.Thread:
    def spin() -> None:
        while not stop.is_set():
            sum(range(100))

    thread = threading.Thread(target=spin, name="busy", daemon=True)
    thread.start()
    return thread


class TestSampling:
    def test_sample_once_counts_other_threads(self):
        stop = threading.Event()
        thread = _busy_thread(stop)
        try:
            profiler = SamplingProfiler(scope=None)
            profiler.sample_once()
            assert profiler.samples_taken == 1
            assert profiler.counts()  # at least the busy thread's stack
        finally:
            stop.set()
            thread.join()

    def test_thread_lifecycle_and_clear(self):
        stop = threading.Event()
        thread = _busy_thread(stop)
        try:
            with SamplingProfiler(interval_s=0.005, scope=None) as profiler:
                deadline = time.time() + 5.0
                while not profiler.counts() and time.time() < deadline:
                    time.sleep(0.01)
            assert profiler.counts()
            profiler.clear()
            assert profiler.counts() == {}
        finally:
            stop.set()
            thread.join()

    def test_scope_filters_foreign_stacks(self):
        stop = threading.Event()
        thread = _busy_thread(stop)
        try:
            profiler = SamplingProfiler(scope="no-such-path-component")
            profiler.sample_once()
            assert profiler.counts() == {}
        finally:
            stop.set()
            thread.join()

    def test_stacks_are_root_first(self):
        stop = threading.Event()
        thread = _busy_thread(stop)
        try:
            profiler = SamplingProfiler(scope=None)
            profiler.sample_once()
            stacks = list(profiler.counts())
            spinning = [s for s in stacks if "spin" in s]
            assert spinning, stacks
            # The thread bootstrap is the root, the spin loop the leaf.
            assert spinning[0].index("_bootstrap") < spinning[0].index(
                "spin"
            )
        finally:
            stop.set()
            thread.join()

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)


class TestCollapsedText:
    def test_renders_sorted_lines_with_root(self):
        text = collapsed_text({"b;c": 2, "a;b": 1}, root="shard-0")
        assert text == "shard-0;a;b 1\nshard-0;b;c 2\n"

    def test_no_root(self):
        assert collapsed_text({"a": 1}) == "a 1\n"

    def test_empty(self):
        assert collapsed_text({}) == ""

    def test_collapsed_method_matches(self):
        profiler = SamplingProfiler(scope=None)
        stop = threading.Event()
        thread = _busy_thread(stop)
        try:
            profiler.sample_once()
        finally:
            stop.set()
            thread.join()
        assert profiler.collapsed(root="x") == collapsed_text(
            profiler.counts(), root="x"
        )
