"""Admin HTTP server: endpoints, health degradation, concurrent scrapes."""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.executor import ASeqEngine
from repro.engine.engine import StreamEngine
from repro.engine.sinks import CollectSink
from repro.events import Event
from repro.obs.registry import MetricsRegistry
from repro.obs.server import AdminServer
from repro.obs.tracing import TraceRecorder
from repro.query import seq
from repro.resilience import SupervisedStreamEngine
from repro.resilience.faults import FaultyExecutor, fault_seed


def q(name, *pattern, win=10):
    return seq(*pattern).count().within(ms=win).named(name).build()


def ab_stream(n):
    return [Event("AB"[i % 2], i + 1) for i in range(n)]


def http_get(url):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


@pytest.fixture
def served():
    """A small instrumented engine with a live admin server."""
    registry = MetricsRegistry()
    engine = StreamEngine(registry=registry, stream_name="test")
    engine.register(q("ab", "A", "B"), CollectSink())
    engine.run(ab_stream(100))
    with AdminServer(engine, registry=registry) as admin:
        yield admin


class TestEndpoints:
    def test_root_lists_endpoints(self, served):
        status, body = http_get(served.url("/"))
        assert status == 200
        assert "/healthz" in json.loads(body)["endpoints"]

    def test_metrics_prometheus(self, served):
        status, body = http_get(served.url("/metrics"))
        assert status == 200
        assert "# TYPE events_ingested_total counter" in body
        assert "events_ingested_total 100" in body
        assert 'repro_event_time_watermark_ms{stream="test"} 100' in body
        # pull-based cost gauges are refreshed on scrape
        assert 'query_live_objects{query="ab"}' in body

    def test_metrics_json(self, served):
        status, body = http_get(served.url("/metrics.json"))
        assert status == 200
        assert json.loads(body)  # valid, non-empty

    def test_healthz_ok(self, served):
        status, body = http_get(served.url("/healthz"))
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["quarantined"] == []
        assert health["events"] == 100

    def test_queries_rows(self, served):
        status, body = http_get(served.url("/queries"))
        assert status == 200
        (row,) = json.loads(body)["queries"]
        assert row["query"] == "ab"
        assert row["events_routed"] == 100
        assert row["counter_updates"] > 0
        assert row["live_objects"] >= 0

    def test_query_state(self, served):
        status, body = http_get(served.url("/queries/ab/state"))
        assert status == 200
        state = json.loads(body)
        assert state["kind"] == "aseq"
        assert state["runtime"]["kind"] == "sem"

    def test_unknown_query_404(self, served):
        status, body = http_get(served.url("/queries/nope/state"))
        assert status == 404
        assert json.loads(body)["error"] == "unknown query"

    def test_unknown_path_404(self, served):
        status, body = http_get(served.url("/nope"))
        assert status == 404

    def test_trailing_slash_and_query_string_tolerated(self, served):
        status, _ = http_get(served.url("/healthz/?verbose=1"))
        assert status == 200

    def test_double_start_rejected(self, served):
        with pytest.raises(RuntimeError):
            served.start()


class TestTraceEndpoint:
    def test_trace_disabled_is_empty(self, served):
        status, body = http_get(served.url("/trace"))
        assert status == 200
        assert json.loads(body) == {
            "spans": [], "recorded_total": 0, "enabled": False,
        }

    def test_trace_drains_spans(self):
        registry = MetricsRegistry()
        trace = TraceRecorder(capacity=64)
        engine = StreamEngine(registry=registry, trace=trace)
        engine.register(q("ab", "A", "B"))
        engine.run(ab_stream(20))
        with AdminServer(engine, registry=registry, trace=trace) as admin:
            status, body = http_get(admin.url("/trace"))
            assert status == 200
            payload = json.loads(body)
            assert payload["enabled"] is True
            assert payload["spans"]
            assert {"seq", "ts", "stage", "event_type", "detail"} <= set(
                payload["spans"][0]
            )
            # drained: a second scrape starts empty
            _, body = http_get(admin.url("/trace"))
            assert json.loads(body)["spans"] == []


class TestHealthzDegraded:
    def test_quarantine_degrades_healthz(self):
        """A seeded fault burst quarantines one query; /healthz must
        turn 503 and name it while the healthy query keeps serving."""
        registry = MetricsRegistry()
        engine = SupervisedStreamEngine(
            registry=registry, quarantine_after=3
        )
        engine.register(q("healthy", "A", "B"), CollectSink())
        # a burst of consecutive failures at a seed-derived offset
        # (REPRO_FAULT_SEED drives the chaos matrix in CI)
        start = fault_seed() % 10
        engine.register_executor(
            "flaky",
            FaultyExecutor(
                ASeqEngine(q("flaky", "A", "B")),
                fail_at=range(start, start + 3),
            ),
        )
        with AdminServer(engine, registry=registry) as admin:
            status, _ = http_get(admin.url("/healthz"))
            assert status == 200
            for event in ab_stream(start + 10):
                engine.process(event)
            assert engine.quarantined() == ["flaky"]
            status, body = http_get(admin.url("/healthz"))
            assert status == 503
            health = json.loads(body)
            assert health["status"] == "degraded"
            assert health["quarantined"] == ["flaky"]
            assert health["dlq_depth"] == 3
            # the healthy query still shows up and still served events
            status, body = http_get(admin.url("/queries"))
            assert status == 200
            rows = {
                row["query"]: row for row in json.loads(body)["queries"]
            }
            assert rows["healthy"]["events_routed"] == start + 10
            # recovery flips it back to 200
            engine.restart("flaky")
            status, _ = http_get(admin.url("/healthz"))
            assert status == 200


class TestConcurrentScrape:
    def test_scrape_while_processing(self):
        """Hammer /metrics and /queries from a thread during a 50k-event
        ingest: every response parses, nothing raises, and the ingest
        counter reads monotonically."""
        registry = MetricsRegistry()
        engine = StreamEngine(registry=registry)
        engine.register(q("ab", "A", "B"), CollectSink())
        engine.register(q("abc", "A", "B", "C", win=20))
        errors = []
        ingested = []
        stop = threading.Event()

        def scraper(admin):
            pattern = re.compile(
                r"^events_ingested_total (\d+)", re.MULTILINE
            )
            while not stop.is_set():
                try:
                    status, body = http_get(admin.url("/metrics"))
                    assert status == 200
                    match = pattern.search(body)
                    if match:
                        ingested.append(int(match.group(1)))
                    status, body = http_get(admin.url("/queries"))
                    assert status == 200
                    for row in json.loads(body)["queries"]:
                        assert row["query"] in ("ab", "abc")
                except Exception as error:  # noqa: BLE001 - collected
                    errors.append(error)
                    return

        with AdminServer(engine, registry=registry) as admin:
            thread = threading.Thread(target=scraper, args=(admin,))
            thread.start()
            try:
                engine.run(ab_stream(50_000))
            finally:
                stop.set()
                thread.join(timeout=10)
            assert not thread.is_alive()
            assert errors == []
            # scrapes actually overlapped the ingest and read monotone
            assert len(ingested) >= 2
            assert all(
                a <= b for a, b in zip(ingested, ingested[1:])
            )
            status, body = http_get(admin.url("/metrics"))
            assert "events_ingested_total 50000" in body
