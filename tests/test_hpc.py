"""HPC partitioning: equivalence predicates and GROUP BY (Sec. 3.4)."""

import pytest

from conftest import events_of, replay
from repro.core.hpc import HPCEngine, partition_attribute
from repro.errors import PredicateError, QueryError
from repro.events import Event
from repro.query import seq
from repro.query.predicates import EquivalencePredicate


class TestPartitionAttribute:
    def test_from_equivalence(self):
        query = seq("A", "B").where_equal("id").build()
        assert partition_attribute(query) == "id"

    def test_from_group_by(self):
        query = seq("A", "B").group_by("ip").build()
        assert partition_attribute(query) == "ip"

    def test_none_for_plain_query(self):
        assert partition_attribute(seq("A", "B").build()) is None

    def test_partial_chain_rejected(self):
        query = seq("A", "B", "C").where_equal("id", "A", "C").build()
        with pytest.raises(QueryError):
            partition_attribute(query)

    def test_mixed_attribute_chain_rejected(self):
        query = (
            seq("A", "B")
            .where(EquivalencePredicate((("A", "uid"), ("B", "user"))))
            .build()
        )
        with pytest.raises(QueryError):
            partition_attribute(query)

    def test_two_chains_compose(self):
        from repro.core.hpc import partition_attributes

        query = (
            seq("A", "B")
            .where_equal("id")
            .where_equal("region")
            .build()
        )
        assert partition_attributes(query) == ("id", "region")
        # The single-attribute back-compat view refuses composites.
        with pytest.raises(QueryError):
            partition_attribute(query)

    def test_duplicate_chains_rejected(self):
        from repro.core.hpc import partition_attributes
        from repro.query.predicates import EquivalencePredicate

        query = (
            seq("A", "B")
            .where(EquivalencePredicate.on("id", "A", "B"))
            .where(EquivalencePredicate.on("id", "B", "A"))
            .build()
        )
        with pytest.raises(QueryError):
            partition_attributes(query)

    def test_group_by_composes_with_other_chain(self):
        from repro.core.hpc import partition_attributes

        query = seq("A", "B").where_equal("id").group_by("ip").build()
        assert partition_attributes(query) == ("ip", "id")

    def test_group_by_agreeing_with_chain(self):
        query = seq("A", "B").where_equal("id").group_by("id").build()
        assert partition_attribute(query) == "id"


class TestHPCEngine:
    def test_requires_partitioning_clause(self):
        with pytest.raises(QueryError):
            HPCEngine(seq("A", "B").build())

    def test_equivalence_partitions_and_sums(self):
        engine = HPCEngine(seq("A", "B").where_equal("id").build())
        replay(
            engine,
            events_of(
                ("A", 1, {"id": 1}), ("A", 2, {"id": 2}),
                ("B", 3, {"id": 1}), ("B", 4, {"id": 2}),
            ),
        )
        # (a1,b1) in partition 1, (a2,b2) in partition 2: combined 2,
        # not the 4 a cross-partition count would give.
        assert engine.result() == 2
        assert engine.partition_count == 2

    def test_group_by_reports_per_key(self):
        engine = HPCEngine(seq("A", "B").group_by("ip").build())
        replay(
            engine,
            events_of(
                ("A", 1, {"ip": "x"}), ("B", 2, {"ip": "x"}),
                ("A", 3, {"ip": "y"}), ("A", 4, {"ip": "y"}),
                ("B", 5, {"ip": "y"}),
            ),
        )
        assert engine.result() == {"x": 1, "y": 2}

    def test_missing_partition_attribute_raises(self):
        engine = HPCEngine(seq("A", "B").group_by("ip").build())
        with pytest.raises(PredicateError):
            engine.process(Event("A", 1))

    def test_negated_event_with_key_invalidates_its_partition_only(self):
        query = seq("A", "!N", "B").group_by("ip").within(ms=50).build()
        engine = HPCEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"ip": "x"}), ("A", 2, {"ip": "y"}),
                ("N", 3, {"ip": "x"}),
                ("B", 4, {"ip": "x"}), ("B", 5, {"ip": "y"}),
            ),
        )
        assert engine.result() == {"x": 0, "y": 1}

    def test_negated_event_without_key_broadcasts(self):
        query = seq("A", "!N", "B").group_by("ip").within(ms=50).build()
        engine = HPCEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"ip": "x"}), ("A", 2, {"ip": "y"}),
                ("N", 3),
                ("B", 4, {"ip": "x"}), ("B", 5, {"ip": "y"}),
            ),
        )
        assert engine.result() == {"x": 0, "y": 0}

    def test_windowed_partitions_expire_independently(self):
        query = seq("A", "B").group_by("ip").within(ms=5).build()
        engine = HPCEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"ip": "x"}),
                ("A", 4, {"ip": "y"}),
                ("B", 6, {"ip": "x"}),  # a(x) expired at 6
                ("B", 7, {"ip": "y"}),  # a(y) alive until 9
            ),
        )
        assert engine.result() == {"x": 0, "y": 1}

    def test_clock_shared_across_partitions(self):
        """Events in one partition expire counters in the others."""
        query = seq("A", "B").group_by("ip").within(ms=5).build()
        engine = HPCEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"ip": "x"}), ("B", 2, {"ip": "x"}),
                ("A", 50, {"ip": "y"}),  # far future, advances the clock
            ),
        )
        assert engine.result() == {"x": 0, "y": 0}

    def test_memory_counts_all_partitions(self):
        query = seq("A", "B").group_by("ip").within(ms=100).build()
        engine = HPCEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"ip": "x"}),
                ("A", 2, {"ip": "y"}),
                ("A", 3, {"ip": "y"}),
            ),
        )
        assert engine.current_objects() == 3

    def test_composite_key_partitions(self):
        """Two chains: matches must agree on BOTH id and region."""
        query = (
            seq("A", "B").where_equal("id").where_equal("region").build()
        )
        engine = HPCEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"id": 1, "region": "eu"}),
                ("B", 2, {"id": 1, "region": "us"}),  # region differs
                ("B", 3, {"id": 1, "region": "eu"}),  # full agreement
            ),
        )
        assert engine.result() == 1
        assert engine.partition_count == 2  # keys (1,eu) and (1,us)

    def test_group_by_with_second_chain(self):
        """GROUP BY user, equivalence also on session: per-user totals
        combine over that user's sessions."""
        query = (
            seq("A", "B")
            .where_equal("session")
            .group_by("user")
            .build()
        )
        engine = HPCEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"user": "u1", "session": 1}),
                ("A", 2, {"user": "u1", "session": 2}),
                ("B", 3, {"user": "u1", "session": 1}),
                ("B", 4, {"user": "u1", "session": 2}),
                ("A", 5, {"user": "u2", "session": 9}),
                ("B", 6, {"user": "u2", "session": 8}),  # wrong session
            ),
        )
        assert engine.result() == {"u1": 2, "u2": 0}

    def test_composite_matches_oracle(self):
        import random

        from conftest import assert_matches_oracle, random_events
        from repro.baseline.twostep import TwoStepEngine
        from repro.core.executor import ASeqEngine

        rng = random.Random(123)
        query = (
            seq("A", "B")
            .where_equal("id")
            .where_equal("region")
            .count()
            .within(ms=15)
            .build()
        )

        def attrs(r, event_type):
            return {
                "id": r.randint(1, 2),
                "region": r.choice(["eu", "us"]),
            }

        for _ in range(30):
            events = random_events(
                rng, ["A", "B"], 22, attr_maker=attrs
            )
            assert_matches_oracle(
                query,
                [ASeqEngine(query), TwoStepEngine(query)],
                events,
            )

    def test_group_by_plus_chain_matches_oracle(self):
        import random

        from conftest import assert_matches_oracle, random_events
        from repro.baseline.twostep import TwoStepEngine
        from repro.core.executor import ASeqEngine

        rng = random.Random(321)
        query = (
            seq("A", "B")
            .where_equal("session")
            .group_by("user")
            .count()
            .within(ms=15)
            .build()
        )

        def attrs(r, event_type):
            return {
                "user": r.choice(["u1", "u2"]),
                "session": r.randint(1, 3),
            }

        for _ in range(30):
            events = random_events(rng, ["A", "B"], 22, attr_maker=attrs)
            assert_matches_oracle(
                query,
                [ASeqEngine(query), TwoStepEngine(query)],
                events,
            )

    def test_avg_combines_across_partitions(self):
        query = (
            seq("A", "B").where_equal("id").avg("B", "w").build()
        )
        engine = HPCEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"id": 1}), ("B", 2, {"id": 1, "w": 10}),
                ("A", 3, {"id": 2}), ("B", 4, {"id": 2, "w": 2}),
            ),
        )
        assert engine.result() == 6.0
