"""Orphaned-worker hygiene and lossless trace shipment.

Two robustness properties ride together here:

* a SIGKILL'd router must not leak worker processes — pipe workers
  exit on transport EOF, spawned socket workers additionally watch
  their parent pid and the orphan-silence budget, so nothing outlives
  the router no matter the transport;
* trace shipments are retransmitted until acked: every worker drain
  becomes a numbered outbox batch that rides each shipment until the
  router acks it on a heartbeat ping, and the router deduplicates by
  batch number — a lost reply delays spans, it never loses or
  duplicates them (the residual loss the observability docs used to
  carve out).
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import textwrap
import time

from conftest import random_events
from repro.engine.sharded import ShardedStreamEngine, _SpanOutbox
from repro.obs.tracing import TraceRecorder
from repro.query import parse_query
from repro.resilience.faults import FaultPlan, fault_seed

QUERY = "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms GROUP BY g"


def _attrs(rng, _event_type):
    return {"g": rng.randrange(16), "v": rng.randrange(1000)}


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - pid reused by root
        return True
    return True


def _wait_dead(pids, timeout_s: float) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if not any(_pid_alive(pid) for pid in pids):
            return True
        time.sleep(0.1)
    return not any(_pid_alive(pid) for pid in pids)


_ROUTER_SCRIPT = textwrap.dedent(
    """
    import os, random, sys
    from repro.engine.sharded import ShardedStreamEngine
    from repro.events.event import Event
    from repro.query import parse_query

    transport = sys.argv[1]
    engine = ShardedStreamEngine(
        shards=2, batch_size=32, heartbeat_interval_s=0.1,
        transport=transport, orphan_timeout_s=5.0,
    )
    engine.register(parse_query(
        "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms GROUP BY g"
    ), name="q")
    rng = random.Random(0)
    for index in range(300):
        kind = "A" if rng.random() < 0.5 else "B"
        engine.process(Event(kind, index, {"g": rng.randrange(8)}))
    engine.flush()
    pids = [w.process.pid for w in engine._workers if w.process]
    print("PIDS " + " ".join(map(str, pids)), flush=True)
    sys.stdin.readline()  # hold until the test SIGKILLs us
    """
)


def _sigkill_router_and_collect_worker_pids(transport: str) -> list[int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    router = subprocess.Popen(
        [sys.executable, "-c", _ROUTER_SCRIPT, transport],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        for _ in range(50):
            line = router.stdout.readline()
            if line.startswith("PIDS "):
                break
        else:  # pragma: no cover - defensive
            raise AssertionError("router never reported worker pids")
        pids = [int(p) for p in line.split()[1:]]
        assert len(pids) == 2
        assert all(_pid_alive(pid) for pid in pids)
        os.kill(router.pid, signal.SIGKILL)
        assert router.wait(timeout=30) == -signal.SIGKILL
        return pids
    finally:
        if router.poll() is None:
            router.kill()
            router.wait(timeout=10)


def test_pipe_workers_die_with_the_router():
    pids = _sigkill_router_and_collect_worker_pids("pipe")
    assert _wait_dead(pids, timeout_s=15.0), (
        "pipe workers survived a router SIGKILL"
    )


def test_socket_workers_die_with_the_router():
    """Spawned tcp workers exit via EOF + the parent-pid watch, well
    inside the orphan budget."""
    pids = _sigkill_router_and_collect_worker_pids("tcp")
    assert _wait_dead(pids, timeout_s=20.0), (
        "socket workers survived a router SIGKILL"
    )


def test_engine_lifecycle_leaks_no_descriptors():
    """Open/run/close over both transports returns the process to its
    starting descriptor count (no leaked pipes, sockets, journals)."""
    def fd_count() -> int:
        return len(os.listdir("/proc/self/fd"))

    plan = FaultPlan(fault_seed(0))
    events = random_events(plan.rng, "AB", 200, attr_maker=_attrs)
    for transport in ("pipe", "tcp"):
        with ShardedStreamEngine(
            shards=2, transport=transport, heartbeat_interval_s=0.1
        ) as warmup:
            warmup.register(parse_query(QUERY), name="q")
            for event in events:
                warmup.process(event)
        before = fd_count()
        with ShardedStreamEngine(
            shards=2, transport=transport, heartbeat_interval_s=0.1
        ) as engine:
            engine.register(parse_query(QUERY), name="q")
            for event in events:
                engine.process(event)
            engine.results()
        assert fd_count() <= before, f"{transport} leaked descriptors"


# ----- idle-connection deadline (router vanished without FIN) ---------------


def _spawn_listener_worker(*extra: str):
    import re

    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.shard_worker",
            "--listen", "127.0.0.1:0", *extra,
        ],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"worker never announced its port: {line!r}"
    return process, (match.group(1), int(match.group(2)))


def test_worker_exits_when_no_router_ever_connects():
    """Between sessions the orphan budget is the listener's idle
    deadline: a worker nobody dials ends itself instead of leaking."""
    worker, _ = _spawn_listener_worker("--orphan-timeout", "1")
    try:
        assert worker.wait(timeout=30) == 0
    finally:
        if worker.poll() is None:
            worker.kill()
            worker.wait(timeout=10)


def test_worker_self_terminates_behind_a_silent_partition():
    """The FIN-less death: the router's host drops off the network
    mid-session (a chaos-proxy partition — sockets stay open, zero
    bytes move), and the worker must self-terminate once the orphan
    budget of total silence elapses, not wait for an EOF that will
    never come."""
    from repro.engine.transport import FramedChannel, transport_token
    from repro.resilience.netfault import NetFaultProxy

    worker, address = _spawn_listener_worker("--orphan-timeout", "2")
    proxy = NetFaultProxy(address).start()
    channels = []
    try:
        token = transport_token()
        for role in ("data", "control"):
            sock = socket.create_connection(proxy.address, timeout=5.0)
            channel = FramedChannel(sock)
            channel.send((
                "hello",
                {"role": role, "shard": 0, "token": token,
                 "session": "orphan-test"},
            ))
            channels.append(channel)
        data = channels[0]
        data.send((
            "configure",
            {"specs": [("q", QUERY)], "vectorized": False, "index": 0,
             "obs": {}, "orphan_timeout_s": 2.0},
        ))
        assert data.poll(10.0)
        status, _detail = data.recv()
        assert status == "ok"
        # The router "vanishes": no FIN, no RST, pure silence.
        proxy.partition()
        assert worker.wait(timeout=30) == 0, (
            "worker outlived the orphan budget behind a partition"
        )
    finally:
        for channel in channels:
            channel.close()
        proxy.stop()
        if worker.poll() is None:
            worker.kill()
            worker.wait(timeout=10)


# ----- span outbox ----------------------------------------------------------


def _record_spans(tracer: TraceRecorder, count: int, tag: str) -> None:
    from repro.obs.tracing import Stage

    for index in range(count):
        tracer.record(
            Stage.SHARD_INGEST, index, "A", f"{tag}-{index}",
            trace_id=f"t{tag}{index}", wall=float(index),
        )


def test_span_outbox_retransmits_until_acked():
    tracer = TraceRecorder(capacity=64)
    outbox = _SpanOutbox()
    _record_spans(tracer, 3, "first")
    outbox.drain(tracer)
    first = outbox.pending()
    assert len(first) == 1 and first[0][0] == 1
    assert len(first[0][1]) == 3
    # Un-acked: the same batch rides the next shipment too.
    _record_spans(tracer, 2, "second")
    outbox.drain(tracer)
    pending = outbox.pending()
    assert [seq for seq, _ in pending] == [1, 2]
    # Ack batch 1: only batch 2 remains; ack 2: empty.
    outbox.ack(1)
    assert [seq for seq, _ in outbox.pending()] == [2]
    outbox.ack(2)
    assert outbox.pending() == []
    # Draining an empty tracer adds nothing.
    outbox.drain(tracer)
    assert outbox.pending() == []


def test_router_dedups_retransmitted_span_batches():
    """End-to-end: with tracing on, batches ride many shipments
    (collects + heartbeats) yet every span reaches the router exactly
    once."""
    plan = FaultPlan(fault_seed(1))
    events = random_events(plan.rng, "AB", 600, attr_maker=_attrs)
    tracer = TraceRecorder(capacity=4096)
    with ShardedStreamEngine(
        shards=2, batch_size=16, heartbeat_interval_s=0.05,
        trace=tracer, trace_sample=4,
    ) as engine:
        engine.register(parse_query(QUERY), name="q")
        for event in events:
            engine.process(event)
        engine.results()
        time.sleep(0.4)  # several heartbeat rounds: acks + re-ships
        engine.results()
        drained = engine.drain_trace()
    keyed = [
        (span["shard"], span["trace_id"], span["stage"], span["detail"])
        for span in drained["spans"]
        if span["trace_id"] and span["shard"] != "router"
    ]
    assert keyed, "tracing produced no spans"
    assert len(keyed) == len(set(keyed)), "duplicate spans shipped"
