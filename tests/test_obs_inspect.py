"""inspect() surfaces and the duck-typed admin-plane helpers."""

import json

from conftest import replay
from repro.core.executor import ASeqEngine
from repro.engine.engine import StreamEngine
from repro.engine.sinks import CollectSink
from repro.events import Event
from repro.multi.chop import chop
from repro.multi.chop_connect import ChopConnectEngine
from repro.multi.prefix_sharing import PrefixSharedEngine
from repro.multi.unshared import UnsharedEngine
from repro.multi.workload import WorkloadEngine
from repro.obs.inspect import (
    cost_summary,
    engine_inspect,
    health_snapshot,
    query_rows,
    state_of,
)
from repro.obs.registry import MetricsRegistry
from repro.query import seq
from repro.resilience import SupervisedStreamEngine
from repro.resilience.faults import FaultyExecutor


def q(name, *pattern, win=50):
    builder = seq(*pattern).count()
    if win:
        builder = builder.within(ms=win)
    return builder.named(name).build()


def ab_stream(n=40):
    return [Event("AB"[i % 2], i + 1) for i in range(n)]


def assert_json_serializable(payload):
    json.dumps(payload)


class TestExecutorInspect:
    def test_sem_inspect(self):
        engine = ASeqEngine(q("ab", "A", "B", win=10))
        replay(engine, ab_stream(30))
        state = engine.inspect()
        assert_json_serializable(state)
        assert state["kind"] == "aseq"
        assert state["query_name"] == "ab"
        assert state["events_processed"] == 30
        runtime = state["runtime"]
        assert runtime["kind"] == "sem"
        assert runtime["window_ms"] == 10
        assert runtime["active_counters"] == len(runtime["counters"])
        assert runtime["counter_updates"] > 0

    def test_dpc_inspect(self):
        engine = ASeqEngine(q("ab", "A", "B", win=None))
        replay(engine, ab_stream(10))
        runtime = engine.inspect()["runtime"]
        assert runtime["kind"] == "dpc"
        assert runtime["counts"][-1] == engine.result()
        assert_json_serializable(runtime)

    def test_hpc_inspect(self):
        query = (
            seq("A", "B").count().within(ms=100).group_by("ip")
            .named("g").build()
        )
        engine = ASeqEngine(query)
        for i in range(20):
            engine.process(
                Event("AB"[i % 2], i + 1, {"ip": f"10.0.0.{i % 3}"})
            )
        runtime = engine.inspect()["runtime"]
        assert_json_serializable(runtime)
        assert runtime["kind"] == "hpc"
        assert runtime["partition_attributes"] == ["ip"]
        assert runtime["partition_count"] == 3
        assert len(runtime["partitions"]) == 3
        assert cost_summary(engine)["hpc_partitions"] == 3

    def test_vectorized_inspect(self):
        engine = ASeqEngine(q("ab", "A", "B", win=10), vectorized=True)
        replay(engine, ab_stream(30))
        state = engine.inspect()
        assert state["vectorized"] is True
        assert state["runtime"]["kind"] == "vectorized_sem"
        assert state["runtime"]["active_counters"] >= 1
        assert_json_serializable(state)

    def test_cost_summary_tracks_counter_updates(self):
        engine = ASeqEngine(q("ab", "A", "B", win=10))
        replay(engine, ab_stream(30))
        row = cost_summary(engine)
        assert row["events_processed"] == 30
        assert row["counter_updates"] > 0
        assert row["live_objects"] >= 0
        assert row["runtime_kind"] == "SemEngine"


class TestMultiEngineInspect:
    def test_chop_connect_inspect(self):
        engine = ChopConnectEngine(
            [chop(q("q1", "A", "B", "C"), 1), chop(q("q2", "X", "B", "C"), 1)]
        )
        replay(
            engine,
            [Event("A", 1), Event("X", 2), Event("B", 3), Event("C", 4)],
        )
        state = engine.inspect()
        assert_json_serializable(state)
        assert state["kind"] == "chop_connect"
        assert set(state["pipelines"]) == {"q1", "q2"}
        assert state["segments_shared"] >= 1
        assert engine.snapshot_rows_of("q1") >= 0
        assert sorted(engine.query_names) == ["q1", "q2"]

    def test_pretree_and_prefix_shared_inspect(self):
        engine = PrefixSharedEngine(
            [q("q1", "A", "B", "C"), q("q2", "A", "B", "D")]
        )
        replay(engine, [Event(t, i + 1) for i, t in enumerate("ABCD")])
        state = engine.inspect()
        assert_json_serializable(state)
        assert state["kind"] == "prefix_shared"
        (group,) = [g for g in state["groups"] if g["start"] == "A"]
        assert sorted(group["queries"]) == ["q1", "q2"]
        assert group["trees"][0]["kind"] == "pretree"
        assert "q1" in group["trees"][0]["terminals"]

    def test_workload_engine_inspect_and_rows(self):
        sum_query = (
            seq("A", "B").sum("B", "w").within(ms=50).named("s").build()
        )
        engine = WorkloadEngine(
            [q("q1", "A", "B", "C"), q("q2", "X", "B", "C"), sum_query]
        )
        replay(
            engine,
            [Event("AB"[i % 2], i + 1, {"w": 1.0}) for i in range(20)],
        )
        state = engine.inspect()
        assert_json_serializable(state)
        assert set(state["unshared"]) == {"s"}
        rows = query_rows(engine)
        assert {row["query"] for row in rows} == {"q1", "q2", "s"}
        shared_state = state_of(engine, "q1")
        assert shared_state["query"] == "q1"
        assert shared_state["engine"]["kind"] == "chop_connect"
        assert state_of(engine, "s")["kind"] == "aseq"
        assert state_of(engine, "nope") is None

    def test_unshared_engine_rows_and_state(self):
        engine = UnsharedEngine([q("q1", "A", "B"), q("q2", "A", "C")])
        replay(engine, ab_stream(10))
        rows = query_rows(engine)
        assert {row["query"] for row in rows} == {"q1", "q2"}
        assert all(row["events_processed"] >= 0 for row in rows)
        assert state_of(engine, "q1")["kind"] == "aseq"
        assert state_of(engine, "zzz") is None


class TestStreamEngineInspect:
    def test_inspect_and_query_rows(self):
        registry = MetricsRegistry()
        engine = StreamEngine(registry=registry, stream_name="trades")
        sink = CollectSink()
        engine.register(q("ab", "A", "B", win=10), sink)
        engine.run(ab_stream(64))
        state = engine.inspect()
        assert_json_serializable(state)
        assert state["kind"] == "StreamEngine"
        assert state["stream"] == "trades"
        assert state["events"] == 64
        assert state["queries"]["ab"]["kind"] == "aseq"
        (row,) = engine.query_rows()
        assert row["query"] == "ab"
        assert row["events_routed"] == 64
        assert row["outputs"] > 0
        assert "latency_us_p50" in row  # sampled at the default stride
        assert engine.executor_of("ab") is not None

    def test_watermark_and_lag_gauges(self):
        registry = MetricsRegistry()
        engine = StreamEngine(registry=registry, stream_name="s1")
        engine.register(q("ab", "A", "B", win=10))
        assert engine.watermark_ms is None
        engine.run(ab_stream(10))
        assert engine.watermark_ms == 10
        assert registry.value(
            "repro_event_time_watermark_ms", stream="s1"
        ) == 10.0
        # replaying 10ms of event time takes far less than 10ms of
        # wall clock, so the anchored lag is negative (ahead of time)
        assert registry.value(
            "repro_event_time_lag_seconds", stream="s1"
        ) < 0.0

    def test_refresh_cost_metrics_publishes_gauges(self):
        registry = MetricsRegistry()
        engine = StreamEngine(registry=registry)
        engine.register(q("ab", "A", "B", win=10))
        engine.run(ab_stream(30))
        engine.refresh_cost_metrics()
        assert registry.value("query_live_objects", query="ab") >= 0
        assert registry.value("query_counter_updates", query="ab") > 0

    def test_health_snapshot_plain_engine_is_ok(self):
        engine = StreamEngine()
        engine.register(q("ab", "A", "B", win=10))
        engine.run(ab_stream(10))
        health = health_snapshot(engine)
        assert health["status"] == "ok"
        assert health["healthy"] is True
        assert health["quarantined"] == []
        assert health["events"] == 10


class TestSupervisedInspect:
    def test_inspect_carries_health_and_dlq(self):
        engine = SupervisedStreamEngine(quarantine_after=2)
        engine.register(q("healthy", "A", "B", win=10))
        engine.register_executor(
            "poison",
            FaultyExecutor(ASeqEngine(q("poison", "A", "B", win=10)),
                           poison=True),
        )
        for event in ab_stream(12):
            engine.process(event)
        state = engine.inspect()
        assert_json_serializable(state)
        assert state["quarantined"] == ["poison"]
        assert state["dlq_depth"] == 2
        assert state["health"]["poison"]["quarantined"] is True
        assert state["health"]["healthy"]["quarantined"] is False

    def test_health_snapshot_degrades_on_quarantine(self):
        engine = SupervisedStreamEngine(quarantine_after=2)
        engine.register_executor(
            "poison",
            FaultyExecutor(ASeqEngine(q("poison", "A", "B", win=10)),
                           poison=True),
        )
        for event in ab_stream(6):
            engine.process(event)
        health = health_snapshot(engine)
        assert health["status"] == "degraded"
        assert health["healthy"] is False
        assert health["quarantined"] == ["poison"]
        assert health["dlq_depth"] == 2


class TestEngineInspectFallback:
    def test_engine_inspect_always_has_kind(self):
        class Opaque:
            pass

        assert engine_inspect(Opaque())["kind"] == "Opaque"

    def test_state_of_single_executor(self):
        engine = ASeqEngine(q("solo", "A", "B", win=10))
        assert state_of(engine, "solo")["kind"] == "aseq"
        assert state_of(engine, "other") is None
