"""Unit tests for the pattern/query AST."""

import pytest

from repro.errors import QueryError
from repro.query.ast import (
    AggKind,
    Aggregate,
    NegatedType,
    PositiveType,
    Query,
    SeqPattern,
    Window,
    common_prefix_length,
    positive_subsequences,
)


class TestSeqPattern:
    def test_of_parses_bang(self):
        pattern = SeqPattern.of("A", "B", "!C", "D")
        assert pattern.positive_types == ("A", "B", "D")
        assert pattern.negated_types == ("C",)
        assert pattern.negations == {2: ("C",)}

    def test_length_counts_positives(self):
        assert SeqPattern.of("A", "!N", "B").length == 2

    def test_rejects_empty(self):
        with pytest.raises(QueryError):
            SeqPattern(())

    def test_rejects_leading_negation(self):
        with pytest.raises(QueryError):
            SeqPattern.of("!N", "A")

    def test_rejects_trailing_negation(self):
        with pytest.raises(QueryError):
            SeqPattern.of("A", "!N")

    def test_rejects_adjacent_negations(self):
        with pytest.raises(QueryError):
            SeqPattern.of("A", "!N", "!M", "B")

    def test_multiple_negations_distinct_positions(self):
        pattern = SeqPattern.of("A", "!N", "B", "!M", "C")
        assert pattern.negations == {1: ("N",), 2: ("M",)}

    def test_prefix_keeps_interior_negations(self):
        pattern = SeqPattern.of("A", "!N", "B", "C")
        assert str(pattern.prefix(2)) == "SEQ(A, !N, B)"

    def test_prefix_drops_trailing_negation(self):
        pattern = SeqPattern.of("A", "B", "!N", "C")
        assert str(pattern.prefix(2)) == "SEQ(A, B)"

    def test_prefix_bounds(self):
        pattern = SeqPattern.of("A", "B")
        with pytest.raises(QueryError):
            pattern.prefix(0)
        with pytest.raises(QueryError):
            pattern.prefix(3)

    def test_substring_plain(self):
        pattern = SeqPattern.of("A", "B", "C", "D")
        assert SeqPattern.of("B", "C").elements == pattern.substring(
            1, 3
        ).elements

    def test_substring_keeps_interior_negation(self):
        pattern = SeqPattern.of("A", "B", "!N", "C", "D")
        assert str(pattern.substring(1, 4)) == "SEQ(B, !N, C, D)"

    def test_substring_rejects_cut_through_negation(self):
        pattern = SeqPattern.of("A", "B", "!N", "C", "D")
        with pytest.raises(QueryError):
            pattern.substring(2, 4)  # the !N guard sits on the boundary

    def test_str(self):
        assert str(SeqPattern.of("A", "!C", "B")) == "SEQ(A, !C, B)"

    def test_iteration(self):
        elements = list(SeqPattern.of("A", "!C", "B"))
        assert elements == [
            PositiveType("A"),
            NegatedType("C"),
            PositiveType("B"),
        ]


class TestAggregateAndWindow:
    def test_count_takes_no_target(self):
        with pytest.raises(QueryError):
            Aggregate(AggKind.COUNT, "A", "x")

    def test_value_aggregate_needs_target(self):
        with pytest.raises(QueryError):
            Aggregate(AggKind.SUM)

    def test_str_forms(self):
        assert str(Aggregate.count()) == "COUNT"
        assert str(Aggregate(AggKind.MAX, "C", "w")) == "MAX(C.w)"

    def test_window_positive(self):
        with pytest.raises(QueryError):
            Window(0)

    def test_window_expiry(self):
        assert Window(100).expiry_of(40) == 140


class TestQueryHelpers:
    def test_relevant_types_includes_negated(self):
        query = Query(SeqPattern.of("A", "!N", "B"))
        assert query.relevant_types == {"A", "N", "B"}

    def test_common_prefix_length(self):
        a = SeqPattern.of("A", "B", "C")
        b = SeqPattern.of("A", "B", "D")
        assert common_prefix_length(a, b) == 2

    def test_common_prefix_respects_negation_markers(self):
        a = SeqPattern.of("A", "B", "C")
        b = SeqPattern.of("A", "!N", "B", "C")
        assert common_prefix_length(a, b) == 1

    def test_positive_subsequences(self):
        subs = positive_subsequences(SeqPattern.of("A", "B", "C"))
        assert ("A", "B") in subs and ("A", "B", "C") in subs
        assert all(len(s) >= 2 for s in subs)

    def test_query_str_roundtrip_shape(self):
        query = Query(
            SeqPattern.of("A", "B"),
            window=Window(1000),
            group_by="ip",
        )
        rendered = str(query)
        assert "PATTERN SEQ(A, B)" in rendered
        assert "GROUP BY ip" in rendered
        assert "WITHIN 1000ms" in rendered
