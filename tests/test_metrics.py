"""Measurement helpers (the paper's Sec. 6.1 metrics)."""

from conftest import events_of
from repro.core.executor import ASeqEngine
from repro.engine.metrics import EngineMetrics, RunStats, measure_run
from repro.query import seq


class TestRunStats:
    def test_derived_rates(self):
        stats = RunStats(
            label="x", events=1000, elapsed_s=2.0, outputs=10, peak_objects=5
        )
        assert stats.per_slide_ms == 2.0
        assert stats.per_event_us == 2000.0
        assert stats.events_per_s == 500.0

    def test_zero_division_guards(self):
        stats = RunStats(
            label="x", events=0, elapsed_s=0.0, outputs=0, peak_objects=0
        )
        assert stats.per_slide_ms == 0.0
        assert stats.per_event_us == 0.0
        assert stats.events_per_s == 0.0


class TestMeasureRun:
    def test_measures_counts_and_result(self):
        engine = ASeqEngine(seq("A", "B").count().within(ms=10).build())
        stats = measure_run(
            "aseq", engine, events_of(("A", 1), ("B", 2), ("B", 3))
        )
        assert stats.events == 3
        assert stats.outputs == 2
        assert stats.final_result == 2
        assert stats.elapsed_s >= 0
        assert stats.peak_objects >= 1

    def test_memory_probe_sampled(self):
        engine = ASeqEngine(seq("A", "B").count().within(ms=1000).build())
        events = events_of(*[("A", t) for t in range(1, 50)])
        stats = measure_run("aseq", engine, events, sample_memory_every=1)
        assert stats.peak_objects == 49

    def test_engine_without_probe(self):
        class Minimal:
            def process(self, event):
                return None

            def result(self):
                return 0

        stats = measure_run("min", Minimal(), events_of(("A", 1)))
        assert stats.peak_objects == 0


class TestEngineMetrics:
    def test_note_objects_keeps_peak(self):
        metrics = EngineMetrics()
        metrics.note_objects(5)
        metrics.note_objects(3)
        assert metrics.peak_objects == 5

    def test_per_event_us(self):
        metrics = EngineMetrics(events=100, elapsed_s=0.001)
        assert metrics.per_event_us == 10.0
        assert EngineMetrics().per_event_us == 0.0
