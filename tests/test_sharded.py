"""ShardedStreamEngine: worker lifecycle, planning, and merge rules.

The result-level sharded-vs-single-process pinning lives in
``test_batch_shard_differential.py``; this file covers the machinery —
the deterministic shard hash, the partial-result merge algebra, the
sharded/local query split, the ops-plane surface, and lifecycle edges.
"""

import pytest

from conftest import random_events
from repro.engine.sharded import (
    ShardedStreamEngine,
    _merge_partials,
    shard_of,
)
from repro.engine.sinks import CollectSink
from repro.errors import EngineError
from repro.events.event import Event
from repro.query import parse_query

import random


GROUPED = "PATTERN SEQ(A, B) AGG {agg} WITHIN 50 ms GROUP BY g"


def _events(seed, count=2000, groups=8):
    rng = random.Random(seed)
    return random_events(
        rng,
        ["A", "B", "C"],
        count,
        attr_maker=lambda r, t: {
            "g": r.randint(0, groups - 1), "v": r.randint(1, 5)
        },
    )


def test_shard_of_is_deterministic_and_bounded():
    for key in [0, 1, "user-7", (3, "x"), 9999]:
        first = shard_of(key, 4)
        assert 0 <= first < 4
        assert shard_of(key, 4) == first


def test_merge_scalar_count_and_sum():
    query = parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 10 ms")
    assert _merge_partials(query, [3, 0, 4]) == 7
    query = parse_query("PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 10 ms")
    assert _merge_partials(query, [1.5, 2.0]) == 3.5


def test_merge_scalar_avg_folds_count_and_wsum():
    query = parse_query("PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 10 ms")
    assert _merge_partials(query, [(2, 10.0), (3, 5.0)]) == 3.0
    assert _merge_partials(query, [(0, 0.0), (0, 0.0)]) is None


def test_merge_scalar_extrema_ignore_empty_shards():
    query = parse_query("PATTERN SEQ(A, B) AGG MAX(B.v) WITHIN 10 ms")
    assert _merge_partials(query, [None, 4.0, 2.0]) == 4.0
    assert _merge_partials(query, [None, None]) is None
    query = parse_query("PATTERN SEQ(A, B) AGG MIN(B.v) WITHIN 10 ms")
    assert _merge_partials(query, [3.0, None, 7.0]) == 3.0


def test_merge_grouped_results_union_disjoint_groups():
    query = parse_query(GROUPED.format(agg="COUNT"))
    merged = _merge_partials(query, [{1: 2, 3: 4}, {2: 5}])
    assert merged == {1: 2, 3: 4, 2: 5}


def test_merge_grouped_avg():
    query = parse_query(GROUPED.format(agg="AVG(B.v)"))
    merged = _merge_partials(
        query, [{1: (2, 6.0)}, {1: (2, 2.0), 2: (0, 0.0)}]
    )
    assert merged == {1: 2.0, 2: None}


def test_merge_grouped_extrema_none_safe():
    query = parse_query(GROUPED.format(agg="MAX(B.v)"))
    merged = _merge_partials(query, [{1: None, 2: 3.0}, {1: 5.0, 2: 4.0}])
    assert merged == {1: 5.0, 2: 4.0}


def test_partitionable_queries_shard_others_run_locally():
    with ShardedStreamEngine(shards=2) as engine:
        engine.register(
            parse_query(GROUPED.format(agg="COUNT")), name="grouped"
        )
        engine.register(
            parse_query("PATTERN SEQ(A, C) AGG COUNT WITHIN 20 ms"),
            name="flat",
        )
        assert engine.shard_attribute == "g"
        assert engine.query_names == ["grouped", "flat"]
        engine.run(_events(0, count=300))
        state = engine.inspect()
        assert state["sharded_queries"] == ["grouped"]
        assert state["local_queries"] == ["flat"]
        assert len(state["workers"]) == 2


def test_second_partition_attribute_falls_to_local_lane():
    with ShardedStreamEngine(shards=2) as engine:
        engine.register(
            parse_query(GROUPED.format(agg="COUNT")), name="by_g"
        )
        engine.register(
            parse_query(
                "PATTERN SEQ(A, B) AGG COUNT WITHIN 50 ms GROUP BY v"
            ),
            name="by_v",
        )
        engine.run(_events(1, count=300))
        state = engine.inspect()
        # Only queries sharing the first partition attribute shard;
        # a different key would mis-route events for this query.
        assert state["sharded_queries"] == ["by_g"]
        assert state["local_queries"] == ["by_v"]


def test_register_after_start_is_rejected():
    with ShardedStreamEngine(shards=2) as engine:
        engine.register(parse_query(GROUPED.format(agg="COUNT")), name="q")
        engine.process(Event("A", 1, {"g": 1}))
        with pytest.raises(EngineError):
            engine.register(
                parse_query(GROUPED.format(agg="COUNT")), name="late"
            )


def test_local_lane_sinks_fire_per_trigger():
    sink = CollectSink()
    with ShardedStreamEngine(shards=2) as engine:
        engine.register(
            parse_query("PATTERN SEQ(A, C) AGG COUNT WITHIN 30 ms"),
            sink,
            name="flat",
        )
        engine.run(
            [Event("A", 1), Event("C", 2), Event("A", 3), Event("C", 4)]
        )
    # Per-TRIG emissions exactly as in the single-process engine (1
    # match at C@2, 3 at C@4); local-lane queries get no extra
    # end-of-run delivery.
    assert sink.values() == [1, 3]


def test_sharded_query_sinks_get_final_merged_result():
    sink = CollectSink()
    events = _events(2, count=400)
    with ShardedStreamEngine(shards=3, batch_size=64) as engine:
        engine.register(
            parse_query(GROUPED.format(agg="COUNT")), sink, name="grouped"
        )
        engine.run(events)
        expected = engine.results()["grouped"]
    assert sink.last() is not None
    assert sink.last().value == expected


def test_query_rows_merge_worker_totals():
    events = _events(3, count=600)
    with ShardedStreamEngine(shards=2, batch_size=64) as engine:
        engine.register(
            parse_query(GROUPED.format(agg="COUNT")), name="grouped"
        )
        engine.run(events)
        rows = engine.query_rows()
    assert len(rows) == 1
    row = rows[0]
    assert row["query"] == "grouped"
    assert row["shards"] == 2
    # Every A/B event lands on exactly one shard, so the per-shard
    # post-filter totals add back up to the stream's relevant count.
    relevant = sum(1 for e in events if e.event_type in ("A", "B"))
    assert row["events_processed"] == relevant


def test_results_before_any_event():
    with ShardedStreamEngine(shards=2) as engine:
        engine.register(
            parse_query(GROUPED.format(agg="COUNT")), name="grouped"
        )
        assert engine.results() == {"grouped": {}}


def test_close_is_idempotent_and_context_manager_safe():
    engine = ShardedStreamEngine(shards=2)
    engine.register(parse_query(GROUPED.format(agg="COUNT")), name="q")
    engine.process(Event("A", 1, {"g": 0}))
    engine.close()
    engine.close()


def test_executor_of_rejects_sharded_queries():
    with ShardedStreamEngine(shards=2) as engine:
        engine.register(
            parse_query(GROUPED.format(agg="COUNT")), name="grouped"
        )
        engine.register(
            parse_query("PATTERN SEQ(A, C) AGG COUNT WITHIN 20 ms"),
            name="flat",
        )
        assert engine.executor_of("flat") is not None
        with pytest.raises(EngineError):
            engine.executor_of("grouped")


def test_state_of_reaches_worker_executors():
    from repro.obs.inspect import state_of

    with ShardedStreamEngine(shards=2, batch_size=2) as engine:
        engine.register(
            parse_query(GROUPED.format(agg="COUNT")), name="grouped"
        )
        engine.register(
            parse_query("PATTERN SEQ(A, C) AGG COUNT WITHIN 20 ms"),
            name="flat",
        )
        engine.run(_events(5, count=200))
        sharded_state = state_of(engine, "grouped")
        assert sharded_state["kind"] == "sharded"
        assert len(sharded_state["shards"]) == 2
        assert state_of(engine, "flat") is not None
        assert state_of(engine, "nope") is None


def test_invalid_construction_rejected():
    with pytest.raises(ValueError):
        ShardedStreamEngine(shards=0)
    with pytest.raises(ValueError):
        ShardedStreamEngine(batch_size=0)


def test_keyless_negated_events_broadcast_to_every_shard():
    query = parse_query(
        "PATTERN SEQ(A, !N, B) AGG COUNT WITHIN 100 ms GROUP BY g"
    )
    events = [
        Event("A", 1, {"g": 0}),
        Event("A", 2, {"g": 1}),
        Event("N", 3),  # keyless: must invalidate both groups
        Event("B", 4, {"g": 0}),
        Event("B", 5, {"g": 1}),
    ]
    from repro.engine.engine import StreamEngine

    reference = StreamEngine()
    reference.register(query, name="q")
    reference.run(events)
    with ShardedStreamEngine(shards=2, batch_size=2) as engine:
        engine.register(query, name="q")
        engine.run(events)
        assert engine.results() == reference.results()
