"""Kleene-plus counting — ``SEQ(A, B+, C)`` (GRETA-direction extension).

Matches contain one or more instances at the Kleene position (any
increasing subsequence). The prefix-counter update becomes
``count' = 2*count + count_prev``, still O(1) per arrival. COUNT only;
windows, choices elsewhere in the pattern, GROUP BY and equivalence all
compose. The brute-force oracle enumerates repetitions explicitly and
anchors every differential test.
"""

import random

import pytest

from conftest import assert_matches_oracle, events_of, random_events, replay
from repro.baseline.oracle import enumerate_matches
from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.errors import ParseError, PlanError, QueryError
from repro.query import parse_query, seq
from repro.query.ast import KleeneType, SeqPattern


class TestKleeneAst:
    def test_of_parses_plus(self):
        pattern = SeqPattern.of("A", "B+", "C")
        assert pattern.positive_types == ("A", "B+", "C")
        assert pattern.kleene_positions == {1}
        assert pattern.has_kleene
        assert str(pattern) == "SEQ(A, B+, C)"

    def test_alternatives_of_kleene(self):
        assert KleeneType("B").alternatives == ("B",)

    def test_kleene_cannot_open_pattern(self):
        with pytest.raises(QueryError):
            SeqPattern.of("B+", "C")

    def test_kleene_may_close_pattern(self):
        pattern = SeqPattern.of("A", "B+")
        assert pattern.trigger_alternatives == ("B",)

    def test_negation_adjacent_to_kleene_rejected(self):
        with pytest.raises(QueryError):
            SeqPattern.of("A", "B+", "!N", "C")
        with pytest.raises(QueryError):
            SeqPattern.of("A", "!N", "B+", "C")

    def test_non_adjacent_negation_ok(self):
        pattern = SeqPattern.of("A", "B+", "C", "!N", "D")
        assert pattern.negations == {3: ("N",)}

    def test_value_aggregates_rejected(self):
        with pytest.raises(QueryError):
            seq("A", "B+").sum("A", "w").build()


class TestKleeneParsing:
    def test_plus_suffix(self):
        query = parse_query("PATTERN SEQ(A, B+, C) AGG COUNT WITHIN 1 s")
        assert query.pattern.kleene_positions == {1}

    def test_negated_kleene_rejected(self):
        with pytest.raises(ParseError):
            parse_query("PATTERN SEQ(A, !B+, C)")

    def test_choice_kleene_rejected(self):
        with pytest.raises(ParseError):
            parse_query("PATTERN SEQ(A, (B|C)+, D)")


class TestKleeneCounting:
    def test_doubling_recurrence(self):
        """(A, B+): with k B's after one A the count is 2^k - 1."""
        engine = ASeqEngine(seq("A", "B+").count().build())
        outputs = replay(
            engine,
            events_of(("A", 1), ("B", 2), ("B", 3), ("B", 4)),
        )
        assert outputs == [1, 3, 7]

    def test_anchored_both_sides(self):
        """(A, B+, C) with 2 B's: subsets {b1}, {b2}, {b1,b2} -> 3."""
        engine = ASeqEngine(seq("A", "B+", "C").count().build())
        outputs = replay(
            engine,
            events_of(("A", 1), ("B", 2), ("B", 3), ("C", 4)),
        )
        assert outputs == [3]

    def test_requires_at_least_one_instance(self):
        engine = ASeqEngine(seq("A", "B+", "C").count().build())
        outputs = replay(engine, events_of(("A", 1), ("C", 2)))
        assert outputs == [0]

    def test_windowed_expiry(self):
        engine = ASeqEngine(
            seq("A", "B+", "C").count().within(ms=5).build()
        )
        replay(
            engine,
            events_of(("A", 1), ("B", 2), ("C", 3)),
        )
        assert engine.result() == 1
        engine.process(events_of(("C", 10))[0])  # the A died at 6
        assert engine.result() == 0

    def test_oracle_enumerates_repetitions(self):
        query = seq("A", "B+", "C").count().build()
        events = events_of(("A", 1), ("B", 2), ("B", 3), ("C", 4))
        matches = enumerate_matches(events, query)
        lengths = sorted(len(m) for m in matches)
        assert lengths == [3, 3, 4]

    def test_baseline_rejects_kleene(self):
        with pytest.raises(QueryError):
            TwoStepEngine(seq("A", "B+").count().build())

    def test_columnar_overflow_guard(self):
        """int64 doubling fails loudly instead of wrapping silently."""
        from repro.events import Event

        query = seq("A", "B+").count().within(ms=100_000).build()
        engine = ASeqEngine(query, vectorized=True)
        engine.process(Event("A", 1))
        with pytest.raises(OverflowError):
            for ts in range(2, 100):
                engine.process(Event("B", ts))

    def test_reference_engine_counts_past_int64(self):
        from repro.events import Event

        query = seq("A", "B+").count().within(ms=100_000).build()
        engine = ASeqEngine(query)
        engine.process(Event("A", 1))
        for ts in range(2, 102):
            engine.process(Event("B", ts))
        assert engine.result() == 2**100 - 1

    def test_shared_engines_reject_kleene(self):
        from repro.multi import PrefixSharedEngine, chop

        query = seq("A", "B+").count().within(ms=5).named("q").build()
        with pytest.raises(PlanError):
            PrefixSharedEngine([query])
        with pytest.raises(PlanError):
            chop(query, 1)


class TestKleeneDifferential:
    @pytest.mark.parametrize("window_ms", [None, 8, 15])
    def test_middle_kleene(self, window_ms):
        rng = random.Random(window_ms or 3)
        builder = seq("A", "B+", "C").count()
        if window_ms:
            builder = builder.within(ms=window_ms)
        query = builder.build()
        for _ in range(40):
            # Small streams: Kleene match counts explode exponentially.
            events = random_events(rng, ["A", "B", "C"], 14)
            engines = [ASeqEngine(query), ASeqEngine(query, vectorized=True)]
            assert_matches_oracle(query, engines, events)

    def test_trailing_kleene(self):
        rng = random.Random(13)
        query = seq("A", "B+").count().within(ms=10).build()
        for _ in range(40):
            events = random_events(rng, ["A", "B"], 14)
            engines = [ASeqEngine(query), ASeqEngine(query, vectorized=True)]
            assert_matches_oracle(query, engines, events)

    def test_two_kleene_positions(self):
        rng = random.Random(23)
        query = seq("A", "B+", "C+").count().within(ms=12).build()
        for _ in range(30):
            events = random_events(rng, ["A", "B", "C"], 12)
            engines = [ASeqEngine(query), ASeqEngine(query, vectorized=True)]
            assert_matches_oracle(query, engines, events)

    def test_kleene_with_choice_elsewhere(self):
        rng = random.Random(33)
        query = seq("A|X", "B+", "C").count().within(ms=12).build()
        for _ in range(30):
            events = random_events(rng, ["A", "X", "B", "C"], 12)
            assert_matches_oracle(query, [ASeqEngine(query)], events)

    def test_kleene_with_distant_negation(self):
        rng = random.Random(43)
        query = seq("A", "B+", "C", "!N", "D").count().within(ms=15).build()
        for _ in range(30):
            events = random_events(rng, ["A", "B", "C", "D", "N"], 13)
            assert_matches_oracle(query, [ASeqEngine(query)], events)

    def test_kleene_with_group_by(self):
        rng = random.Random(53)

        def attrs(r, event_type):
            return {"ip": r.choice(["x", "y"])}

        query = (
            seq("A", "B+").group_by("ip").count().within(ms=12).build()
        )
        for _ in range(30):
            events = random_events(
                rng, ["A", "B"], 14, attr_maker=attrs
            )
            assert_matches_oracle(query, [ASeqEngine(query)], events)

    def test_checkpoint_round_trip_with_kleene(self):
        import json

        from repro.core.checkpoint import checkpoint, restore

        rng = random.Random(63)
        query = seq("A", "B+", "C").count().within(ms=15).build()
        events = random_events(rng, ["A", "B", "C"], 30)
        straight = ASeqEngine(query)
        first = ASeqEngine(query)
        for event in events[:15]:
            straight.process(event)
            first.process(event)
        state = json.loads(json.dumps(checkpoint(first)))
        resumed = restore(query, state)
        for event in events[15:]:
            straight.process(event)
            resumed.process(event)
        assert resumed.result() == straight.result()
