"""End-to-end integration: generators -> engines -> sinks.

Each test wires the public API exactly as the examples do, on smaller
streams, and asserts observable behaviour (alerts fired, aggregates
agreeing across engines) rather than internals.
"""

import pytest

from repro import ASeqEngine, TwoStepEngine, parse_query
from repro.datagen import (
    ClickStreamGenerator,
    LoginStreamGenerator,
    StockTradeGenerator,
)
from repro.engine import CollectSink, StreamEngine, ThresholdAlertSink
from repro.multi import (
    ChopConnectEngine,
    PrefixSharedEngine,
    UnsharedEngine,
    plan_workload,
)
from repro.query import seq


class TestStockPipeline:
    def test_aseq_and_baseline_agree_on_stock_stream(self):
        query = parse_query(
            "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 300 ms"
        )
        events = StockTradeGenerator(mean_gap_ms=1, seed=3).take(5_000)
        aseq = ASeqEngine(query)
        baseline = TwoStepEngine(query)
        for event in events:
            aseq.process(event)
            baseline.process(event)
        assert aseq.result() == baseline.result()
        assert aseq.result() > 0  # the workload actually exercises the path

    def test_sum_aggregate_on_prices(self):
        query = parse_query(
            "PATTERN SEQ(DELL, AMAT) AGG SUM(AMAT.price) WITHIN 200 ms"
        )
        events = StockTradeGenerator(mean_gap_ms=1, seed=3).take(4_000)
        aseq = ASeqEngine(query)
        baseline = TwoStepEngine(query)
        for event in events:
            aseq.process(event)
            baseline.process(event)
        assert aseq.result() == pytest.approx(baseline.result())


class TestSecurityPipeline:
    def test_attackers_cross_threshold_normals_do_not(self):
        query = parse_query(
            """
            PATTERN SEQ(TypeUsername, TypePassword, ClickSubmit)
            WHERE TypePassword.wrong = TRUE
            GROUP BY ip
            AGG COUNT
            WITHIN 10s
            """,
            name="bruteforce",
        )
        generator = LoginStreamGenerator(
            normal_ips=20, attacker_ips=2, mean_gap_ms=40, seed=8
        )
        # Counts are combinatorial across interleaved attempts: two
        # coincident wrong logins can already produce ~8 matches, so the
        # attack threshold demands a genuine burst.
        sink = ThresholdAlertSink(30, lambda alert: None)
        engine = StreamEngine()
        engine.register(query, sink)
        engine.run(generator.stream(12_000))
        alerted_ips = {
            key for alert in sink.alerts for key in alert.value
        }
        assert set(generator.attacker_ips) <= alerted_ips
        normals = {ip for ip in alerted_ips if ip.startswith("10.")}
        assert not normals

    def test_collect_sink_sees_every_trigger(self):
        query = seq("A", "B").count().within(ms=50).named("q").build()
        sink = CollectSink()
        engine = StreamEngine()
        engine.register(query, sink)
        from repro.events import Event

        engine.run([Event("A", 1), Event("B", 2), Event("B", 3)])
        assert [o.value for o in sink.outputs] == [1, 2]
        assert [o.ts for o in sink.outputs] == [2, 3]


class TestFunnelPipeline:
    def test_negation_funnel_counts_subset(self):
        clicks = ClickStreamGenerator(
            users=40, buy_rate=0.6, rec_rate=0.3, mean_gap_ms=100, seed=9
        ).take(15_000)
        base = (
            seq("VKindle", "BKindle", "VCase", "BCase")
            .where_equal("userId")
            .count()
            .within(minutes=30)
            .build()
        )
        organic = (
            seq("VKindle", "BKindle", "!REC", "VCase", "BCase")
            .where_equal("userId")
            .count()
            .within(minutes=30)
            .build()
        )
        all_engine = ASeqEngine(base)
        organic_engine = ASeqEngine(organic)
        for click in clicks:
            all_engine.process(click)
            organic_engine.process(click)
        assert 0 < organic_engine.result() < all_engine.result()

    def test_group_by_matches_equivalence_totals(self):
        """Summing the GROUP BY dict equals the equivalence-combined scalar."""
        clicks = ClickStreamGenerator(users=10, seed=9).take(4_000)
        combined = (
            seq("VKindle", "BKindle")
            .where_equal("userId")
            .count()
            .within(minutes=5)
            .build()
        )
        grouped = (
            seq("VKindle", "BKindle")
            .group_by("userId")
            .count()
            .within(minutes=5)
            .build()
        )
        combined_engine = ASeqEngine(combined)
        grouped_engine = ASeqEngine(grouped)
        for click in clicks:
            combined_engine.process(click)
            grouped_engine.process(click)
        assert combined_engine.result() == sum(
            grouped_engine.result().values()
        )


class TestMultiQueryPipeline:
    def test_example6_workload_three_ways(self):
        def q(name, *pattern):
            return (
                seq(*pattern).count().within(minutes=10).named(name).build()
            )

        queries = [
            q("Q1", "VKindle", "BKindle", "VCase", "BCase"),
            q("Q2", "VKindle", "BKindle", "VKindleFire"),
            q("Q5", "ViPad", "VKindleFire", "VKindle", "BKindle"),
        ]
        clicks = ClickStreamGenerator(
            users=25, mean_gap_ms=200, seed=12
        ).take(10_000)
        plans, shared = plan_workload(queries)
        assert shared is not None

        unshared = UnsharedEngine(queries)
        prefix_shared = PrefixSharedEngine(queries[:2])
        chopped = ChopConnectEngine(plans)
        for click in clicks:
            unshared.process(click)
            prefix_shared.process(click)
            chopped.process(click)

        reference = unshared.result()
        assert chopped.result() == reference
        for name in ("Q1", "Q2"):
            assert prefix_shared.result(name) == reference[name]

    def test_stream_engine_hosts_shared_executor(self):
        queries = [
            seq("A", "B").count().within(ms=50).named("x").build(),
            seq("A", "C").count().within(ms=50).named("y").build(),
        ]
        shared = PrefixSharedEngine(queries)
        engine = StreamEngine()
        sink = CollectSink()
        engine.register_executor("workload", shared, sink)
        from repro.events import Event

        engine.run([Event("A", 1), Event("B", 2), Event("C", 3)])
        assert engine.result("workload") == {"x": 1, "y": 1}
        assert len(sink) == 2
