"""Chop-Connect: chop plans, snapshot tables, and the CC runtime."""

import random

import pytest

from conftest import random_events, replay
from repro.baseline.oracle import BruteForceOracle
from repro.core.executor import ASeqEngine
from repro.errors import PlanError
from repro.events import Event
from repro.multi.chop import ChopPlan, chop
from repro.multi.chop_connect import ChopConnectEngine
from repro.multi.snapshot import Snapshot, SnapshotTable
from repro.query import seq


def q(name, *pattern, win=20):
    return seq(*pattern).count().within(ms=win).named(name).build()


class TestChopPlan:
    def test_segments(self):
        plan = chop(q("q", "A", "B", "C", "D", "E"), 2, 4)
        assert plan.segments == (("A", "B"), ("C", "D"), ("E",))

    def test_no_cuts_single_segment(self):
        plan = chop(q("q", "A", "B"))
        assert plan.segments == (("A", "B"),)

    def test_cut_bounds(self):
        with pytest.raises(PlanError):
            chop(q("q", "A", "B"), 0)
        with pytest.raises(PlanError):
            chop(q("q", "A", "B"), 2)
        with pytest.raises(PlanError):
            chop(q("q", "A", "B", "C"), 2, 2)

    def test_requires_window(self):
        query = seq("A", "B").count().named("q").build()
        with pytest.raises(PlanError):
            chop(query, 1)

    def test_rejects_negation(self):
        query = seq("A", "!N", "B").count().within(ms=5).named("q").build()
        with pytest.raises(PlanError):
            chop(query, 1)

    def test_rejects_unnamed(self):
        query = seq("A", "B").count().within(ms=5).build()
        with pytest.raises(PlanError):
            chop(query, 1)

    def test_str(self):
        assert str(chop(q("q", "A", "B", "C"), 1)) == "q: (A) | (B, C)"


class TestSnapshot:
    def test_alive_total_filters_expired_rows(self):
        snapshot = Snapshot([("a1", 5, 3), ("a2", 10, 4)])
        assert snapshot.alive_total(now=4) == 7
        assert snapshot.alive_total(now=5) == 4
        assert snapshot.alive_total(now=10) == 0

    def test_rows_sorted_by_expiry(self):
        snapshot = Snapshot([("a2", 10, 4), ("a1", 5, 3)])
        assert snapshot.exps == [5, 10]
        assert snapshot.alive_total(now=7) == 4

    def test_alive_items(self):
        snapshot = Snapshot([("a1", 5, 3), ("a2", 10, 4)])
        assert list(snapshot.alive_items(now=5)) == [("a2", 10, 4)]

    def test_empty(self):
        snapshot = Snapshot(())
        assert not snapshot
        assert snapshot.alive_total(0) == 0


class TestSnapshotTable:
    def test_add_get(self):
        table = SnapshotTable()
        snapshot = Snapshot([("a1", 10, 3)])
        table.add("d1", 15, snapshot)
        assert table.get("d1") is snapshot
        assert table.get("d2") is None

    def test_purge_by_cnet_expiry(self):
        table = SnapshotTable()
        table.add("d1", 5, Snapshot([("a1", 4, 1)]))
        table.add("d2", 9, Snapshot([("a1", 4, 1)]))
        table.purge(now=5)
        assert table.get("d1") is None
        assert table.get("d2") is not None
        assert len(table) == 1

    def test_row_accounting(self):
        table = SnapshotTable()
        table.add("d1", 5, Snapshot([("a1", 4, 1), ("a2", 4, 2)]))
        assert table.live_rows() == 2
        assert table.snapshots_created == 1
        assert table.rows_written == 2


class TestChopConnectSemantics:
    def test_two_segment_basic(self):
        query = q("q", "A", "B", "C", "D")
        engine = ChopConnectEngine([chop(query, 2)])
        outputs = replay(
            engine,
            [Event(t, ts) for ts, t in enumerate("ABCD", start=1)],
        )
        assert outputs == [{"q": 1}]

    def test_connect_respects_time_order(self):
        """A sub_1 match completed AFTER the CNET must not connect."""
        query = q("q", "A", "B", "C", "D")
        engine = ChopConnectEngine([chop(query, 2)])
        # C arrives before B: (A,B) completes after c1 -> no match for c1.
        replay(
            engine,
            [Event("A", 1), Event("C", 2), Event("B", 3), Event("D", 4)],
        )
        assert engine.result("q") == 0

    def test_snapshot_frozen_at_cnet_arrival(self):
        """Paper Lemma 7: later (A,B) matches don't retroactively attach."""
        query = q("q", "A", "B", "C", "D")
        engine = ChopConnectEngine([chop(query, 2)])
        replay(
            engine,
            [
                Event("A", 1), Event("B", 2),   # one (A,B)
                Event("C", 3),                   # snapshot: count 1
                Event("B", 4),                   # second (A,B), after c1
                Event("D", 5),
            ],
        )
        # Only <a1,b2,c3,d5>; <a1,b4,...> has B after C.
        assert engine.result("q") == 1

    def test_expiry_through_snapshot_rows(self):
        """Paper Example 8 structure: the START expiring kills connected
        counts even though the CNET is still alive."""
        query = q("q", "A", "B", "C", "D", win=6)
        engine = ChopConnectEngine([chop(query, 2)])
        replay(
            engine,
            [
                Event("A", 1),  # exp 7
                Event("B", 2),
                Event("C", 3),  # snapshot of (A,B)=1 on c1
                Event("D", 8),  # a1 is dead now
            ],
        )
        assert engine.result("q") == 0

    def test_multi_connect_three_segments(self):
        """Paper Example 9 structure: (A,B,C,D,E,F,G) as 3 substrings."""
        query = q("q", "A", "B", "C", "D", "E", "F", "G", win=50)
        engine = ChopConnectEngine([chop(query, 3, 5)])
        events = [Event(t, ts) for ts, t in enumerate("ABCDEFG", start=1)]
        outputs = replay(engine, events)
        assert outputs == [{"q": 1}]

    def test_shared_segment_engine_is_single(self):
        q1 = q("q1", "A", "B", "C", "D")
        q2 = q("q2", "X", "C", "D")
        engine = ChopConnectEngine([chop(q1, 2), chop(q2, 1)])
        # Segments: (A,B), (C,D), (X) -> 3 distinct engines, (C,D) shared.
        assert engine.shared_segment_engines == 3

    def test_duplicate_names_rejected(self):
        with pytest.raises(PlanError):
            ChopConnectEngine([chop(q("q", "A", "B"), 1)] * 2)

    def test_mixed_windows_rejected(self):
        with pytest.raises(PlanError):
            ChopConnectEngine(
                [
                    chop(q("q1", "A", "B", win=10), 1),
                    chop(q("q2", "A", "B", win=20), 1),
                ]
            )

    def test_describe(self):
        engine = ChopConnectEngine([chop(q("q1", "A", "B", "C"), 1)])
        assert "q1: (A) | (B, C)" in engine.describe()


class TestChopConnectDifferential:
    @pytest.mark.parametrize("cuts", [(1,), (2,), (3,), (1, 2), (1, 3), (2, 3), (1, 2, 3)])
    def test_every_cut_of_length4_matches_plain(self, cuts):
        rng = random.Random(hash(cuts) & 0xFFFF)
        query = q("q", "A", "B", "C", "D", win=12)
        for _ in range(25):
            events = random_events(rng, ["A", "B", "C", "D"], 30)
            chopped = ChopConnectEngine([ChopPlan(query, cuts)])
            plain = ASeqEngine(query)
            replay(chopped, events)
            replay(plain, events)
            assert chopped.result("q") == plain.result()

    def test_workload_matches_oracle(self):
        rng = random.Random(404)
        q1 = q("q1", "A", "B", "C", "D", win=15)
        q2 = q("q2", "X", "C", "D", win=15)
        q3 = q("q3", "C", "D", "Y", win=15)
        plans = [chop(q1, 2), chop(q2, 1), chop(q3, 2)]
        for _ in range(30):
            events = random_events(
                rng, ["A", "B", "C", "D", "X", "Y"], rng.randint(10, 35)
            )
            engine = ChopConnectEngine(plans)
            replay(engine, events)
            for query in (q1, q2, q3):
                expected = BruteForceOracle(query).aggregate(events)
                assert engine.result(query.name) == expected, query.name

    def test_outputs_match_unshared_at_every_trigger(self):
        rng = random.Random(505)
        query = q("q", "A", "B", "C", win=10)
        events = random_events(rng, ["A", "B", "C"], 80)
        chopped = ChopConnectEngine([chop(query, 1)])
        plain = ASeqEngine(query)
        for event in events:
            fresh = chopped.process(event)
            expected = plain.process(event)
            if expected is not None:
                assert fresh == {"q": expected}
