"""Unit tests for the event model and stream substrate."""

import pytest

from repro.errors import OutOfOrderError, StreamError
from repro.events import Event, EventStream, merge_streams
from repro.events.schema import (
    AttributeSpec,
    EventSchema,
    StreamSchema,
    schema_from_example,
)
from repro.events.stream import collect


class TestEvent:
    def test_basic_fields(self):
        event = Event("A", 5, {"x": 1})
        assert event.event_type == "A"
        assert event.ts == 5
        assert event["x"] == 1

    def test_attrs_default_empty(self):
        event = Event("A", 1)
        assert event.attrs == {}
        assert "x" not in event
        assert event.get("x", 9) == 9

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            Event("A", 1)["missing"]

    def test_equality_ignores_seq(self):
        assert Event("A", 1, {"x": 1}) == Event("A", 1, {"x": 1})
        assert Event("A", 1) != Event("B", 1)
        assert Event("A", 1) != Event("A", 2)

    def test_equality_with_non_event(self):
        assert Event("A", 1) != "A"

    def test_with_attrs_copies(self):
        original = Event("A", 1, {"x": 1})
        updated = original.with_attrs(x=2, y=3)
        assert original["x"] == 1
        assert updated["x"] == 2 and updated["y"] == 3
        assert updated.ts == 1

    def test_iteration_over_attr_names(self):
        event = Event("A", 1, {"x": 1, "y": 2})
        assert sorted(event) == ["x", "y"]

    def test_attrs_are_copied_at_construction(self):
        source = {"x": 1}
        event = Event("A", 1, source)
        source["x"] = 99
        assert event["x"] == 1


class TestEventStream:
    def test_delivers_in_order(self):
        events = [Event("A", 1), Event("B", 2)]
        assert collect(EventStream(iter(events))) == events

    def test_rejects_out_of_order(self):
        stream = EventStream(iter([Event("A", 5), Event("B", 3)]))
        next(stream)
        with pytest.raises(OutOfOrderError):
            next(stream)

    def test_equal_timestamps_allowed(self):
        stream = EventStream(iter([Event("A", 5), Event("B", 5)]))
        assert len(collect(stream)) == 2

    def test_order_enforcement_can_be_disabled(self):
        stream = EventStream(
            iter([Event("A", 5), Event("B", 3)]), enforce_order=False
        )
        assert len(collect(stream)) == 2

    def test_assigns_sequence_numbers(self):
        stream = EventStream(iter([Event("A", 1), Event("B", 2)]))
        first, second = collect(stream)
        assert (first.seq, second.seq) == (0, 1)

    def test_counts_delivered(self):
        stream = EventStream(iter([Event("A", 1), Event("B", 2)]))
        collect(stream)
        assert stream.events_delivered == 2

    def test_filtered(self):
        events = [Event("A", 1), Event("B", 2), Event("A", 3)]
        stream = EventStream(iter(events)).filtered(
            lambda e: e.event_type == "A"
        )
        assert [e.ts for e in stream] == [1, 3]

    def test_limited(self):
        events = [Event("A", t) for t in range(1, 10)]
        stream = EventStream(iter(events)).limited(3)
        assert len(collect(stream)) == 3

    def test_merge_streams_interleaves_by_ts(self):
        left = [Event("A", 1), Event("A", 5)]
        right = [Event("B", 2), Event("B", 4)]
        merged = collect(merge_streams(left, right))
        assert [e.ts for e in merged] == [1, 2, 4, 5]


class TestSchemas:
    def test_attribute_spec_type_check(self):
        spec = AttributeSpec("price", float)
        spec.validate(Event("A", 1, {"price": 1.5}))
        with pytest.raises(StreamError):
            spec.validate(Event("A", 1, {"price": "high"}))

    def test_required_attribute_missing(self):
        spec = AttributeSpec("price", float)
        with pytest.raises(StreamError):
            spec.validate(Event("A", 1))

    def test_optional_attribute_missing_ok(self):
        spec = AttributeSpec("note", str, required=False)
        spec.validate(Event("A", 1))

    def test_event_schema_make_validates(self):
        schema = EventSchema("Trade", (AttributeSpec("price", float),))
        event = schema.make(3, price=9.5)
        assert event.ts == 3 and event["price"] == 9.5
        with pytest.raises(StreamError):
            schema.make(3, price="x")

    def test_event_schema_rejects_other_type(self):
        schema = EventSchema("Trade")
        with pytest.raises(StreamError):
            schema.validate(Event("Quote", 1))

    def test_stream_schema_strict_rejects_unknown(self):
        schema = StreamSchema.of(EventSchema("Trade"), strict=True)
        schema.validate(Event("Trade", 1))
        with pytest.raises(StreamError):
            schema.validate(Event("Quote", 1))

    def test_stream_schema_lenient_ignores_unknown(self):
        schema = StreamSchema.of(EventSchema("Trade"))
        schema.validate(Event("Quote", 1))

    def test_stream_validation_applied_by_stream(self):
        schema = StreamSchema.of(
            EventSchema("Trade", (AttributeSpec("price", float),))
        )
        stream = EventStream(
            iter([Event("Trade", 1, {"price": "bad"})]), schema=schema
        )
        with pytest.raises(StreamError):
            next(stream)

    def test_schema_from_example(self):
        schema = schema_from_example("Trade", {"price": 1.0, "volume": 10})
        schema.validate(Event("Trade", 1, {"price": 2.0, "volume": 5}))
        with pytest.raises(StreamError):
            schema.validate(Event("Trade", 1, {"price": 2.0}))
