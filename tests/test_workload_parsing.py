"""Workload-text parsing (named multi-query inputs)."""

import pytest

from repro.errors import ParseError
from repro.multi import PrefixSharedEngine
from repro.query import parse_workload


class TestParseWorkload:
    def test_basic(self):
        workload = parse_workload(
            """
            Q1: PATTERN SEQ(A, B, C) AGG COUNT WITHIN 1 s;
            Q2: PATTERN SEQ(A, B, D) AGG COUNT WITHIN 1 s;
            """
        )
        assert [q.name for q in workload] == ["Q1", "Q2"]
        assert workload[0].pattern.positive_types == ("A", "B", "C")

    def test_trailing_semicolon_ok(self):
        workload = parse_workload("Q1: PATTERN SEQ(A, B);")
        assert len(workload) == 1

    def test_missing_name_rejected(self):
        with pytest.raises(ParseError):
            parse_workload("PATTERN SEQ(A, B)")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ParseError):
            parse_workload(
                "Q1: PATTERN SEQ(A, B); Q1: PATTERN SEQ(A, C)"
            )

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_workload("  ;  ; ")

    def test_name_with_spaces_rejected(self):
        with pytest.raises(ParseError):
            parse_workload("Q 1: PATTERN SEQ(A, B)")

    def test_feeds_shared_engine(self):
        from repro.events import Event

        workload = parse_workload(
            """
            left:  PATTERN SEQ(A, B) AGG COUNT WITHIN 100 ms;
            right: PATTERN SEQ(A, C) AGG COUNT WITHIN 100 ms;
            """
        )
        engine = PrefixSharedEngine(workload)
        for ts, name in enumerate("ABC", start=1):
            engine.process(Event(name, ts))
        assert engine.result() == {"left": 1, "right": 1}
