"""Prefix-shared engine vs. per-query A-Seq and the oracle."""

import random

import pytest

from conftest import random_events, replay
from repro.baseline.oracle import BruteForceOracle
from repro.core.executor import ASeqEngine
from repro.errors import PlanError
from repro.events import Event
from repro.multi.prefix_sharing import PrefixSharedEngine
from repro.query import seq


def q(name, *pattern, win=100):
    return seq(*pattern).count().within(ms=win).named(name).build()


class TestPrefixSharedEngine:
    def test_empty_workload_rejected(self):
        with pytest.raises(PlanError):
            PrefixSharedEngine([])

    def test_basic_two_query_sharing(self):
        engine = PrefixSharedEngine([q("q1", "A", "B", "C"), q("q2", "A", "B", "D")])
        for i, name in enumerate("ABCD"):
            engine.process(Event(name, ts=i + 1))
        assert engine.result() == {"q1": 1, "q2": 1}

    def test_process_reports_completed_queries_only(self):
        engine = PrefixSharedEngine([q("q1", "A", "B"), q("q2", "A", "C")])
        assert engine.process(Event("A", 1)) is None
        assert engine.process(Event("B", 2)) == {"q1": 1}
        assert engine.process(Event("C", 3)) == {"q2": 1}

    def test_result_by_name(self):
        engine = PrefixSharedEngine([q("q1", "A", "B")])
        replay(engine, [Event("A", 1), Event("B", 2)])
        assert engine.result("q1") == 1
        with pytest.raises(KeyError):
            engine.result("nope")

    def test_multiple_start_types_build_multiple_trees(self):
        engine = PrefixSharedEngine([q("q1", "A", "B"), q("q2", "X", "B")])
        replay(
            engine,
            [Event("A", 1), Event("X", 2), Event("B", 3)],
        )
        assert engine.result() == {"q1": 1, "q2": 1}

    def test_window_expiry(self):
        engine = PrefixSharedEngine([q("q1", "A", "B", win=5)])
        replay(engine, [Event("A", 1), Event("B", 2)])
        assert engine.result("q1") == 1
        engine.process(Event("B", 7))  # a1 expired at 6
        assert engine.result("q1") == 0

    def test_unwindowed_workload_uses_global_tree(self):
        queries = [
            seq("A", "B").count().named("q1").build(),
            seq("A", "C").count().named("q2").build(),
        ]
        engine = PrefixSharedEngine(queries)
        replay(
            engine,
            [Event("A", 1), Event("A", 2), Event("B", 3), Event("C", 4)],
        )
        assert engine.result() == {"q1": 2, "q2": 2}
        assert engine.current_counters() == 3  # one global tree, 3 nodes

    def test_counter_accounting(self):
        engine = PrefixSharedEngine(
            [q("q1", "A", "B", "C"), q("q2", "A", "B", "D")]
        )
        replay(engine, [Event("A", 1), Event("A", 2)])
        # Two tree instances x 4 nodes (A, B, C, D).
        assert engine.current_counters() == 8
        assert engine.peak_counters == 8

    def test_describe_shows_structure(self):
        engine = PrefixSharedEngine([q("q1", "A", "B"), q("q2", "A", "C")])
        assert "PreTree(start=A)" in engine.describe()


class TestPrefixSharedDifferential:
    @pytest.mark.parametrize("win", [None, 10, 25])
    def test_matches_per_query_aseq_and_oracle(self, win):
        rng = random.Random(win or 3)

        def build(name, *pattern):
            builder = seq(*pattern).count()
            if win:
                builder = builder.within(ms=win)
            return builder.named(name).build()

        queries = [
            build("q1", "A", "B", "C"),
            build("q2", "A", "B", "D"),
            build("q3", "A", "B", "C", "D"),
            build("q4", "A", "!N", "B"),
            build("q5", "B", "C"),
        ]
        for _ in range(30):
            events = random_events(
                rng, ["A", "B", "C", "D", "N"], rng.randint(8, 30)
            )
            shared = PrefixSharedEngine(queries)
            singles = {query.name: ASeqEngine(query) for query in queries}
            replay(shared, events)
            for engine in singles.values():
                replay(engine, events)
            results = shared.result()
            for query in queries:
                expected = BruteForceOracle(query).aggregate(events)
                assert results[query.name] == expected
                assert singles[query.name].result() == expected

    def test_outputs_identical_to_unshared_at_every_trigger(self):
        rng = random.Random(77)
        queries = [q("q1", "A", "B", "C"), q("q2", "A", "B", "D")]
        events = random_events(rng, ["A", "B", "C", "D"], 60)
        shared = PrefixSharedEngine(queries)
        singles = {query.name: ASeqEngine(query) for query in queries}
        for event in events:
            fresh = shared.process(event)
            for name, engine in singles.items():
                single_fresh = engine.process(event)
                if single_fresh is not None:
                    assert fresh is not None and fresh[name] == single_fresh
