"""Admin endpoints for the explainability plane + growth alarms."""

import json
import urllib.error
import urllib.request

import pytest

from repro.engine.engine import StreamEngine
from repro.obs.funnel import STAGES, FunnelRecorder
from repro.obs.history import HistoryRecorder, default_history
from repro.obs.registry import MetricsRegistry
from repro.obs.server import AdminServer
from repro.events import Event
from repro.query import seq


def http_get(url):
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def ab_stream(n):
    return [Event("AB"[i % 2], i + 1) for i in range(n)]


@pytest.fixture
def served():
    """Instrumented engine (funnel on) behind a live admin server."""
    registry = MetricsRegistry()
    funnel = FunnelRecorder(registry)
    engine = StreamEngine(
        registry=registry, funnel=funnel, stream_name="test"
    )
    engine.register(seq("A", "B").count().within(ms=10).named("ab").build())
    engine.run(ab_stream(100))
    with AdminServer(engine, registry=registry) as admin:
        yield admin


class TestExplainEndpoint:
    def test_explain_returns_plan_with_text(self, served):
        status, body = http_get(served.url("/explain"))
        assert status == 200
        plan = json.loads(body)
        assert plan["kind"] == "stream"
        assert "ab" in plan["queries"]
        assert plan["text"].startswith("EXPLAIN (stream)")

    def test_per_query_explain(self, served):
        status, body = http_get(served.url("/queries/ab/explain"))
        assert status == 200
        payload = json.loads(body)
        assert payload["query"]["name"] == "ab"
        assert payload["query"]["features"]["window_ms"] == 10

    def test_unknown_query_404(self, served):
        status, body = http_get(served.url("/queries/nope/explain"))
        assert status == 404
        assert "error" in json.loads(body)

    def test_root_lists_new_endpoints(self, served):
        _, body = http_get(served.url("/"))
        endpoints = json.loads(body)["endpoints"]
        for endpoint in ("/explain", "/workload_profile"):
            assert endpoint in endpoints


class TestWorkloadProfileEndpoint:
    def test_profile_schema_and_live_funnel(self, served):
        status, body = http_get(served.url("/workload_profile"))
        assert status == 200
        profile = json.loads(body)
        assert profile["engine_kind"] == "stream"
        entry = profile["queries"]["ab"]
        assert set(entry["funnel"]) == set(STAGES)
        assert entry["funnel"]["events_routed"] == 100

    def test_drift_gauge_exported(self, served):
        http_get(served.url("/metrics"))  # scrape refreshes drift
        _, body = http_get(served.url("/metrics"))
        assert "repro_query_cost_drift_ratio" in body


class TestHealthzGrowthAlarms:
    def test_healthz_carries_growth_alarms_field(self, served):
        status, body = http_get(served.url("/healthz"))
        assert status == 200
        health = json.loads(body)
        assert health["growth_alarms"] == []


class TestGrowthAlarms:
    def fed_history(self, values, alias="query_live_objects"):
        registry = MetricsRegistry()
        gauge = registry.gauge(alias, "h", query="q")
        clock = iter(range(len(values))).__next__
        history = HistoryRecorder(
            registry, interval_s=1.0, clock=lambda: float(clock())
        )
        history.track(alias, mode="gauge")
        for value in values:
            gauge.set(value)
            history.sample()
        return history

    def test_sustained_growth_alarms(self):
        history = self.fed_history([100 * i for i in range(16)])
        (alarm,) = history.growth_alarms()
        assert alarm["series"] == "query_live_objects"
        assert alarm["labels"] == {"query": "q"}
        assert alarm["late"] > alarm["early"]
        assert alarm["slope_per_s"] > 0

    def test_plateau_does_not_alarm(self):
        history = self.fed_history([50.0] * 16)
        assert history.growth_alarms() == []

    def test_small_absolute_growth_ignored(self):
        # 10x relative growth but tiny absolute delta: not a leak.
        history = self.fed_history([1 + i * 0.5 for i in range(16)])
        assert history.growth_alarms() == []

    def test_too_few_points_ignored(self):
        history = self.fed_history([100 * i for i in range(4)])
        assert history.growth_alarms() == []

    def test_untracked_alias_ignored(self):
        history = self.fed_history(
            [100 * i for i in range(16)], alias="some_other_gauge"
        )
        assert history.growth_alarms() == []

    def test_refresher_runs_before_sample(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("query_live_objects", "h", query="q")
        history = HistoryRecorder(registry, clock=lambda: 1.0)
        history.track("query_live_objects", mode="gauge")
        history.set_refresher(lambda: gauge.set(42.0))
        history.sample(now=1.0)
        ring = history._rings[("query_live_objects", gauge.labels)]
        assert list(ring.values) == [42.0]

    def test_default_history_tracks_funnel_and_watermarks(self):
        registry = MetricsRegistry()
        history = default_history(registry)
        tracked = {spec.alias for spec in history._specs}
        assert "query_live_objects" in tracked
        assert "query_cc_snapshot_rows" in tracked
        assert "funnel_routed_rate" in tracked
        assert "funnel_match_rate" in tracked
