"""The benchmark harness itself: scales, tables, rendering, experiments."""

import pytest

from repro.bench.harness import (
    FULL,
    QUICK,
    ExperimentTable,
    Scale,
    scale_named,
    speedup,
    time_engines,
)
from repro.bench.report import render_markdown, render_table, render_tables
from repro.engine.metrics import RunStats


class TestScale:
    def test_named(self):
        assert scale_named("quick") is QUICK
        assert scale_named("full") is FULL
        with pytest.raises(ValueError):
            scale_named("enormous")

    def test_events_for_fraction(self):
        scale = Scale("x", events=10_000, multi_events=1)
        assert scale.events_for(0.5) == 5_000
        assert scale.events_for(0.000001) == 200  # floor


class TestExperimentTable:
    def test_add_row(self):
        table = ExperimentTable("id", "title", ["a", "b"])
        table.add_row(1, 2.5)
        assert table.rows == [[1, 2.5]]


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(
            "My Table", ["x", "value"], [[1, 1234.5], [22, 0.001]]
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "x" in lines[2] and "value" in lines[2]
        assert "1,234" in text  # thousands formatting
        assert "1.00e-03" in text  # scientific for tiny values

    def test_render_table_notes(self):
        text = render_table("T", ["a"], [[1]], notes="a note")
        assert text.endswith("a note")

    def test_render_table_empty_rows(self):
        text = render_table("T", ["a", "b"], [])
        assert "T" in text

    def test_render_markdown(self):
        text = render_markdown("T", ["a", "b"], [[1, 2]])
        assert "| a | b |" in text
        assert "| 1 | 2 |" in text

    def test_render_tables_dispatch(self):
        table = ExperimentTable("id", "Title", ["a"], [[1]])
        assert render_tables([table], markdown=True).startswith("### ")
        assert "=====" in render_tables([table], markdown=False)


class TestTiming:
    def test_time_engines_runs_each_factory(self):
        from repro.core.executor import ASeqEngine
        from repro.events import Event
        from repro.query import seq

        query = seq("A", "B").count().within(ms=10).build()
        events = [Event("A", 1), Event("B", 2)]
        stats = time_engines(
            [
                ("one", lambda: ASeqEngine(query)),
                ("two", lambda: ASeqEngine(query)),
            ],
            events,
        )
        assert set(stats) == {"one", "two"}
        assert stats["one"].final_result == 1

    def test_speedup(self):
        slow = RunStats("s", 1, 2.0, 0, 0)
        fast = RunStats("f", 1, 0.5, 0, 0)
        assert speedup(slow, fast) == 4.0
        zero = RunStats("z", 1, 0.0, 0, 0)
        assert speedup(slow, zero) == float("inf")


class TestExperimentsQuick:
    """Every figure module runs end to end at a tiny scale."""

    TINY = Scale("quick", events=600, multi_events=800)

    @pytest.mark.parametrize(
        "name",
        ["fig12", "fig13", "fig14", "fig15", "fig16", "throughput", "kleene"],
    )
    def test_experiment_runs(self, name):
        from repro.bench.experiments import ALL

        tables = ALL[name].run(self.TINY)
        assert tables
        for table in tables:
            assert table.rows, f"{table.experiment_id} produced no rows"
            width = len(table.columns)
            assert all(len(row) == width for row in table.rows)

    def test_cli_main_quick_single_figure(self, capsys):
        from repro.bench.__main__ import main

        assert main(["fig12", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Fig 12(a)" in out
        assert "completed" in out
