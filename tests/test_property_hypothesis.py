"""Hypothesis property tests on the core invariants.

These go beyond fixed-seed differentials: hypothesis searches the input
space (event orders, gaps, pattern shapes) for counterexamples and
shrinks any failure to a minimal stream.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from conftest import replay
from repro.baseline.oracle import BruteForceOracle
from repro.baseline.twostep import TwoStepEngine
from repro.core.dpc import DPCEngine
from repro.core.executor import ASeqEngine
from repro.core.sem import SemEngine
from repro.events import Event
from repro.query import seq

# ---- strategies ------------------------------------------------------------


def event_lists(
    alphabet: str = "ABCN", max_size: int = 28, with_attr: bool = False
):
    """Strictly-increasing-ts event lists over a small alphabet."""
    element = st.tuples(
        st.sampled_from(alphabet),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=9),
    )

    def build(specs):
        events = []
        ts = 0
        for event_type, gap, value in specs:
            ts += gap
            attrs = {"w": value, "id": value % 2} if with_attr else None
            events.append(Event(event_type, ts, attrs))
        return events

    return st.lists(element, min_size=0, max_size=max_size).map(build)


# ---- engine-vs-oracle properties ----------------------------------------------


@settings(max_examples=150, deadline=None)
@given(events=event_lists(), window=st.sampled_from([None, 5, 9, 17]))
def test_aseq_count_equals_oracle(events, window):
    builder = seq("A", "B", "C").count()
    if window:
        builder = builder.within(ms=window)
    query = builder.build()
    engine = ASeqEngine(query)
    replay(engine, events)
    assert engine.result() == BruteForceOracle(query).aggregate(events)


@settings(max_examples=150, deadline=None)
@given(events=event_lists(), window=st.sampled_from([None, 7, 13]))
def test_negation_equals_oracle(events, window):
    builder = seq("A", "!N", "B", "C").count()
    if window:
        builder = builder.within(ms=window)
    query = builder.build()
    engine = ASeqEngine(query)
    baseline = TwoStepEngine(query)
    replay(engine, events)
    replay(baseline, events)
    expected = BruteForceOracle(query).aggregate(events)
    assert engine.result() == expected
    assert baseline.result() == expected


@settings(max_examples=100, deadline=None)
@given(events=event_lists(with_attr=True))
def test_sum_equals_oracle(events):
    query = seq("A", "B").sum("B", "w").within(ms=11).build()
    engine = ASeqEngine(query)
    replay(engine, events)
    expected = BruteForceOracle(query).aggregate(events)
    assert abs(engine.result() - expected) < 1e-9


@settings(max_examples=100, deadline=None)
@given(events=event_lists(with_attr=True))
def test_vectorized_mirrors_reference_every_output(events):
    query = seq("A", "B", "C").count().within(ms=9).build()
    reference = ASeqEngine(query)
    vectorized = ASeqEngine(query, vectorized=True)
    for event in events:
        assert reference.process(event) == vectorized.process(event)


# ---- structural invariants -------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(events=event_lists(alphabet="ABC"))
def test_dpc_counts_monotone_without_negation(events):
    """Absent negation and windows, every prefix count is nondecreasing."""
    engine = DPCEngine(seq("A", "B", "C").build())
    previous = (0, 0, 0)
    for event in events:
        engine.process(event)
        current = engine.counter.snapshot_counts()
        assert all(c >= p for c, p in zip(current, previous))
        previous = current


@settings(max_examples=100, deadline=None)
@given(events=event_lists(alphabet="ABC"))
def test_sem_total_is_sum_of_per_start_counts(events):
    """Lemma 4: the result is exactly the sum over active counters."""
    query = seq("A", "B", "C").count().within(ms=9).build()
    engine = SemEngine(query)
    for event in events:
        engine.process(event)
        total = sum(c.full_count for c in engine.counters())
        assert engine.result() == total


@settings(max_examples=100, deadline=None)
@given(events=event_lists(alphabet="ABC"))
def test_sem_memory_bounded_by_window_starts(events):
    """Active counters never exceed the START instances in one window."""
    window = 9
    query = seq("A", "B", "C").count().within(ms=window).build()
    engine = SemEngine(query)
    for event in events:
        engine.process(event)
        starts_in_window = sum(
            1
            for e in events
            if e.event_type == "A"
            and e.ts <= event.ts
            and e.ts + window > event.ts
        )
        assert engine.active_counters <= starts_in_window + 1


@settings(max_examples=100, deadline=None)
@given(events=event_lists(alphabet="AB"))
def test_unwindowed_count_equals_binomial_structure(events):
    """For (A, B): count = sum over B arrivals of As seen before it."""
    query = seq("A", "B").count().build()
    engine = ASeqEngine(query)
    replay(engine, events)
    expected = 0
    a_seen = 0
    for event in events:
        if event.event_type == "A":
            a_seen += 1
        elif event.event_type == "B":
            expected += a_seen
    assert engine.result() == expected


@settings(max_examples=80, deadline=None)
@given(events=event_lists(with_attr=True))
def test_hpc_equals_per_key_filtered_streams(events):
    """Partitioned evaluation = running the flat engine per key slice.

    Each partition's count must equal a flat engine fed only that key's
    events (noting the clock still advances globally).
    """
    query = (
        seq("A", "B").group_by("id").count().within(ms=9).build()
    )
    engine = ASeqEngine(query)
    replay(engine, events)
    now = max((e.ts for e in events), default=0)
    grouped = engine.result()
    flat_query = seq("A", "B").count().within(ms=9).build()
    for key in {e.attrs["id"] for e in events if e.attrs}:
        flat = ASeqEngine(flat_query)
        for event in events:
            if event.attrs.get("id") == key:
                flat.process(event)
        flat.runtime.advance_time(now)
        assert grouped.get(key, 0) == flat.result()


@settings(max_examples=80, deadline=None)
@given(
    events=event_lists(alphabet="ABC"),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_reordered_stream_gives_same_result(events, seed):
    """Engine(reorder(jitter(stream))) == Engine(stream)."""
    import random

    from repro.events.reorder import reordered

    slack = 6
    rng = random.Random(seed)
    keyed = [(e.ts + rng.uniform(0, slack * 0.99), e) for e in events]
    keyed.sort(key=lambda pair: pair[0])
    noisy = [e for _, e in keyed]

    query = seq("A", "B", "C").count().within(ms=9).build()
    straight = ASeqEngine(query)
    replay(straight, events)
    via_buffer = ASeqEngine(query)
    for event in reordered(noisy, slack_ms=slack):
        via_buffer.process(event)
    assert via_buffer.result() == straight.result()


@settings(max_examples=60, deadline=None)
@given(
    events=event_lists(alphabet="ABCD"),
    split=st.integers(min_value=1, max_value=3),
)
def test_chop_result_independent_of_cut_point(events, split):
    """Chop-Connect invariant: any cut gives the unchopped answer."""
    from repro.multi.chop import chop
    from repro.multi.chop_connect import ChopConnectEngine

    query = seq("A", "B", "C", "D").count().within(ms=9).named("q").build()
    chopped = ChopConnectEngine([chop(query, split)])
    plain = ASeqEngine(query)
    replay(chopped, events)
    replay(plain, events)
    assert chopped.result("q") == plain.result()
