"""Differential tests: every engine vs. the brute-force oracle.

The paper's claim is that A-Seq computes exactly what the two-step
approach computes, four orders of magnitude faster. These tests pin the
"exactly" part across randomized streams for each feature combination:
windows, negation, predicates, GROUP BY, every aggregate kind, repeated
types — over the reference SEM, vectorized SEM and the stack-based
baseline simultaneously.
"""

import random

import pytest

from conftest import assert_matches_oracle, random_events
from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.query import seq

TRIALS = 40


def engines_for(query):
    return [
        ASeqEngine(query),
        ASeqEngine(query, vectorized=True),
        TwoStepEngine(query),
    ]


@pytest.mark.parametrize("window_ms", [None, 6, 12, 25])
@pytest.mark.parametrize("length", [1, 2, 3, 4])
def test_count_queries(window_ms, length):
    rng = random.Random(length * 1000 + (window_ms or 0))
    alphabet = ["A", "B", "C", "D", "Z"]
    builder = seq(*alphabet[:length]).count()
    if window_ms:
        builder = builder.within(ms=window_ms)
    query = builder.build()
    for _ in range(TRIALS):
        events = random_events(rng, alphabet, rng.randint(5, 30))
        assert_matches_oracle(query, engines_for(query), events)


@pytest.mark.parametrize("window_ms", [None, 10, 20])
@pytest.mark.parametrize(
    "pattern", [("A", "!N", "B"), ("A", "!N", "B", "C"), ("A", "B", "!N", "C")]
)
def test_negation_queries(window_ms, pattern):
    rng = random.Random(hash((window_ms, pattern)) & 0xFFFF)
    builder = seq(*pattern).count()
    if window_ms:
        builder = builder.within(ms=window_ms)
    query = builder.build()
    for _ in range(TRIALS):
        events = random_events(rng, ["A", "B", "C", "N"], rng.randint(5, 30))
        assert_matches_oracle(query, engines_for(query), events)


@pytest.mark.parametrize("kind", ["sum", "avg", "max", "min"])
@pytest.mark.parametrize("window_ms", [None, 12])
def test_value_aggregates(kind, window_ms):
    rng = random.Random(hash((kind, window_ms)) & 0xFFFF)
    builder = getattr(seq("A", "B", "C"), kind)("B", "w")
    if window_ms:
        builder = builder.within(ms=window_ms)
    query = builder.build()

    def attrs(r, event_type):
        return {"w": r.randint(1, 15)}

    for _ in range(TRIALS):
        events = random_events(
            rng, ["A", "B", "C"], rng.randint(5, 25), attr_maker=attrs
        )
        assert_matches_oracle(query, engines_for(query), events)


@pytest.mark.parametrize("kind", ["sum", "max"])
def test_value_aggregate_on_start_type(kind):
    rng = random.Random(hash(kind) & 0xFFFF)
    query = (
        getattr(seq("A", "B"), kind)("A", "w").within(ms=10).build()
    )

    def attrs(r, event_type):
        return {"w": r.randint(1, 15)}

    for _ in range(TRIALS):
        events = random_events(
            rng, ["A", "B"], rng.randint(5, 25), attr_maker=attrs
        )
        assert_matches_oracle(query, engines_for(query), events)


@pytest.mark.parametrize("window_ms", [None, 15])
def test_equivalence_predicate(window_ms):
    rng = random.Random(window_ms or 1)
    builder = seq("A", "B", "C").where_equal("id").count()
    if window_ms:
        builder = builder.within(ms=window_ms)
    query = builder.build()

    def attrs(r, event_type):
        return {"id": r.randint(1, 3)}

    for _ in range(TRIALS):
        events = random_events(
            rng, ["A", "B", "C"], rng.randint(5, 25), attr_maker=attrs
        )
        assert_matches_oracle(query, engines_for(query), events)


@pytest.mark.parametrize("window_ms", [None, 15])
def test_group_by_with_negation(window_ms):
    rng = random.Random((window_ms or 2) * 7)
    builder = seq("A", "!N", "B").group_by("ip").count()
    if window_ms:
        builder = builder.within(ms=window_ms)
    query = builder.build()

    def attrs(r, event_type):
        return {"ip": r.choice(["x", "y", "z"])}

    for _ in range(TRIALS):
        events = random_events(
            rng, ["A", "B", "N"], rng.randint(5, 25), attr_maker=attrs
        )
        assert_matches_oracle(query, engines_for(query), events)


def test_local_predicates_with_window():
    rng = random.Random(99)
    query = (
        seq("A", "B")
        .where_local("A", "x", ">", 5)
        .where_local("B", "x", "<=", 8)
        .count()
        .within(ms=10)
        .build()
    )

    def attrs(r, event_type):
        return {"x": r.randint(1, 10)}

    for _ in range(TRIALS):
        events = random_events(
            rng, ["A", "B"], rng.randint(5, 25), attr_maker=attrs
        )
        assert_matches_oracle(query, engines_for(query), events)


@pytest.mark.parametrize(
    "pattern", [("A", "A"), ("A", "B", "A"), ("A", "A", "B")]
)
def test_repeated_types(pattern):
    rng = random.Random(hash(pattern) & 0xFFFF)
    query = seq(*pattern).count().within(ms=12).build()
    for _ in range(TRIALS):
        events = random_events(rng, ["A", "B"], rng.randint(5, 25))
        assert_matches_oracle(query, engines_for(query), events)


def test_kitchen_sink():
    """Negation + equivalence-as-group-by + window + value aggregate."""
    rng = random.Random(1234)
    query = (
        seq("A", "!N", "B", "C")
        .group_by("ip")
        .sum("C", "w")
        .within(ms=20)
        .build()
    )

    def attrs(r, event_type):
        return {"ip": r.choice(["x", "y"]), "w": r.randint(1, 9)}

    for _ in range(TRIALS):
        events = random_events(
            rng, ["A", "B", "C", "N"], rng.randint(8, 30), attr_maker=attrs
        )
        assert_matches_oracle(query, engines_for(query), events)
