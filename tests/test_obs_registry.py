"""The observability registry: Counter / Gauge / Histogram semantics."""

import pytest

from repro.obs.registry import (
    LOG2_BOUNDS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_default_registry,
    resolve_registry,
    set_default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_registry_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        a = registry.counter("events_total")
        b = registry.counter("events_total")
        assert a is b
        a.inc()
        assert registry.value("events_total") == 1

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        q1 = registry.counter("query_events_total", query="q1")
        q2 = registry.counter("query_events_total", query="q2")
        assert q1 is not q2
        q1.inc(3)
        assert registry.value("query_events_total", query="q1") == 3
        assert registry.value("query_events_total", query="q2") == 0

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_set_max_keeps_high_water_mark(self):
        gauge = Gauge("g")
        gauge.set_max(7)
        gauge.set_max(3)
        assert gauge.value == 7


class TestHistogram:
    def test_default_bounds_are_log2_spaced(self):
        assert LOG2_BOUNDS[0] == 1
        assert LOG2_BOUNDS[-1] == 2 ** 20
        ratios = {
            int(b / a) for a, b in zip(LOG2_BOUNDS, LOG2_BOUNDS[1:])
        }
        assert ratios == {2}

    def test_count_sum_max(self):
        histogram = Histogram("h")
        for value in (1.0, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 104.0
        assert histogram.max == 100.0
        assert histogram.mean == pytest.approx(104.0 / 3)

    def test_quantiles_land_in_right_buckets(self):
        histogram = Histogram("h")
        # 90 fast observations, 10 slow ones.
        for _ in range(90):
            histogram.observe(3.0)  # bucket le=4
        for _ in range(10):
            histogram.observe(300.0)  # bucket le=512
        assert histogram.p50 == 4.0
        assert histogram.quantile(0.90) == 4.0
        # the slow bucket's upper bound is 512, capped by the true max
        assert histogram.p95 == 300.0
        assert histogram.p99 == 300.0

    def test_overflow_bucket_reports_exact_max(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        histogram.observe(1000.0)
        assert histogram.p99 == 1000.0
        assert histogram.quantile(1.0) == 1000.0

    def test_quantile_capped_by_observed_max(self):
        histogram = Histogram("h")
        histogram.observe(5.0)  # bucket le=8, but max is 5
        assert histogram.p50 == 5.0

    def test_empty_histogram_reads_zero(self):
        histogram = Histogram("h")
        assert histogram.p50 == 0.0
        assert histogram.p99 == 0.0
        assert histogram.max == 0.0

    def test_cumulative_buckets_end_with_inf_total(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        rows = histogram.cumulative_buckets()
        assert rows == [(1.0, 1), (10.0, 2), (float("inf"), 3)]

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)


class TestRegistryReads:
    def test_flat_expands_histograms_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(2)
        registry.gauge("b").set(7)
        registry.counter("c_total", query="q1").inc()
        histogram = registry.histogram("lat_us")
        histogram.observe(3.0)
        flat = registry.flat()
        assert flat["a_total"] == 2
        assert flat["b"] == 7
        assert flat["c_total{query=q1}"] == 1
        assert flat["lat_us_count"] == 1
        assert flat["lat_us_p50"] == 3.0
        assert flat["lat_us_max"] == 3.0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert len(registry) == 0
        assert registry.value("a") == 0.0


class TestNullRegistry:
    def test_disabled_and_shared_noop_metrics(self):
        assert NULL_REGISTRY.enabled is False
        counter = NULL_REGISTRY.counter("anything")
        counter.inc(100)
        assert counter.value == 0
        gauge = NULL_REGISTRY.gauge("g")
        gauge.set(5)
        gauge.set_max(5)
        assert gauge.value == 0
        histogram = NULL_REGISTRY.histogram("h")
        histogram.observe(1.0)
        assert histogram.count == 0

    def test_null_registry_is_reusable_singleton_class(self):
        assert isinstance(NULL_REGISTRY, NullRegistry)
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")


class TestDefaultRegistry:
    def test_default_is_null_until_installed(self):
        assert get_default_registry() is NULL_REGISTRY

    def test_install_and_restore(self):
        registry = MetricsRegistry()
        previous = set_default_registry(registry)
        try:
            assert get_default_registry() is registry
            assert resolve_registry(None) is registry
            explicit = MetricsRegistry()
            assert resolve_registry(explicit) is explicit
        finally:
            set_default_registry(previous)
        assert get_default_registry() is previous

    def test_clearing_with_none_restores_null(self):
        previous = set_default_registry(MetricsRegistry())
        set_default_registry(None)
        try:
            assert get_default_registry() is NULL_REGISTRY
        finally:
            set_default_registry(previous)


class TestSnapshotWire:
    def test_metric_state_round_trips_counter_and_gauge(self):
        from repro.obs.registry import metric_state

        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hits", query="q")
        counter.inc(3)
        state = metric_state(counter)
        assert state["name"] == "hits_total"
        assert state["kind"] == "counter"
        assert state["labels"] == [("query", "q")]
        assert state["value"] == 3.0

    def test_metric_state_ships_histogram_buckets(self):
        from repro.obs.registry import metric_state

        registry = MetricsRegistry()
        histogram = registry.histogram("lat", "")
        histogram.observe(5)
        histogram.observe(500)
        state = metric_state(histogram)
        assert state["kind"] == "histogram"
        assert sum(state["buckets"]) == 2
        assert state["count"] == 2
        assert state["sum"] == 505.0
        assert state["max"] == 500.0

    def test_registry_state_is_picklable(self):
        import pickle

        from repro.obs.registry import registry_state

        registry = MetricsRegistry()
        registry.counter("a_total", "").inc()
        registry.gauge("b", "").set(2)
        registry.histogram("c", "").observe(1)
        state = registry_state(registry)
        assert pickle.loads(pickle.dumps(state)) == state
        assert {entry["name"] for entry in state} == {"a_total", "b", "c"}


class TestSnapshotMerger:
    def _snapshot(self, **counters):
        from repro.obs.registry import registry_state

        remote = MetricsRegistry()
        for name, value in counters.items():
            remote.counter(name, "").inc(value)
        return registry_state(remote)

    def test_merges_under_shard_label(self):
        from repro.obs.registry import SnapshotMerger

        local = MetricsRegistry()
        merger = SnapshotMerger(local)
        merger.ingest("0", self._snapshot(hits_total=5))
        merger.ingest("1", self._snapshot(hits_total=7))
        assert local.value("hits_total", shard="0") == 5.0
        assert local.value("hits_total", shard="1") == 7.0
        assert merger.sources() == ["0", "1"]

    def test_reingest_is_idempotent(self):
        from repro.obs.registry import SnapshotMerger

        local = MetricsRegistry()
        merger = SnapshotMerger(local)
        snapshot = self._snapshot(hits_total=5)
        merger.ingest("0", snapshot)
        merger.ingest("0", snapshot)
        merger.ingest("0", snapshot)
        assert local.value("hits_total", shard="0") == 5.0

    def test_generation_bump_keeps_counters_monotonic(self):
        from repro.obs.registry import SnapshotMerger

        local = MetricsRegistry()
        merger = SnapshotMerger(local)
        merger.ingest("0", self._snapshot(hits_total=100), generation=0)
        # The worker was SIGKILLed and restarted: raw values reset.
        merger.ingest("0", self._snapshot(hits_total=3), generation=1)
        assert local.value("hits_total", shard="0") == 103.0
        merger.ingest("0", self._snapshot(hits_total=9), generation=1)
        assert local.value("hits_total", shard="0") == 109.0

    def test_gauges_track_latest_not_sum(self):
        from repro.obs.registry import SnapshotMerger, registry_state

        remote = MetricsRegistry()
        remote.gauge("depth", "").set(4.0)
        local = MetricsRegistry()
        merger = SnapshotMerger(local)
        merger.ingest("0", registry_state(remote), generation=0)
        merger.ingest("0", registry_state(remote), generation=1)
        assert local.value("depth", shard="0") == 4.0

    def test_histograms_merge_across_generations(self):
        from repro.obs.registry import SnapshotMerger, registry_state

        def remote_state(*values):
            remote = MetricsRegistry()
            histogram = remote.histogram("lat", "")
            for value in values:
                histogram.observe(value)
            return registry_state(remote)

        local = MetricsRegistry()
        merger = SnapshotMerger(local)
        merger.ingest("0", remote_state(1, 10), generation=0)
        merger.ingest("0", remote_state(100), generation=1)
        merged = local.get("lat", shard="0")
        assert merged.count == 3
        assert merged.sum == 111.0
        assert merged.max == 100.0

    def test_malformed_entry_is_skipped(self):
        from repro.obs.registry import SnapshotMerger

        local = MetricsRegistry()
        merger = SnapshotMerger(local)
        merger.ingest(
            "0",
            [{"kind": "counter"}, *self._snapshot(ok_total=1)],
        )
        assert local.value("ok_total", shard="0") == 1.0

    def test_custom_label_name(self):
        from repro.obs.registry import SnapshotMerger

        local = MetricsRegistry()
        merger = SnapshotMerger(local, label="node")
        merger.ingest("a", self._snapshot(hits_total=2))
        assert local.value("hits_total", node="a") == 2.0
