"""Every example script runs cleanly end to end.

These are the repo's living documentation; each is executed as a real
subprocess (no mocking) and checked for its expected headline output.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": "Same answer",
    "network_security.py": "Missed attackers : none",
    "ecommerce_funnel.py": "Recommendation-assisted share",
    "fraud_detection.py": "Blocked cards: ['card-007']",
    "multi_query_sharing.py": "All three agree",
    "resilient_pipeline.py": "Identical",
}


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout}\n{result.stderr}"
    )
    return result.stdout


@pytest.mark.parametrize("name", sorted(EXPECTED_SNIPPETS))
def test_example_runs(name):
    stdout = run_example(name)
    assert EXPECTED_SNIPPETS[name] in stdout, stdout


def test_every_example_has_a_smoke_test():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_SNIPPETS)
