"""The greedy multi-query planner."""

import pytest

from repro.errors import PlanError
from repro.multi.planner import (
    SharedSubstring,
    chop_around,
    find_common_substrings,
    plan_workload,
)
from repro.query import seq


def q(name, *pattern, win=100):
    return seq(*pattern).count().within(ms=win).named(name).build()


class TestFindCommonSubstrings:
    def test_finds_shared_pair(self):
        found = find_common_substrings([q("q1", "A", "B", "C"), q("q2", "X", "A", "B")])
        assert ("A", "B") in [c.types for c in found]

    def test_counts_each_query_once(self):
        # (A, B) occurs twice inside q1 but q1 is listed once.
        found = find_common_substrings(
            [q("q1", "A", "B", "A", "B"), q("q2", "A", "B")]
        )
        best = next(c for c in found if c.types == ("A", "B"))
        assert best.query_names == ("q1", "q2")

    def test_benefit_ordering(self):
        found = find_common_substrings(
            [
                q("q1", "A", "B", "C", "D"),
                q("q2", "A", "B", "C", "E"),
                q("q3", "A", "B", "X"),
            ]
        )
        # (A,B,C) shared by 2 queries: benefit 3; (A,B) by 3: benefit 4.
        assert found[0].types == ("A", "B")

    def test_min_length_respected(self):
        found = find_common_substrings(
            [q("q1", "A", "B"), q("q2", "A", "C")], min_length=2
        )
        assert all(len(c.types) >= 2 for c in found)

    def test_unnamed_rejected(self):
        query = seq("A", "B").count().within(ms=5).build()
        with pytest.raises(PlanError):
            find_common_substrings([query])

    def test_benefit_formula(self):
        candidate = SharedSubstring(("A", "B", "C"), ("q1", "q2", "q3"))
        assert candidate.benefit == 6


class TestChopAround:
    def test_middle_occurrence(self):
        plan = chop_around(q("q", "A", "B", "C", "D"), ("B", "C"))
        assert plan.cut_points == (1, 3)

    def test_head_occurrence(self):
        plan = chop_around(q("q", "B", "C", "D"), ("B", "C"))
        assert plan.cut_points == (2,)

    def test_tail_occurrence(self):
        plan = chop_around(q("q", "A", "B", "C"), ("B", "C"))
        assert plan.cut_points == (1,)

    def test_whole_pattern(self):
        plan = chop_around(q("q", "B", "C"), ("B", "C"))
        assert plan.cut_points == ()

    def test_absent_substring_single_segment(self):
        plan = chop_around(q("q", "A", "B"), ("X", "Y"))
        assert plan.cut_points == ()


class TestPlanWorkload:
    def test_paper_example_6_workload(self):
        """Q1~Q5 of the paper: (VKindle, BKindle) is the shared pick."""
        queries = [
            q("Q1", "VKindle", "BKindle", "VCase", "BCase"),
            q("Q2", "VKindle", "BKindle", "VKindleFire"),
            q("Q3", "VKindle", "BKindle", "VCase", "BCase", "VeBook", "BeBook"),
            q("Q4", "VKindle", "BKindle", "VCase", "BCase", "VLight", "BLight"),
            q("Q5", "ViPad", "VKindleFire", "VKindle", "BKindle"),
        ]
        plans, best = plan_workload(queries)
        assert best.types[:2] == ("VKindle", "BKindle") or (
            "VKindle",
            "BKindle",
        ) in [best.types]
        assert len(plans) == 5
        q5_plan = next(p for p in plans if p.query.name == "Q5")
        assert q5_plan.cut_points  # Q5 shares at the tail -> chopped

    def test_no_sharing_available(self):
        plans, best = plan_workload([q("q1", "A", "B"), q("q2", "X", "Y")])
        assert best is None
        assert all(p.cut_points == () for p in plans)

    def test_plans_executable(self):
        from conftest import random_events, replay
        from repro.baseline.oracle import BruteForceOracle
        from repro.multi.chop_connect import ChopConnectEngine
        import random

        queries = [
            q("q1", "A", "B", "C", "D", win=12),
            q("q2", "X", "B", "C", win=12),
        ]
        plans, best = plan_workload(queries)
        rng = random.Random(9)
        events = random_events(rng, ["A", "B", "C", "D", "X"], 40)
        engine = ChopConnectEngine(plans)
        replay(engine, events)
        for query in queries:
            assert engine.result(query.name) == BruteForceOracle(
                query
            ).aggregate(events)
