"""Checkpoint/restore: resume counting mid-stream with identical results."""

import json
import random

import pytest

from conftest import random_events
from repro.core.checkpoint import checkpoint, restore
from repro.core.executor import ASeqEngine
from repro.errors import CheckpointError
from repro.events import Event
from repro.query import seq


def split_replay(query, events, split, vectorized=False):
    """Replay with a checkpoint/restore at ``split``; returns both engines."""
    straight = ASeqEngine(query, vectorized=vectorized)
    first = ASeqEngine(query, vectorized=vectorized)
    for event in events[:split]:
        straight.process(event)
        first.process(event)
    state = json.loads(json.dumps(checkpoint(first)))  # force JSON round trip
    resumed = restore(query, state, vectorized=vectorized)
    for event in events[split:]:
        straight.process(event)
        resumed.process(event)
    return straight, resumed


QUERIES = {
    "dpc": lambda: seq("A", "B", "C").count().build(),
    "sem": lambda: seq("A", "B", "C").count().within(ms=12).build(),
    "sem-negation": lambda: seq("A", "!N", "B").count().within(ms=12).build(),
    "sem-sum": lambda: seq("A", "B").sum("B", "w").within(ms=12).build(),
    "sem-max": lambda: seq("A", "B").max("B", "w").within(ms=12).build(),
    "hpc": lambda: (
        seq("A", "B").where_equal("id").count().within(ms=12).build()
    ),
    "groupby": lambda: seq("A", "B").group_by("id").count().within(ms=12).build(),
}


def attrs(r, event_type):
    return {"id": r.randint(1, 3), "w": r.randint(1, 9)}


@pytest.mark.parametrize("kind", list(QUERIES))
@pytest.mark.parametrize("vectorized", [False, True])
def test_resume_equals_straight_run(kind, vectorized):
    rng = random.Random(hash((kind, vectorized)) & 0xFFFF)
    query = QUERIES[kind]()
    for _ in range(15):
        events = random_events(
            rng, ["A", "B", "C", "N"], 40, attr_maker=attrs
        )
        split = rng.randint(1, len(events) - 1)
        straight, resumed = split_replay(
            query, events, split, vectorized=vectorized
        )
        assert straight.result() == resumed.result()


def test_checkpoint_is_json_serializable():
    query = seq("A", "B").sum("B", "w").within(ms=10).build()
    engine = ASeqEngine(query)
    engine.process(Event("A", 1))
    engine.process(Event("B", 2, {"w": 3}))
    state = checkpoint(engine)
    text = json.dumps(state)
    assert "sem" in text


def test_restore_rejects_other_query():
    query = seq("A", "B").count().within(ms=10).build()
    other = seq("A", "C").count().within(ms=10).build()
    state = checkpoint(ASeqEngine(query))
    with pytest.raises(CheckpointError):
        restore(other, state)


def test_restore_rejects_bad_version():
    query = seq("A", "B").count().build()
    state = checkpoint(ASeqEngine(query))
    state["version"] = 99
    with pytest.raises(CheckpointError):
        restore(query, state)


def test_restore_rejects_runtime_mismatch():
    query = seq("A", "B").count().within(ms=10).build()
    state = checkpoint(ASeqEngine(query))
    with pytest.raises(CheckpointError):
        restore(query, state, vectorized=True)


def test_expired_counters_do_not_resurrect():
    query = seq("A", "B").count().within(ms=5).build()
    engine = ASeqEngine(query)
    engine.process(Event("A", 1))
    state = checkpoint(engine)
    resumed = restore(query, state)
    resumed.process(Event("B", 10))  # the A expired at 6
    assert resumed.result() == 0


def test_vectorized_checkpoint_beyond_initial_capacity():
    query = seq("A", "B").count().within(ms=10_000).build()
    engine = ASeqEngine(query, vectorized=True)
    for ts in range(1, 600):
        engine.process(Event("A", ts))
    state = json.loads(json.dumps(checkpoint(engine)))
    resumed = restore(query, state, vectorized=True)
    resumed.process(Event("B", 600))
    assert resumed.result() == engine.process(Event("B", 600))
