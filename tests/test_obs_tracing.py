"""Event-lifecycle tracing: the ring buffer and engine span hooks."""

from conftest import events_of

from repro.core.executor import ASeqEngine
from repro.obs.tracing import (
    NULL_TRACER,
    Stage,
    TraceRecorder,
)
from repro.query import parse_query


class TestTraceRecorder:
    def test_records_in_order(self):
        recorder = TraceRecorder()
        recorder.record(Stage.INGEST, ts=1, event_type="A")
        recorder.record(Stage.EMIT, ts=2, event_type="C", detail="7")
        spans = recorder.spans()
        assert [span.stage for span in spans] == [Stage.INGEST, Stage.EMIT]
        assert spans[0].seq < spans[1].seq
        assert spans[1].detail == "7"

    def test_ring_buffer_drops_oldest(self):
        recorder = TraceRecorder(capacity=3)
        for index in range(10):
            recorder.record(Stage.INGEST, ts=index)
        assert len(recorder) == 3
        assert recorder.recorded_total == 10
        assert [span.ts for span in recorder.spans()] == [7, 8, 9]

    def test_stage_filter(self):
        recorder = TraceRecorder()
        recorder.record(Stage.INGEST, ts=1)
        recorder.record(Stage.EXPIRE, ts=2)
        recorder.record(Stage.INGEST, ts=3)
        assert [s.ts for s in recorder.spans(Stage.INGEST)] == [1, 3]

    def test_format_mentions_drops(self):
        recorder = TraceRecorder(capacity=2)
        for index in range(5):
            recorder.record(Stage.INGEST, ts=index, event_type="A")
        dump = recorder.format()
        assert "ingest" in dump
        assert "last 2 of 5" in dump

    def test_format_last_n(self):
        recorder = TraceRecorder()
        for index in range(5):
            recorder.record(Stage.INGEST, ts=index)
        dump = recorder.format(last=2)
        assert "t=3" not in dump  # header + last 2 spans only
        assert dump.count("#") == 2

    def test_null_tracer_is_disabled_noop(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.record(Stage.INGEST, ts=1)
        assert len(NULL_TRACER) == 0


class TestEngineSpans:
    def test_negation_query_records_recount_resets(self):
        query = parse_query(
            "PATTERN SEQ(A, !N, C) AGG COUNT WITHIN 100 ms"
        )
        recorder = TraceRecorder()
        engine = ASeqEngine(query, trace=recorder)
        events = events_of(
            ("A", 1), ("N", 2), ("A", 3), ("C", 4), ("X", 5)
        )
        for event in events:
            engine.process(event)
        stages = [span.stage for span in recorder.spans()]
        assert Stage.INGEST in stages
        assert Stage.RECOUNT_RESET in stages
        assert Stage.COUNTER_CREATE in stages
        assert Stage.FILTER_DROP in stages  # the X arrival
        assert Stage.EMIT in stages  # the C trigger
        (reset,) = recorder.spans(Stage.RECOUNT_RESET)
        assert reset.event_type == "N"
        assert "1 counters" in reset.detail

    def test_expiration_spans_recorded(self):
        query = parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 10 ms")
        recorder = TraceRecorder()
        engine = ASeqEngine(query, trace=recorder)
        for event in events_of(("A", 1), ("B", 2), ("B", 50)):
            engine.process(event)
        expire_spans = recorder.spans(Stage.EXPIRE)
        assert expire_spans
        assert "1 counters expired" in expire_spans[0].detail

    def test_untraced_engine_records_nothing(self):
        query = parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 10 ms")
        engine = ASeqEngine(query)
        for event in events_of(("A", 1), ("B", 2)):
            engine.process(event)
        assert len(NULL_TRACER) == 0
