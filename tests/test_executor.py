"""The ASeqEngine facade: compilation, filtering, clock handling."""

from conftest import events_of, replay
from repro.core.dpc import DPCEngine
from repro.core.executor import ASeqEngine
from repro.core.hpc import HPCEngine
from repro.core.sem import SemEngine
from repro.core.vectorized import VectorizedSemEngine
from repro.query import parse_query, seq


class TestCompilation:
    def test_unwindowed_compiles_to_dpc(self):
        engine = ASeqEngine(seq("A", "B").build())
        assert isinstance(engine.runtime, DPCEngine)

    def test_windowed_compiles_to_sem(self):
        engine = ASeqEngine(seq("A", "B").within(ms=5).build())
        assert isinstance(engine.runtime, SemEngine)

    def test_vectorized_flag_swaps_runtime(self):
        engine = ASeqEngine(
            seq("A", "B").within(ms=5).build(), vectorized=True
        )
        assert isinstance(engine.runtime, VectorizedSemEngine)

    def test_vectorized_flag_ignored_without_window(self):
        engine = ASeqEngine(seq("A", "B").build(), vectorized=True)
        assert isinstance(engine.runtime, DPCEngine)

    def test_partitioned_compiles_to_hpc(self):
        engine = ASeqEngine(seq("A", "B").where_equal("id").build())
        assert isinstance(engine.runtime, HPCEngine)

    def test_hpc_inner_engines_follow_vectorized_flag(self):
        query = seq("A", "B").where_equal("id").within(ms=5).build()
        engine = ASeqEngine(query, vectorized=True)
        engine.process(events_of(("A", 1, {"id": 1}))[0])
        inner = next(iter(engine.runtime.partitions()))[1]
        assert isinstance(inner, VectorizedSemEngine)


class TestFiltering:
    def test_local_predicates_filter_at_ingestion(self):
        query = (
            seq("A", "B").where_local("A", "x", ">", 5).build()
        )
        engine = ASeqEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"x": 1}),  # filtered out
                ("A", 2, {"x": 9}),
                ("B", 3),
            ),
        )
        assert engine.result() == 1
        assert engine.events_processed == 2  # the filtered A never counted

    def test_irrelevant_types_dropped_before_runtime(self):
        engine = ASeqEngine(seq("A", "B").build())
        replay(engine, events_of(("Z", 1), ("A", 2), ("B", 3)))
        assert engine.events_seen == 3
        assert engine.events_processed == 2

    def test_dropped_events_still_advance_clock(self):
        engine = ASeqEngine(seq("A", "B").within(ms=5).build())
        replay(engine, events_of(("A", 1), ("Z", 50)))
        assert engine.result() == 0  # the A expired even though Z is noise

    def test_filtered_negative_events_do_not_invalidate(self):
        query = (
            seq("A", "!N", "B")
            .where_local("N", "armed", "=", True)
            .build()
        )
        engine = ASeqEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1),
                ("N", 2, {"armed": False}),  # disarmed: filtered out
                ("B", 3),
            ),
        )
        assert engine.result() == 1


class TestFacade:
    def test_parsed_query_end_to_end(self):
        query = parse_query(
            "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 100 ms"
        )
        engine = ASeqEngine(query)
        outputs = replay(
            engine,
            events_of(("DELL", 1), ("IPIX", 2), ("AMAT", 3)),
        )
        assert outputs == [1]

    def test_peak_objects_tracked(self):
        engine = ASeqEngine(seq("A", "B").within(ms=100).build())
        replay(engine, events_of(*[("A", t) for t in range(1, 6)]))
        assert engine.peak_objects == 5

    def test_group_by_result_shape(self):
        engine = ASeqEngine(seq("A", "B").group_by("ip").build())
        replay(
            engine,
            events_of(
                ("A", 1, {"ip": "x"}), ("B", 2, {"ip": "x"})
            ),
        )
        assert engine.result() == {"x": 1}
