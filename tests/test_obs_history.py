"""Time-series history rings (``repro.obs.history``)."""

from __future__ import annotations

import pytest

from repro.obs.export import render_sparklines
from repro.obs.history import HistoryRecorder, default_history
from repro.obs.registry import MetricsRegistry


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestTrack:
    def test_track_is_chainable(self, registry):
        history = HistoryRecorder(registry)
        assert history.track("a").track("b", mode="rate") is history

    def test_rejects_unknown_mode(self, registry):
        with pytest.raises(ValueError):
            HistoryRecorder(registry).track("a", mode="delta")

    def test_rejects_bad_quantile(self, registry):
        with pytest.raises(ValueError):
            HistoryRecorder(registry).track(
                "a", mode="quantile", quantile=1.5
            )

    def test_auto_aliases(self, registry):
        counter = registry.counter("hits_total", "")
        histogram = registry.histogram("lat_us", "")
        counter.inc(5)
        histogram.observe(10)
        history = HistoryRecorder(registry)
        history.track("hits_total", mode="rate")
        history.track("lat_us", mode="quantile", quantile=0.99)
        history.sample(now=0.0)
        counter.inc(5)
        history.sample(now=1.0)
        names = {s["name"] for s in history.snapshot()["series"]}
        assert "hits_total_rate" in names
        assert "lat_us_p99" in names

    def test_constructor_validation(self, registry):
        with pytest.raises(ValueError):
            HistoryRecorder(registry, interval_s=0)
        with pytest.raises(ValueError):
            HistoryRecorder(registry, capacity=1)


class TestSampling:
    def test_gauge_mode_samples_current_value(self, registry):
        gauge = registry.gauge("depth", "")
        history = HistoryRecorder(registry).track("depth")
        gauge.set(3.0)
        history.sample(now=10.0)
        gauge.set(7.0)
        history.sample(now=11.0)
        (series,) = history.snapshot()["series"]
        assert series["points"] == [[10.0, 3.0], [11.0, 7.0]]

    def test_rate_mode_first_sample_primes(self, registry):
        counter = registry.counter("in_total", "")
        history = HistoryRecorder(registry).track("in_total", mode="rate")
        counter.inc(100)
        history.sample(now=0.0)  # primes only: no point yet
        assert history.snapshot()["series"] == []
        counter.inc(50)
        history.sample(now=2.0)
        (series,) = history.snapshot()["series"]
        assert series["points"] == [[2.0, 25.0]]  # 50 over 2 seconds

    def test_rate_mode_clamps_resets_to_zero(self, registry):
        counter = registry.counter("in_total", "")
        history = HistoryRecorder(registry).track("in_total", mode="rate")
        counter.inc(100)
        history.sample(now=0.0)
        counter.value = 10.0  # a worker restarted: raw value dropped
        history.sample(now=1.0)
        (series,) = history.snapshot()["series"]
        assert series["points"][-1][1] == 0.0

    def test_quantile_mode(self, registry):
        histogram = registry.histogram("lat", "")
        history = HistoryRecorder(registry).track(
            "lat", mode="quantile", quantile=0.5
        )
        for value in (1, 2, 3, 4, 100):
            histogram.observe(value)
        history.sample(now=1.0)
        (series,) = history.snapshot()["series"]
        assert series["points"][0][1] == pytest.approx(
            histogram.quantile(0.5)
        )

    def test_wildcard_labels_fan_out(self, registry):
        registry.gauge("age", "", shard="0").set(1.0)
        registry.gauge("age", "", shard="1").set(2.0)
        history = HistoryRecorder(registry).track("age")
        history.sample(now=0.0)
        # A series appearing later is picked up on the next sample.
        registry.gauge("age", "", shard="2").set(3.0)
        history.sample(now=1.0)
        snapshot = history.snapshot()
        by_shard = {
            s["labels"].get("shard"): s["points"]
            for s in snapshot["series"]
        }
        assert set(by_shard) == {"0", "1", "2"}
        assert len(by_shard["0"]) == 2
        assert len(by_shard["2"]) == 1

    def test_exact_labels_sample_one_series(self, registry):
        registry.gauge("age", "", shard="0").set(1.0)
        registry.gauge("age", "", shard="1").set(2.0)
        history = HistoryRecorder(registry).track("age", shard="1")
        history.sample(now=0.0)
        (series,) = history.snapshot()["series"]
        assert series["labels"] == {"shard": "1"}

    def test_capacity_bounds_the_ring(self, registry):
        gauge = registry.gauge("g", "")
        history = HistoryRecorder(registry, capacity=4).track("g")
        for tick in range(10):
            gauge.set(float(tick))
            history.sample(now=float(tick))
        (series,) = history.snapshot()["series"]
        assert len(series["points"]) == 4
        assert series["points"][-1] == [9.0, 9.0]

    def test_snapshot_shape(self, registry):
        registry.gauge("g", "").set(1.0)
        history = HistoryRecorder(registry, interval_s=0.5).track("g")
        history.sample(now=1.0)
        snapshot = history.snapshot()
        assert snapshot["interval_s"] == 0.5
        assert snapshot["capacity"] == 240
        assert snapshot["samples"] == 1


class TestLifecycle:
    def test_thread_samples_and_stops(self, registry):
        registry.gauge("g", "").set(1.0)
        history = HistoryRecorder(registry, interval_s=0.01).track("g")
        import time

        with history:
            deadline = time.time() + 5.0
            while history.samples_taken < 3 and time.time() < deadline:
                time.sleep(0.01)
        assert history.samples_taken >= 3
        taken = history.samples_taken
        time.sleep(0.05)
        assert history.samples_taken == taken  # stopped for real


class TestDefaultHistory:
    def test_tracks_the_stock_series(self, registry):
        registry.counter("events_ingested_total", "").inc(10)
        registry.gauge("dlq_depth", "").set(2.0)
        history = default_history(registry)
        history.sample(now=0.0)
        registry.counter("events_ingested_total", "").inc(10)
        history.sample(now=1.0)
        names = {s["name"] for s in history.snapshot()["series"]}
        assert "ingest_rate" in names
        assert "dlq_depth" in names


class TestSparklines:
    def test_renders_one_line_per_series(self, registry):
        gauge = registry.gauge("g", "", shard="0")
        history = HistoryRecorder(registry).track("g")
        for tick in range(5):
            gauge.set(float(tick))
            history.sample(now=float(tick))
        text = render_sparklines(history.snapshot())
        assert 'g{shard=0}' in text
        assert "last=4" in text

    def test_empty_history(self):
        assert "no history samples" in render_sparklines({"series": []})
