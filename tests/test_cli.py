"""The command-line interface (``python -m repro``)."""

import pytest

from repro.cli import main
from repro.datagen import StockTradeGenerator
from repro.datagen.tracefile import write_trace


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "trades.txt"
    write_trace(StockTradeGenerator(mean_gap_ms=1, seed=2).take(3_000), path)
    return str(path)


QUERY = "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 300 ms"


class TestSingleQuery:
    def test_query_over_trace(self, trace_path, capsys):
        assert main(["--query", QUERY, "--trace", trace_path]) == 0
        out = capsys.readouterr().out
        assert out.startswith("result\t")

    def test_generated_stream(self, capsys):
        code = main(
            ["--query", QUERY, "--generate", "stock", "--events", "2000"]
        )
        assert code == 0
        assert "result" in capsys.readouterr().out

    def test_emit_every(self, trace_path, capsys):
        main(["--query", QUERY, "--trace", trace_path, "--emit", "every"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) > 1  # per-trigger lines plus the final result
        assert lines[-1].startswith("result")

    def test_emit_none(self, trace_path, capsys):
        main(["--query", QUERY, "--trace", trace_path, "--emit", "none"])
        assert "result" not in capsys.readouterr().out

    def test_cross_check_agrees(self, trace_path, capsys):
        code = main(
            ["--query", QUERY, "--trace", trace_path, "--engine", "both"]
        )
        assert code == 0
        assert "AGREE" in capsys.readouterr().err

    def test_vectorized_engine(self, trace_path, capsys):
        code = main(
            ["--query", QUERY, "--trace", trace_path,
             "--engine", "vectorized"]
        )
        assert code == 0

    def test_query_file(self, tmp_path, trace_path, capsys):
        query_file = tmp_path / "q.cep"
        query_file.write_text(QUERY)
        code = main(
            ["--query-file", str(query_file), "--trace", trace_path]
        )
        assert code == 0

    def test_reorder_slack(self, tmp_path, capsys):
        # A trace with mild disorder fails strict replay but passes
        # with a slack bound.
        events = StockTradeGenerator(mean_gap_ms=2, seed=2).take(500)
        events[10], events[11] = events[11], events[10]
        path = tmp_path / "noisy.txt"
        write_trace(events, path)
        assert main(["--query", QUERY, "--trace", str(path)]) == 1
        capsys.readouterr()
        assert (
            main(
                ["--query", QUERY, "--trace", str(path),
                 "--reorder-slack-ms", "10"]
            )
            == 0
        )


class TestWorkloads:
    @pytest.fixture
    def workload_file(self, tmp_path):
        path = tmp_path / "w.cep"
        path.write_text(
            """
            a: PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 300 ms;
            b: PATTERN SEQ(MSFT, IPIX, AMAT) AGG COUNT WITHIN 300 ms;
            """
        )
        return str(path)

    def test_unshared_workload(self, workload_file, trace_path, capsys):
        code = main(
            ["--workload-file", workload_file, "--trace", trace_path]
        )
        assert code == 0
        assert "result" in capsys.readouterr().out

    def test_shared_workload_matches_unshared(
        self, workload_file, trace_path, capsys
    ):
        main(["--workload-file", workload_file, "--trace", trace_path])
        unshared_out = capsys.readouterr().out
        main(
            ["--workload-file", workload_file, "--trace", trace_path,
             "--shared"]
        )
        shared_out = capsys.readouterr().out
        assert unshared_out == shared_out


class TestErrors:
    def test_no_query_source(self, trace_path, capsys):
        with pytest.raises(SystemExit):
            main(["--trace", trace_path])

    def test_two_query_sources(self, trace_path):
        with pytest.raises(SystemExit):
            main(
                ["--query", QUERY, "--workload-file", "x", "--trace",
                 trace_path]
            )

    def test_no_event_source(self):
        with pytest.raises(SystemExit):
            main(["--query", QUERY])

    def test_bad_query_reports_error(self, trace_path, capsys):
        assert main(["--query", "PATTERN OOPS", "--trace", trace_path]) == 1
        assert "error:" in capsys.readouterr().err
