"""Sanity checks for the brute-force oracle itself.

The oracle anchors every differential test, so it gets direct tests on
tiny hand-verifiable scenarios.
"""

import pytest

from conftest import events_of
from repro.baseline.oracle import BruteForceOracle, enumerate_matches
from repro.errors import PredicateError
from repro.query import seq


class TestEnumerateMatches:
    def test_simple(self):
        events = events_of(("A", 1), ("B", 2), ("B", 3))
        matches = enumerate_matches(events, seq("A", "B").build())
        assert len(matches) == 2
        assert all(m[0].ts == 1 for m in matches)

    def test_strict_time_order(self):
        events = events_of(("B", 1), ("A", 2))
        assert enumerate_matches(events, seq("A", "B").build()) == []

    def test_equal_ts_not_ordered(self):
        events = events_of(("A", 5), ("B", 5))
        assert enumerate_matches(events, seq("A", "B").build()) == []

    def test_window_uses_start_expiry(self):
        query = seq("A", "B").within(ms=5).build()
        events = events_of(("A", 1), ("B", 3))
        assert len(enumerate_matches(events, query)) == 1
        # At observation time 6 the A (exp 6) is dead.
        assert enumerate_matches(events, query, now=6) == []

    def test_observation_time_advanced_by_irrelevant_event(self):
        query = seq("A", "B").within(ms=5).build()
        events = events_of(("A", 1), ("B", 3), ("Z", 50))
        assert enumerate_matches(events, query) == []

    def test_negation(self):
        query = seq("A", "!N", "B").build()
        events = events_of(("A", 1), ("N", 2), ("B", 3), ("A", 4), ("B", 5))
        matches = enumerate_matches(events, query)
        # (a1,b3) killed by n2; (a1,b5) killed too; (a4,b5) survives.
        assert [(m[0].ts, m[1].ts) for m in matches] == [(4, 5)]

    def test_negation_boundary_exclusive(self):
        query = seq("A", "!N", "B").build()
        events = events_of(("N", 1), ("A", 2), ("B", 3), ("N", 4))
        assert len(enumerate_matches(events, query)) == 1

    def test_local_predicate_filters_negatives_too(self):
        query = (
            seq("A", "!N", "B").where_local("N", "armed", "=", True).build()
        )
        events = events_of(
            ("A", 1), ("N", 2, {"armed": False}), ("B", 3)
        )
        assert len(enumerate_matches(events, query)) == 1

    def test_equivalence(self):
        query = seq("A", "B").where_equal("id").build()
        events = events_of(
            ("A", 1, {"id": 1}), ("A", 2, {"id": 2}), ("B", 3, {"id": 2})
        )
        matches = enumerate_matches(events, query)
        assert [(m[0].ts,) for m in matches] == [(2,)]

    def test_group_by_union(self):
        query = seq("A", "B").group_by("ip").build()
        events = events_of(
            ("A", 1, {"ip": "x"}), ("B", 2, {"ip": "x"}),
            ("A", 3, {"ip": "y"}), ("B", 4, {"ip": "y"}),
        )
        assert len(enumerate_matches(events, query)) == 2


class TestBruteForceOracle:
    def test_count(self):
        oracle = BruteForceOracle(seq("A", "B").build())
        assert oracle.aggregate(events_of(("A", 1), ("B", 2))) == 1

    def test_sum_avg_max_min(self):
        events = events_of(
            ("A", 1), ("B", 2, {"w": 10}), ("B", 3, {"w": 4})
        )
        assert BruteForceOracle(
            seq("A", "B").sum("B", "w").build()
        ).aggregate(events) == 14
        assert BruteForceOracle(
            seq("A", "B").avg("B", "w").build()
        ).aggregate(events) == 7
        assert BruteForceOracle(
            seq("A", "B").max("B", "w").build()
        ).aggregate(events) == 10
        assert BruteForceOracle(
            seq("A", "B").min("B", "w").build()
        ).aggregate(events) == 4

    def test_empty_aggregates(self):
        events = events_of(("A", 1))
        assert BruteForceOracle(
            seq("A", "B").sum("B", "w").build()
        ).aggregate(events) == 0
        assert BruteForceOracle(
            seq("A", "B").max("B", "w").build()
        ).aggregate(events) is None

    def test_group_by_aggregate(self):
        oracle = BruteForceOracle(seq("A", "B").group_by("ip").build())
        result = oracle.aggregate(
            events_of(
                ("A", 1, {"ip": "x"}), ("B", 2, {"ip": "x"}),
                ("A", 3, {"ip": "y"}),
            )
        )
        assert result == {"x": 1, "y": 0}

    def test_group_by_missing_attr_on_positive_raises(self):
        oracle = BruteForceOracle(seq("A", "B").group_by("ip").build())
        with pytest.raises(PredicateError):
            oracle.aggregate(events_of(("A", 1)))

    def test_group_by_negated_broadcast(self):
        query = seq("A", "!N", "B").group_by("ip").build()
        events = events_of(
            ("A", 1, {"ip": "x"}), ("N", 2), ("B", 3, {"ip": "x"})
        )
        assert BruteForceOracle(query).aggregate(events) == {"x": 0}
