"""The fault-injection harness itself, plus end-to-end chaos runs."""

import random

import pytest

from repro.engine.sinks import CollectSink
from repro.events import Event
from repro.obs.registry import MetricsRegistry
from repro.query import seq
from repro.resilience import (
    BurstySink,
    Checkpointer,
    EventJournal,
    FaultPlan,
    FaultyExecutor,
    InjectedFault,
    SupervisedStreamEngine,
    fault_seed,
    recover,
)
from repro.core.executor import ASeqEngine


def ab_query(name="ab"):
    return seq("A", "B").count().within(ms=10).named(name).build()


# ----- seed plumbing ---------------------------------------------------------


def test_fault_seed_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_SEED", raising=False)
    assert fault_seed(default=7) == 7
    monkeypatch.setenv("REPRO_FAULT_SEED", "42")
    assert fault_seed() == 42
    assert FaultPlan().seed == 42
    monkeypatch.setenv("REPRO_FAULT_SEED", "not-a-number")
    with pytest.raises(ValueError):
        fault_seed()


# ----- FaultyExecutor --------------------------------------------------------


def test_faulty_executor_fails_only_at_chosen_ordinals():
    inner = ASeqEngine(ab_query())
    faulty = FaultyExecutor(inner, fail_at={1, 3})
    events = [Event("AB"[i % 2], i + 1) for i in range(6)]
    outcomes = []
    for event in events:
        try:
            faulty.process(event)
            outcomes.append("ok")
        except InjectedFault:
            outcomes.append("fail")
    assert outcomes == ["ok", "fail", "ok", "fail", "ok", "ok"]
    assert faulty.failures == 2
    # the inner engine never saw the failed events
    assert inner.events_seen == 4


def test_faulty_executor_delegates_surface():
    inner = ASeqEngine(ab_query())
    faulty = FaultyExecutor(inner)
    faulty.process(Event("A", 1))
    faulty.process(Event("B", 2))
    assert faulty.result() == inner.result() == 1
    assert faulty.query is inner.query
    assert faulty.current_objects() == inner.current_objects()


# ----- BurstySink ------------------------------------------------------------


def test_bursty_sink_fails_in_bursts():
    sink = BurstySink(period=5, burst_len=2)
    from repro.engine.sinks import Output

    for i in range(10):
        try:
            sink.emit(Output("q", i, i))
        except InjectedFault:
            pass
    assert sink.failures == 4  # emits 0,1,5,6
    assert [output.ts for output in sink.delivered] == [2, 3, 4, 7, 8, 9]


def test_bursty_sink_failures_are_isolated_by_the_engine():
    registry = MetricsRegistry()
    engine = SupervisedStreamEngine(registry=registry)
    bursty = BurstySink(period=3, burst_len=1)
    collect = CollectSink()
    engine.register(ab_query(), bursty, collect)
    for i in range(40):
        engine.process(Event("AB"[i % 2], i + 1))
    assert engine.metrics.sink_errors == bursty.failures > 0
    assert registry.value("sink_errors_total") == bursty.failures
    # the second sink saw every output despite the bursty one
    assert len(collect) == engine.metrics.outputs


# ----- end-to-end chaos ------------------------------------------------------


def test_chaos_everything_at_once(tmp_path):
    """Flaky executor + bursty sink + crash + torn tail + corrupt
    newest checkpoint, all seeded — recovery still converges to the
    uninterrupted oracle for the healthy query."""
    plan = FaultPlan()
    rng = random.Random(plan.seed + 1009)
    events = []
    ts = 0
    for _ in range(300):
        ts += rng.randint(1, 2)
        events.append(Event(rng.choice("AB"), ts))
    healthy = ab_query("healthy")
    expected_oracle = SupervisedStreamEngine()
    expected_oracle.register(healthy)
    for event in events:
        expected_oracle.process(event)
    expected = expected_oracle.result("healthy")

    engine = SupervisedStreamEngine(quarantine_after=3)
    journal = EventJournal(tmp_path, fsync="interval", fsync_interval=32)
    engine.attach_journal(journal)
    engine.attach_checkpointer(
        Checkpointer(tmp_path, engine, journal=journal, every_events=31)
    )
    engine.register(ab_query("healthy"), plan.bursty_sink())
    engine.register_executor(
        "flaky",
        plan.faulty(ASeqEngine(ab_query("flaky")), len(events), 40),
    )
    crash = plan.crash_point(len(events))
    if crash % 31 == 0:
        crash -= 1
    for event in events[:crash]:
        engine.process(event)
    del engine

    plan.tear_journal(tmp_path)
    plan.corrupt_latest_checkpoint(tmp_path)
    recovered = recover(
        tmp_path, queries=[ab_query("healthy")], quarantine_after=3
    )
    # the torn tail lost at most events[crash-1]; re-deliver from there
    replay_from = max(0, crash - 1)
    for event in events[replay_from:]:
        recovered.process(event)
    assert recovered.result("healthy") == expected


def test_fault_plan_shard_to_kill_is_seeded():
    first = [FaultPlan(7).shard_to_kill(4) for _ in range(8)]
    second = [FaultPlan(7).shard_to_kill(4) for _ in range(8)]
    assert first == second
    assert all(0 <= victim < 4 for victim in first)
    draws = FaultPlan(7)
    assert [draws.shard_to_kill(4) for _ in range(8)] != first or len(
        set(first)
    ) == 1  # one plan advances its rng between draws


def test_shard_kill_tick_counts_down_and_fires_once():
    from types import SimpleNamespace

    from repro.resilience import kill_shard

    engine = SimpleNamespace(
        _workers=[SimpleNamespace(process=None)]
    )
    kill = kill_shard(engine, 0, after_events=3)
    assert not kill.fired
    assert kill.tick() is False
    assert kill.tick() is False
    assert kill.tick() is False  # fires, but there is no process to hit
    assert kill.fired
    assert kill.tick() is False  # armed once; never fires again
