"""Tumbling-window aggregation (DPC + boundary resets)."""

import random

import pytest

from conftest import events_of
from repro.baseline.oracle import BruteForceOracle
from repro.engine.tumbling import TumblingAggregator, WindowResult, tumbling
from repro.errors import QueryError
from repro.events import Event
from repro.query import seq


class TestTumblingAggregator:
    def test_rejects_windowed_query(self):
        with pytest.raises(QueryError):
            TumblingAggregator(
                seq("A", "B").within(ms=5).build(), width_ms=10
            )

    def test_rejects_group_by(self):
        with pytest.raises(QueryError):
            TumblingAggregator(
                seq("A", "B").group_by("ip").build(), width_ms=10
            )

    def test_rejects_bad_width(self):
        with pytest.raises(QueryError):
            TumblingAggregator(seq("A", "B").build(), width_ms=0)

    def test_matches_do_not_span_buckets(self):
        agg = TumblingAggregator(seq("A", "B").count().build(), width_ms=10)
        closed = []
        for event in events_of(("A", 8), ("B", 12)):
            closed.extend(agg.process(event))
        # The A fell in bucket 0, the B in bucket 1: no match anywhere.
        assert [r.value for r in closed] == [0]
        assert agg.flush().value == 0

    def test_per_bucket_counts(self):
        agg = TumblingAggregator(seq("A", "B").count().build(), width_ms=10)
        closed = []
        stream = events_of(
            ("A", 1), ("B", 2), ("B", 3),    # bucket 0: 2 matches
            ("A", 11), ("B", 12),            # bucket 1: 1 match
            ("A", 25),                       # bucket 2: 0 matches
            ("B", 31),                       # bucket 3 (open)
        )
        for event in stream:
            closed.extend(agg.process(event))
        assert [(r.window_start, r.value) for r in closed] == [
            (0, 2), (10, 1), (20, 0),
        ]

    def test_quiet_gap_closes_interior_buckets(self):
        agg = TumblingAggregator(seq("A").count().build(), width_ms=10)
        agg.process(Event("A", 1))
        closed = agg.process(Event("A", 45))
        assert [r.window_start for r in closed] == [0, 10, 20, 30]
        assert [r.value for r in closed] == [1, 0, 0, 0]

    def test_sum_per_bucket(self):
        agg = TumblingAggregator(
            seq("A", "B").sum("B", "w").build(), width_ms=10
        )
        closed = []
        for event in events_of(
            ("A", 1), ("B", 2, {"w": 5}), ("A", 12), ("B", 13, {"w": 3})
        ):
            closed.extend(agg.process(event))
        final = agg.flush()
        assert closed[0].value == 5
        assert final.value == 3

    def test_current_value_of_open_bucket(self):
        agg = TumblingAggregator(seq("A", "B").count().build(), width_ms=100)
        agg.process(Event("A", 1))
        agg.process(Event("B", 2))
        assert agg.current_value() == 1

    def test_negation_within_bucket(self):
        agg = TumblingAggregator(
            seq("A", "!N", "B").count().build(), width_ms=100
        )
        for event in events_of(("A", 1), ("N", 2), ("B", 3)):
            agg.process(event)
        assert agg.current_value() == 0

    def test_constant_state(self):
        agg = TumblingAggregator(seq("A", "B").count().build(), width_ms=10)
        for ts in range(1, 500):
            agg.process(Event("A" if ts % 2 else "B", ts))
        assert agg.current_objects() == 1

    def test_flush_empty(self):
        agg = TumblingAggregator(seq("A").count().build(), width_ms=10)
        assert agg.flush() is None


class TestTumblingHelper:
    def test_yields_all_buckets_including_final(self):
        query = seq("A", "B").count().build()
        results = list(
            tumbling(events_of(("A", 1), ("B", 2), ("A", 11)), query, 10)
        )
        assert [r.value for r in results] == [1, 0]
        assert isinstance(results[0], WindowResult)

    def test_matches_oracle_per_bucket(self):
        """Each bucket's count equals the oracle run on that bucket alone."""
        rng = random.Random(71)
        query = seq("A", "B", "C").count().build()
        width = 20
        events = []
        ts = 0
        for _ in range(300):
            ts += rng.randint(1, 3)
            events.append(Event(rng.choice("ABC"), ts))
        results = list(tumbling(iter(events), query, width))
        oracle = BruteForceOracle(query)
        for result in results:
            bucket_events = [
                e
                for e in events
                if result.window_start <= e.ts < result.window_end
            ]
            assert result.value == oracle.aggregate(
                bucket_events, now=result.window_end
            )
