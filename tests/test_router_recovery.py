"""Differential kill-the-ROUTER suite: exact recovery of the whole
sharded engine after the coordinating process itself dies.

The contract under test closes the last single point of failure: with
a router WAL attached (ingest lanes + periodic router checkpoints) and
durable shard journals, SIGKILLing the *router* mid-stream and calling
``recover_router`` resumes the run bit-identically — the recovered
engine finishes the stream and its merged results equal an
uninterrupted single-process reference. Workers are reconciled from
their own checkpoints + journals; the lane WAL suffix replays with
per-shard count-skip; anything conservatively redelivered is dropped
by the workers' dedup cursors.

The WAL is group-committed: ``append`` stages in memory and the engine
commits ahead of every batch send, so a router death can lose records
staged after the last send — records that provably reached no shard or
sink. The recovered engine's ``metrics.events`` is therefore the
resume position (the source continues from that offset), and
``flush()`` is the explicit durability ack that pins it exactly.

Crashes are simulated two ways: in-process (stop the monitor, SIGKILL
every worker, abandon the engine without close/flush — exactly the
state a dead router leaves behind) and once for real (a subprocess
router SIGKILLed from outside). Everything is seeded through
``REPRO_FAULT_SEED``.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import textwrap

import pytest

from conftest import random_events
from repro.engine.engine import StreamEngine
from repro.engine.sharded import ShardedStreamEngine
from repro.errors import CheckpointError, EngineError, JournalError
from repro.events.event import Event
from repro.query import parse_query
from repro.resilience.faults import FaultPlan, fault_seed
from repro.resilience.router_recovery import (
    RouterLog,
    discover_lanes,
    recover_router,
)

SEEDS = [fault_seed(0) * 101 + offset for offset in (0, 1, 2)]

QUERIES = {
    "count": "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms GROUP BY g",
    "sum": "PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 40 ms GROUP BY g",
    "avg": "PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 40 ms GROUP BY g",
    "max": "PATTERN SEQ(A, B) AGG MAX(B.v) WITHIN 40 ms GROUP BY g",
    "min": "PATTERN SEQ(A, B) AGG MIN(B.v) WITHIN 40 ms GROUP BY g",
    "neg": "PATTERN SEQ(A, !C, B) AGG COUNT WITHIN 40 ms GROUP BY g",
}

ENGINE_SETTINGS = dict(
    batch_size=32,
    heartbeat_interval_s=0.05,
    heartbeat_max_missed=2,
    checkpoint_every_batches=4,
)


def _attrs(rng, _event_type):
    return {"g": rng.randrange(16), "v": rng.randrange(1000)}


def _stream(plan: FaultPlan, count: int):
    return random_events(plan.rng, "ABC", count, attr_maker=_attrs)


def _reference(events) -> dict:
    engine = StreamEngine()
    for name, text in QUERIES.items():
        engine.register(parse_query(text), name=name)
    for event in events:
        engine.process(event)
    engine.advance_clock(events[-1].ts)
    return engine.results()


def _journaled(tmp_path, shards, lanes=2, checkpoint_every=150,
               **overrides) -> ShardedStreamEngine:
    settings = dict(
        ENGINE_SETTINGS,
        shards=shards,
        journal_dir=tmp_path / "shards",
        router_checkpoint_every=checkpoint_every,
    )
    settings.update(overrides)
    engine = ShardedStreamEngine(**settings)
    for name, text in QUERIES.items():
        engine.register(parse_query(text), name=name)
    engine.attach_router_log(RouterLog(tmp_path, lanes=lanes))
    return engine


def _crash_router(engine: ShardedStreamEngine) -> None:
    """Leave behind exactly what a SIGKILL'd router leaves: dead
    workers, un-closed journals, no flush, no checkpoint — records
    staged in the WAL since the last group commit are lost, just as a
    real SIGKILL would lose them."""
    monitor = engine._monitor
    if monitor is not None:
        # A heartbeat round already in flight must not respawn the
        # workers we are about to kill (stop() joins with a timeout).
        monitor._revive = lambda shard, reason: None
        monitor.stop()
        engine._monitor = None
    for worker in engine._workers:
        process = worker.process
        if process is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
    for worker in engine._workers:
        if worker.process is not None:
            worker.process.join(timeout=10)
    engine._closed = True  # the crashed instance is never reused


def _recover(tmp_path, **overrides) -> ShardedStreamEngine:
    settings = dict(ENGINE_SETTINGS)
    settings.update(overrides)
    settings.pop("journal_dir", None)
    return recover_router(tmp_path, **settings)


# ----- the differential matrix ----------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("shards", [2, 3, 4])
def test_router_sigkill_mid_stream_is_exact(tmp_path, seed, shards):
    """Kill the router at a seeded offset; recover; finish the stream;
    merged results stay bit-identical to the reference — across every
    aggregate shape, negation, and GROUP BY at once."""
    plan = FaultPlan(seed)
    events = _stream(plan, 900)
    expected = _reference(events)
    crash_at = plan.crash_point(len(events))
    engine = _journaled(tmp_path, shards)
    for event in events[:crash_at]:
        engine.process(event)
    _crash_router(engine)
    recovered = _recover(tmp_path)
    try:
        # The resume position trails the crash point by at most the
        # records staged since the last group commit (none of which
        # were ever delivered); the source resumes from it.
        resume = recovered.metrics.events
        assert crash_at - 32 * (shards + 1) <= resume <= crash_at
        for event in events[resume:]:
            recovered.process(event)
        assert recovered.results() == expected
    finally:
        recovered.close()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("transport", ["pipe", "tcp"])
def test_router_sigkill_mid_columnar_stream_is_exact(
    tmp_path, seed, transport
):
    """The columnar ingest lane under a router SIGKILL: feed the stream
    as struct-of-arrays batches (which the WAL-attached engine durably
    journals per event), crash at a seeded offset, recover, finish the
    stream columnar — merged results stay bit-identical over both
    transports."""
    from repro.events.batch import EventBatch

    def feed_batches(engine, records):
        for start in range(0, len(records), 64):
            engine.process_event_batch(
                EventBatch.from_events(records[start:start + 64])
            )

    plan = FaultPlan(seed)
    events = _stream(plan, 900)
    expected = _reference(events)
    crash_at = plan.crash_point(len(events))
    engine = _journaled(tmp_path, 2, transport=transport)
    feed_batches(engine, events[:crash_at])
    _crash_router(engine)
    recovered = _recover(tmp_path, transport=transport)
    try:
        resume = recovered.metrics.events
        assert crash_at - 32 * 3 <= resume <= crash_at
        feed_batches(recovered, events[resume:])
        assert recovered.results() == expected
    finally:
        recovered.close()


@pytest.mark.parametrize("lanes", [1, 3])
def test_recovery_is_exact_for_any_lane_count(tmp_path, lanes):
    plan = FaultPlan(SEEDS[0])
    events = _stream(plan, 700)
    expected = _reference(events)
    engine = _journaled(tmp_path, 2, lanes=lanes)
    for event in events[:450]:
        engine.process(event)
    _crash_router(engine)
    assert discover_lanes(tmp_path) == lanes
    recovered = _recover(tmp_path)
    try:
        for event in events[recovered.metrics.events:]:
            recovered.process(event)
        assert recovered.results() == expected
    finally:
        recovered.close()


def test_recovery_without_any_router_checkpoint(tmp_path):
    """checkpoint cadence 0: nothing but the WAL survives. Recovery is
    a from-scratch replay and still exact (queries re-supplied)."""
    plan = FaultPlan(SEEDS[1])
    events = _stream(plan, 500)
    expected = _reference(events)
    engine = _journaled(tmp_path, 2, checkpoint_every=0)
    for event in events[:300]:
        engine.process(event)
    engine.flush()  # durability ack: all 300 events hit the WAL
    _crash_router(engine)
    queries = [parse_query(text, name=name)
               for name, text in QUERIES.items()]
    recovered = _recover(tmp_path, shards=2, queries=queries)
    try:
        assert recovered.events_replayed == 300
        for event in events[300:]:
            recovered.process(event)
        assert recovered.results() == expected
    finally:
        recovered.close()


def test_recover_twice_survives_a_second_crash(tmp_path):
    """The recovered engine is immediately crash-safe again: the WAL
    reattaches and a second SIGKILL recovers just as exactly."""
    plan = FaultPlan(SEEDS[2])
    events = _stream(plan, 900)
    expected = _reference(events)
    engine = _journaled(tmp_path, 3)
    for event in events[:300]:
        engine.process(event)
    _crash_router(engine)
    second = _recover(tmp_path, router_checkpoint_every=150)
    for event in events[second.metrics.events:600]:
        second.process(event)
    _crash_router(second)
    third = _recover(tmp_path, router_checkpoint_every=150)
    try:
        for event in events[third.metrics.events:]:
            third.process(event)
        assert third.results() == expected
    finally:
        third.close()


def test_recovery_under_tcp_transport_is_exact(tmp_path):
    """Transport parity under failure: the crashed run and the
    recovered run both ride the socket transport."""
    plan = FaultPlan(SEEDS[0])
    events = _stream(plan, 700)
    expected = _reference(events)
    engine = _journaled(tmp_path, 2, transport="tcp")
    for event in events[:400]:
        engine.process(event)
    _crash_router(engine)
    recovered = _recover(tmp_path, transport="tcp")
    try:
        for event in events[recovered.metrics.events:]:
            recovered.process(event)
        assert recovered.results() == expected
    finally:
        recovered.close()


def test_true_sigkill_of_router_process_is_exact(tmp_path):
    """The real thing: a subprocess router SIGKILLed from outside at a
    seeded crash point, recovered here, finishes the stream exactly."""
    plan = FaultPlan(SEEDS[1])
    events = _stream(plan, 800)
    expected = _reference(events)
    crash_at = plan.crash_point(len(events))
    events_file = tmp_path / "events.pkl"
    with open(events_file, "wb") as handle:
        pickle.dump(
            [(e.event_type, e.ts, e.attrs) for e in events[:crash_at]],
            handle,
        )
    script = textwrap.dedent(
        f"""
        import pickle, sys
        from repro.engine.sharded import ShardedStreamEngine
        from repro.events.event import Event
        from repro.query import parse_query
        from repro.resilience.router_recovery import RouterLog

        queries = {QUERIES!r}
        engine = ShardedStreamEngine(
            shards=2, batch_size=32, heartbeat_interval_s=0.05,
            heartbeat_max_missed=2, checkpoint_every_batches=4,
            journal_dir={str(tmp_path / "shards")!r},
            router_checkpoint_every=150,
        )
        for name, text in queries.items():
            engine.register(parse_query(text), name=name)
        engine.attach_router_log(RouterLog({str(tmp_path)!r}, lanes=2))
        with open({str(events_file)!r}, "rb") as handle:
            records = pickle.load(handle)
        for t, ts, attrs in records:
            engine.process(Event(t, ts, attrs))
        engine.flush()  # durability ack: the prefix is fully WAL'd
        print("FED", flush=True)
        sys.stdin.readline()  # hold until the test SIGKILLs us
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    router = subprocess.Popen(
        [sys.executable, "-c", script],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        assert router.stdout.readline().strip() == "FED"
        os.kill(router.pid, signal.SIGKILL)
        assert router.wait(timeout=30) == -signal.SIGKILL
    finally:
        if router.poll() is None:
            router.kill()
            router.wait(timeout=10)
    recovered = _recover(tmp_path)
    try:
        # flush() acked the whole prefix, so recovery is position-exact.
        assert recovered.metrics.events == crash_at
        for event in events[crash_at:]:
            recovered.process(event)
        assert recovered.results() == expected
    finally:
        recovered.close()


# ----- recovery bookkeeping -------------------------------------------------


def test_checkpoint_bounds_replay(tmp_path):
    """Replay length is bounded by the checkpoint cadence, not the
    stream length — the point of periodic router checkpoints."""
    plan = FaultPlan(SEEDS[0])
    events = _stream(plan, 900)
    engine = _journaled(tmp_path, 2, checkpoint_every=100)
    for event in events:
        engine.process(event)
    _crash_router(engine)
    recovered = _recover(tmp_path)
    try:
        assert recovered.events_replayed <= 100
        # At most one checkpoint window is un-checkpointed, and at most
        # one commit group of it was still staged when the router died.
        assert len(events) - 100 <= recovered.metrics.events <= len(events)
    finally:
        recovered.close()


def test_router_checkpoint_metric_and_inspect(tmp_path):
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    plan = FaultPlan(SEEDS[1])
    events = _stream(plan, 400)
    settings = dict(
        ENGINE_SETTINGS,
        shards=2,
        journal_dir=tmp_path / "shards",
        router_checkpoint_every=100,
        registry=registry,
    )
    with ShardedStreamEngine(**settings) as engine:
        for name, text in QUERIES.items():
            engine.register(parse_query(text), name=name)
        engine.attach_router_log(RouterLog(tmp_path, registry=registry))
        for event in events:
            engine.process(event)
        engine.flush()  # commit the staged tail before reading counters
        assert engine.inspect()["router_journal"] is True
        assert registry.value("router_checkpoints_total") >= 3
        assert registry.value("router_wal_appends_total") == len(events)


def test_attach_router_log_guards(tmp_path):
    plan = FaultPlan(SEEDS[2])
    events = _stream(plan, 50)
    # Supervised engines need durable shard journals for the WAL.
    with ShardedStreamEngine(shards=2) as engine:
        engine.register(parse_query(QUERIES["count"]), name="count")
        with pytest.raises(EngineError):
            engine.attach_router_log(RouterLog(tmp_path))
    # Attaching after ingestion started is refused.
    with ShardedStreamEngine(
        shards=2, journal_dir=tmp_path / "shards"
    ) as engine:
        engine.register(parse_query(QUERIES["count"]), name="count")
        for event in events:
            engine.process(event)
        with pytest.raises(EngineError):
            engine.attach_router_log(RouterLog(tmp_path))


def test_recover_router_refuses_mismatched_shards(tmp_path):
    plan = FaultPlan(SEEDS[0])
    events = _stream(plan, 300)
    engine = _journaled(tmp_path, 2, checkpoint_every=100)
    for event in events:
        engine.process(event)
    _crash_router(engine)
    with pytest.raises(CheckpointError):
        _recover(tmp_path, shards=3)


def test_recover_router_requires_wal_or_queries(tmp_path):
    with pytest.raises(CheckpointError):
        recover_router(tmp_path / "empty")


# ----- the RouterLog itself -------------------------------------------------


def test_router_log_resumes_global_sequence(tmp_path):
    log = RouterLog(tmp_path, lanes=2, shard_attribute="g")
    for index in range(10):
        assert log.append(Event("A", index, {"g": index})) == index
    assert log.ingest_seq == 10
    log.close()
    reopened = RouterLog(tmp_path, lanes=2, shard_attribute="g")
    assert reopened.ingest_seq == 10
    assert reopened.append(Event("A", 10, {"g": 3})) == 10
    reopened.close()


def test_router_log_replay_merges_lanes_in_ingest_order(tmp_path):
    log = RouterLog(tmp_path, lanes=3, shard_attribute="g")
    originals = [
        Event("A", index, {"g": index % 7, "v": index})
        for index in range(60)
    ]
    for event in originals:
        log.append(event)
    replayed = list(log.replay())
    assert [gseq for gseq, _ in replayed] == list(range(60))
    assert [event.attrs for _, event in replayed] == [
        event.attrs for event in originals
    ]
    log.close()


def test_router_log_staged_records_need_a_commit(tmp_path):
    """Group commit: ``append`` stages in memory; only ``commit`` (or
    ``sync``/``close``) makes the records durable."""
    log = RouterLog(tmp_path)
    for index in range(5):
        log.append(Event("A", index, None))
    # Simulate a crash before any commit (close the journals without
    # committing): reopen sees nothing, the five staged gseqs recycle.
    log._journals[0].close()
    log._commits.close()
    reopened = RouterLog(tmp_path)
    assert reopened.ingest_seq == 0
    reopened.append(Event("A", 9, None))
    reopened.sync()  # durability ack
    reopened._journals[0].close()
    reopened._commits.close()
    durable = RouterLog(tmp_path)
    assert durable.ingest_seq == 1
    assert [gseq for gseq, _ in durable.replay()] == [0]
    durable.close()


def test_router_log_detects_cross_lane_gaps(tmp_path):
    log = RouterLog(tmp_path, lanes=2, shard_attribute="g")
    for index in range(40):
        log.append(Event("A", index, {"g": index}))
    log.close()
    # Wipe one whole lane: the merged sequence now has holes.
    lane_dir = tmp_path / "lane-01"
    for segment in lane_dir.glob("journal-*.wal"):
        segment.unlink()
    broken = RouterLog(tmp_path, lanes=2, shard_attribute="g")
    with pytest.raises(JournalError):
        list(broken.replay())
    broken.close()


def test_router_log_checkpoint_prunes_lane_segments(tmp_path):
    # Tiny segments, committed in small groups, so pruning has
    # something to drop.
    log = RouterLog(tmp_path, lanes=1, segment_bytes=2048)
    for index in range(500):
        log.append(Event("A", index, {"g": 1, "v": index}))
        if index % 50 == 49:
            log.sync()
    lane_dir = tmp_path / "lane-00"
    before = len(list(lane_dir.glob("journal-*.wal")))
    assert before > 1
    log.checkpoint({"version": 1, "journal_seq": log.ingest_seq,
                    "registrations": [], "router": {}})
    after = len(list(lane_dir.glob("journal-*.wal")))
    assert after < before
    log.close()
