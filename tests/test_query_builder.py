"""Unit tests for the fluent query builder and semantic validation."""

import pytest

from repro.errors import QueryError
from repro.query import parse_query, seq
from repro.query.ast import AggKind
from repro.query.predicates import EquivalencePredicate, LocalPredicate
from repro.query.validate import validate_query


class TestBuilder:
    def test_minimal(self):
        query = seq("A", "B").build()
        assert query.pattern.positive_types == ("A", "B")
        assert query.aggregate.kind is AggKind.COUNT
        assert query.window is None

    def test_negation_via_bang(self):
        query = seq("A", "!N", "B").build()
        assert query.pattern.negations == {1: ("N",)}

    def test_within_components_add_up(self):
        query = seq("A", "B").within(ms=500, seconds=1, minutes=1).build()
        assert query.window.size_ms == 500 + 1000 + 60_000

    def test_where_local(self):
        query = seq("A", "B").where_local("A", "price", ">", 5).build()
        assert query.predicates == (LocalPredicate("A", "price", ">", 5),)

    def test_where_equal_defaults_to_all_positives(self):
        query = seq("A", "B", "C").where_equal("id").build()
        (predicate,) = query.predicates
        assert isinstance(predicate, EquivalencePredicate)
        assert predicate.event_types == ("A", "B", "C")

    def test_where_equal_needs_two_types(self):
        with pytest.raises(QueryError):
            seq("A").where_equal("id").build()

    def test_where_attrs(self):
        query = seq("A", "B").where_attrs("A", "x", "!=", "y").build()
        assert str(query.predicates[0]) == "A.x != A.y"

    def test_all_aggregates(self):
        for kind in ("sum", "avg", "max", "min"):
            query = getattr(seq("A", "B"), kind)("B", "w").build()
            assert query.aggregate.kind is AggKind[kind.upper()]

    def test_group_by_and_name(self):
        query = seq("A", "B").group_by("ip").named("q").build()
        assert query.group_by == "ip" and query.name == "q"

    def test_builder_matches_parser(self):
        built = (
            seq("A", "B", "C")
            .where_equal("id", "A", "B", "C")
            .count()
            .within(seconds=1)
            .build()
        )
        parsed = parse_query(
            "PATTERN SEQ(A, B, C) WHERE A.id = B.id = C.id "
            "AGG COUNT WITHIN 1 s"
        )
        assert built.pattern == parsed.pattern
        assert built.predicates == parsed.predicates
        assert built.window == parsed.window


class TestValidation:
    def test_type_cannot_be_positive_and_negated(self):
        with pytest.raises(QueryError):
            seq("A", "!A", "B").build()

    def test_aggregate_target_must_be_positive_type(self):
        with pytest.raises(QueryError):
            seq("A", "!N", "B").sum("N", "w").build()

    def test_predicate_type_must_be_in_pattern(self):
        with pytest.raises(QueryError):
            seq("A", "B").where_local("Z", "x", "=", 1).build()

    def test_equivalence_cannot_cover_negated_type(self):
        with pytest.raises(QueryError):
            seq("A", "!N", "B").where_equal("id", "A", "N").build()

    def test_validate_query_is_idempotent(self):
        query = seq("A", "B").build()
        validate_query(query)
        validate_query(query)
