"""Bounded sink-delivery retry with backoff and dead-lettering.

``StreamEngine(sink_retries=N)`` retries a failing sink emit up to N
times (exponential backoff, jitter seeded via ``REPRO_FAULT_SEED``);
when every attempt fails the output is pushed to ``sink_dlq`` as a
DeadLetter carrying the undelivered payload. The default (0 retries,
no DLQ) is the historical count-and-drop behavior.
"""

from __future__ import annotations

import time

from repro.engine import CollectSink, StreamEngine
from repro.engine.sinks import Output, ResultSink
from repro.events.event import Event
from repro.query import seq
from repro.resilience import DeadLetterQueue, SupervisedStreamEngine
from repro.resilience.faults import BurstySink, InjectedFault


class AlwaysFailingSink(ResultSink):
    def __init__(self):
        self.attempts = 0

    def emit(self, output: Output) -> None:
        self.attempts += 1
        raise InjectedFault(f"attempt #{self.attempts}")


def _ab_query():
    return seq("A", "B").count().within(ms=10).named("ab").build()


def _ab_events(pairs: int):
    events = []
    ts = 0
    for _ in range(pairs):
        events.append(Event("A", ts + 1))
        events.append(Event("B", ts + 2))
        ts += 2
    return events


def test_retry_recovers_bursty_sink_without_loss():
    engine = StreamEngine(sink_retries=2, sink_retry_backoff_s=0.0)
    sink = BurstySink(period=2, burst_len=1)  # every other emit fails once
    engine.register(_ab_query(), sink)
    engine.run(_ab_events(6))
    # Every failed first attempt is recovered by a retry: no output lost.
    assert len(sink.delivered) == 6
    assert sink.failures > 0
    assert engine.metrics.sink_errors == sink.failures


def test_default_remains_count_and_drop():
    engine = StreamEngine()
    sink = BurstySink(period=2, burst_len=1)
    engine.register(_ab_query(), sink)
    engine.run(_ab_events(6))
    # No retries: the bursty emits are simply lost (and counted).
    assert len(sink.delivered) == 3
    assert engine.metrics.sink_errors == 3


def test_exhausted_retries_dead_letter_the_output():
    dlq = DeadLetterQueue(capacity=16)
    engine = StreamEngine(
        sink_retries=2, sink_retry_backoff_s=0.0, sink_dlq=dlq
    )
    sink = AlwaysFailingSink()
    engine.register(_ab_query(), sink)
    engine.run(_ab_events(2))
    assert sink.attempts == 2 * (1 + 2)  # initial try + 2 retries, twice
    assert len(dlq) == 2
    letter = dlq.drain()[0]
    assert letter.query_name == "ab"
    assert letter.output is not None
    assert letter.output.query_name == "ab"
    assert isinstance(letter.error, InjectedFault)


def test_sibling_sinks_unaffected_by_failing_sink():
    good = CollectSink()
    engine = StreamEngine(sink_retries=1, sink_retry_backoff_s=0.0)
    engine.register(_ab_query(), AlwaysFailingSink(), good)
    engine.run(_ab_events(4))
    assert len(good.values()) == 4


def test_supervised_engine_wires_sink_dlq_to_its_own_dlq():
    engine = SupervisedStreamEngine(sink_retries=1, sink_retry_backoff_s=0.0)
    assert engine.sink_dlq is engine.dlq
    sink = AlwaysFailingSink()
    engine.register(_ab_query(), sink)
    engine.run(_ab_events(3))
    letters = [letter for letter in engine.dlq.drain() if letter.output]
    assert len(letters) == 3


def test_zero_backoff_does_not_sleep():
    engine = StreamEngine(sink_retries=3, sink_retry_backoff_s=0.0)
    engine.register(_ab_query(), AlwaysFailingSink())
    started = time.perf_counter()
    engine.run(_ab_events(10))
    assert time.perf_counter() - started < 1.0


def test_backoff_grows_exponentially_with_seeded_jitter(monkeypatch):
    sleeps: list[float] = []
    monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
    engine = StreamEngine(sink_retries=3, sink_retry_backoff_s=0.01)
    engine.register(_ab_query(), AlwaysFailingSink())
    engine.run(_ab_events(1))
    assert len(sleeps) == 3
    # Base delays 0.01, 0.02, 0.04 with jitter factor in [0.5, 1.5).
    for delay, base in zip(sleeps, (0.01, 0.02, 0.04)):
        assert base * 0.5 <= delay < base * 1.5


def test_negative_retries_rejected():
    import pytest

    with pytest.raises(ValueError):
        StreamEngine(sink_retries=-1)
