"""Disjunctive positions — ``SEQ(A, B|C, D)`` — across every engine.

An extension beyond the paper's dialect: one pattern position may be
filled by any of several event types. Implemented as a generalization
of the positive position; DPC's counting argument is unchanged (the
position's slot is simply updated by more arrival types).
"""

import random

import pytest

from conftest import assert_matches_oracle, events_of, random_events, replay
from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.errors import ParseError, QueryError
from repro.query import parse_query, seq
from repro.query.ast import PositiveType, SeqPattern


class TestChoiceAst:
    def test_alternatives(self):
        element = PositiveType("A|B")
        assert element.alternatives == ("A", "B")
        assert element.is_choice

    def test_plain_type_single_alternative(self):
        assert PositiveType("A").alternatives == ("A",)
        assert not PositiveType("A").is_choice

    def test_duplicate_alternatives_rejected(self):
        with pytest.raises(QueryError):
            PositiveType("A|A")

    def test_malformed_label_rejected(self):
        with pytest.raises(QueryError):
            PositiveType("A|")

    def test_pattern_level_views(self):
        pattern = SeqPattern.of("A", "B|C", "D")
        assert pattern.positive_types == ("A", "B|C", "D")
        assert pattern.alternatives == (("A",), ("B", "C"), ("D",))
        assert pattern.all_positive_event_types == {"A", "B", "C", "D"}
        assert pattern.trigger_alternatives == ("D",)

    def test_position_of_event_type(self):
        pattern = SeqPattern.of("A", "B|C", "D")
        assert pattern.position_of_event_type("C") == 1
        with pytest.raises(QueryError):
            pattern.position_of_event_type("Z")

    def test_ambiguous_position_rejected(self):
        pattern = SeqPattern.of("A|B", "B|C")
        with pytest.raises(QueryError):
            pattern.position_of_event_type("B")

    def test_negated_type_cannot_be_an_alternative(self):
        with pytest.raises(QueryError):
            seq("A|B", "!B", "C").build()


class TestChoiceParsing:
    def test_bare_pipe(self):
        query = parse_query("PATTERN SEQ(A, B|C, D)")
        assert query.pattern.positive_types == ("A", "B|C", "D")

    def test_parenthesized(self):
        query = parse_query("PATTERN SEQ(A, (B|C), D)")
        assert query.pattern.positive_types == ("A", "B|C", "D")

    def test_three_way(self):
        query = parse_query("PATTERN SEQ(A|B|C, D)")
        assert query.pattern.alternatives[0] == ("A", "B", "C")

    def test_negated_choice_rejected(self):
        with pytest.raises(ParseError):
            parse_query("PATTERN SEQ(A, !B|C, D)")

    def test_relevant_types_expand(self):
        query = parse_query("PATTERN SEQ(A, B|C)")
        assert query.relevant_types == {"A", "B", "C"}


class TestChoiceSemantics:
    def test_either_type_fills_position(self):
        query = seq("A", "B|C", "D").count().build()
        engine = ASeqEngine(query)
        outputs = replay(
            engine,
            events_of(("A", 1), ("B", 2), ("C", 3), ("D", 4)),
        )
        # (a,b,d) and (a,c,d)
        assert outputs == [2]

    def test_choice_as_trigger_emits_on_both(self):
        query = seq("A", "B|C").count().within(ms=10).build()
        engine = ASeqEngine(query)
        outputs = replay(
            engine, events_of(("A", 1), ("B", 2), ("C", 3))
        )
        assert outputs == [1, 2]

    def test_choice_as_start_opens_counters(self):
        query = seq("A|B", "C").count().within(ms=10).build()
        engine = ASeqEngine(query)
        outputs = replay(
            engine, events_of(("A", 1), ("B", 2), ("C", 3))
        )
        assert outputs == [2]

    def test_value_aggregate_on_choice_position(self):
        """The aggregate reads whichever event filled the position."""
        query = seq("A", "B|C").sum("B", "w").build()
        engine = ASeqEngine(query)
        replay(
            engine,
            events_of(("A", 1), ("B", 2, {"w": 5}), ("C", 3, {"w": 2})),
        )
        assert engine.result() == 7

    def test_group_by_with_choice(self):
        query = seq("A", "B|C").group_by("ip").count().build()
        engine = ASeqEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"ip": "x"}), ("B", 2, {"ip": "x"}),
                ("C", 3, {"ip": "y"}),
            ),
        )
        assert engine.result() == {"x": 1, "y": 0}

    def test_equivalence_must_cover_all_alternatives(self):
        from repro.query.predicates import EquivalencePredicate

        query = (
            seq("A", "B|C")
            .where(EquivalencePredicate.on("id", "A", "B"))
            .build()
        )
        with pytest.raises(QueryError):
            ASeqEngine(query)

    def test_equivalence_covering_all_alternatives(self):
        from repro.query.predicates import EquivalencePredicate

        query = (
            seq("A", "B|C")
            .where(EquivalencePredicate.on("id", "A", "B", "C"))
            .count()
            .build()
        )
        engine = ASeqEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"id": 1}), ("B", 2, {"id": 2}),
                ("C", 3, {"id": 1}),
            ),
        )
        assert engine.result() == 1


class TestChoiceDifferential:
    @pytest.mark.parametrize("window_ms", [None, 10, 20])
    def test_choice_middle(self, window_ms):
        rng = random.Random(window_ms or 7)
        builder = seq("A", "B|C", "D").count()
        if window_ms:
            builder = builder.within(ms=window_ms)
        query = builder.build()
        for _ in range(40):
            events = random_events(rng, ["A", "B", "C", "D"], 25)
            assert_matches_oracle(
                query,
                [
                    ASeqEngine(query),
                    ASeqEngine(query, vectorized=True),
                    TwoStepEngine(query),
                ],
                events,
            )

    def test_choice_with_negation(self):
        rng = random.Random(17)
        query = seq("A|B", "!N", "C").count().within(ms=15).build()
        for _ in range(40):
            events = random_events(rng, ["A", "B", "C", "N"], 25)
            assert_matches_oracle(
                query,
                [ASeqEngine(query), TwoStepEngine(query)],
                events,
            )

    def test_choice_everywhere(self):
        rng = random.Random(27)
        query = seq("A|B", "C|D", "E|F").count().within(ms=15).build()
        for _ in range(40):
            events = random_events(
                rng, ["A", "B", "C", "D", "E", "F"], 25
            )
            assert_matches_oracle(
                query,
                [
                    ASeqEngine(query),
                    ASeqEngine(query, vectorized=True),
                    TwoStepEngine(query),
                ],
                events,
            )

    def test_choice_sum_aggregate(self):
        rng = random.Random(37)
        query = seq("A", "B|C").sum("B", "w").within(ms=15).build()

        def attrs(r, event_type):
            return {"w": r.randint(1, 9)}

        for _ in range(40):
            events = random_events(
                rng, ["A", "B", "C"], 20, attr_maker=attrs
            )
            assert_matches_oracle(
                query,
                [ASeqEngine(query), TwoStepEngine(query)],
                events,
            )


class TestChoiceMultiQuery:
    def test_prefix_sharing_with_choice(self):
        from repro.multi import PrefixSharedEngine

        rng = random.Random(47)
        queries = [
            seq("A|B", "C", "D").count().within(ms=12).named("q1").build(),
            seq("A|B", "C", "E").count().within(ms=12).named("q2").build(),
        ]
        from repro.baseline.oracle import BruteForceOracle

        for _ in range(25):
            events = random_events(rng, ["A", "B", "C", "D", "E"], 30)
            engine = PrefixSharedEngine(queries)
            replay(engine, events)
            for query in queries:
                expected = BruteForceOracle(query).aggregate(events)
                assert engine.result(query.name) == expected

    def test_chop_connect_with_choice(self):
        from repro.baseline.oracle import BruteForceOracle
        from repro.multi import ChopConnectEngine, chop

        rng = random.Random(57)
        query = (
            seq("A|B", "C", "D|E").count().within(ms=12).named("q").build()
        )
        for _ in range(25):
            events = random_events(rng, ["A", "B", "C", "D", "E"], 30)
            engine = ChopConnectEngine([chop(query, 1)])
            replay(engine, events)
            expected = BruteForceOracle(query).aggregate(events)
            assert engine.result("q") == expected
