"""Supervisor: dead-letter queue, quarantine, overload, restarts."""

import pytest

from repro.engine.sinks import CollectSink
from repro.errors import EngineError, OverloadError
from repro.events import Event
from repro.obs.registry import MetricsRegistry
from repro.query import seq
from repro.resilience import (
    Checkpointer,
    DeadLetter,
    DeadLetterQueue,
    EventJournal,
    FaultPlan,
    InjectedFault,
    SupervisedStreamEngine,
)
from repro.resilience.faults import FaultyExecutor

from repro.core.executor import ASeqEngine


def ab_query(name="ab"):
    return seq("A", "B").count().within(ms=10).named(name).build()


def stream(n=60):
    return [Event("AB"[i % 2], i + 1) for i in range(n)]


def poison_engine(registry=None, **kwargs):
    """Engine with one healthy and one always-raising registration."""
    engine = SupervisedStreamEngine(registry=registry, **kwargs)
    healthy_sink = CollectSink()
    engine.register(ab_query("healthy"), healthy_sink)
    poison = FaultyExecutor(ASeqEngine(ab_query("poison")), poison=True)
    engine.register_executor("poison", poison)
    return engine, healthy_sink


# ----- acceptance: poison query does not stop the healthy one ---------------


def test_poison_registration_does_not_stop_healthy_delivery():
    registry = MetricsRegistry()
    engine, healthy_sink = poison_engine(registry=registry)
    events = stream(60)

    oracle = SupervisedStreamEngine()
    oracle_sink = CollectSink()
    oracle.register(ab_query("healthy"), oracle_sink)
    for event in events:
        oracle.process(event)
        engine.process(event)

    assert healthy_sink.values() == oracle_sink.values()
    assert engine.result("healthy") == oracle.result("healthy")
    assert engine.quarantined() == ["poison"]
    assert registry.value("quarantined_queries") == 1
    assert registry.value("dead_letters_total") == 5  # quarantine_after
    assert registry.value(
        "executor_failures_total", query="poison"
    ) == 5


def test_dead_letters_carry_event_error_and_name():
    engine, _ = poison_engine(quarantine_after=3)
    events = stream(10)
    for event in events:
        engine.process(event)
    letters = engine.dlq.drain()
    assert len(letters) == 3
    assert all(isinstance(letter, DeadLetter) for letter in letters)
    assert [letter.event for letter in letters] == events[:3]
    assert all(letter.query_name == "poison" for letter in letters)
    assert all(
        isinstance(letter.error, InjectedFault) for letter in letters
    )


def test_dead_letter_journal_seq_recorded(tmp_path):
    engine, _ = poison_engine(quarantine_after=2)
    engine.attach_journal(EventJournal(tmp_path))
    for event in stream(6):
        engine.process(event)
    letters = list(engine.dlq)
    assert [letter.journal_seq for letter in letters] == [0, 1]


def test_transient_failures_do_not_quarantine():
    """Failures must be *consecutive* to quarantine."""
    engine = SupervisedStreamEngine(quarantine_after=3)
    # fails on every 3rd offered event: never 3 in a row
    flaky = FaultyExecutor(
        ASeqEngine(ab_query("flaky")), fail_at=range(0, 60, 3)
    )
    engine.register_executor("flaky", flaky)
    for event in stream(60):
        engine.process(event)
    assert engine.quarantined() == []
    assert len(engine.dlq) == 20
    assert engine.health_of("flaky")["failures_total"] == 20


def test_quarantined_registration_is_skipped_entirely():
    engine, _ = poison_engine(quarantine_after=4)
    poison = engine._registrations["poison"].executor
    for event in stream(50):
        engine.process(event)
    assert poison.offered == 4  # nothing offered after quarantine
    assert len(engine.dlq) == 4


def test_manual_restart_lifts_quarantine():
    registry = MetricsRegistry()
    engine, _ = poison_engine(registry=registry, quarantine_after=2)
    for event in stream(10):
        engine.process(event)
    assert engine.quarantined() == ["poison"]
    engine.restart("poison")
    assert engine.quarantined() == []
    assert registry.value("quarantined_queries") == 0
    # poison still raises, so it re-quarantines after 2 more failures
    for event in stream(10):
        engine.process(event)
    assert engine.quarantined() == ["poison"]
    assert registry.value("quarantines_total") == 2


def test_restart_from_checkpoint_restores_state(tmp_path):
    engine = SupervisedStreamEngine(quarantine_after=2)
    journal = EventJournal(tmp_path)
    engine.attach_journal(journal)
    checkpointer = Checkpointer(
        tmp_path, engine, journal=journal, every_events=10
    )
    engine.attach_checkpointer(checkpointer)
    engine.register(ab_query("ab"))
    events = stream(20)
    for event in events:
        engine.process(event)
    before = engine.result("ab")
    # wreck the live executor state, then restore from the checkpoint
    engine._registrations["ab"].executor = FaultyExecutor(
        ASeqEngine(ab_query("ab")), poison=True
    )
    engine.process(Event("A", 100))
    engine.process(Event("A", 101))
    assert engine.quarantined() == ["ab"]
    engine.restart_from_checkpoint("ab")
    assert engine.quarantined() == []
    assert engine.result("ab") == before  # checkpoint was at event 20


def test_restart_from_checkpoint_without_checkpointer_raises():
    engine, _ = poison_engine()
    with pytest.raises(EngineError):
        engine.restart_from_checkpoint("poison")


def test_restart_unknown_query_raises():
    engine = SupervisedStreamEngine()
    with pytest.raises(EngineError):
        engine.restart("nope")
    with pytest.raises(EngineError):
        engine.health_of("nope")


def test_auto_restart_backoff(tmp_path):
    """A quarantined query is retried after the backoff, which doubles."""
    engine = SupervisedStreamEngine(
        quarantine_after=2, auto_restart_events=10
    )
    fail_first_6 = FaultyExecutor(
        ASeqEngine(ab_query("flaky")), fail_at=range(6)
    )
    engine.register_executor("flaky", fail_first_6)
    for event in stream(120):
        engine.process(event)
    # offered 0,1 fail -> quarantined, retry after 10 events; offered
    # 2,3 fail -> quarantined, retry after 20; offered 4,5 fail ->
    # quarantined, retry after 40; the injected failures are then
    # exhausted and the registration stays healthy
    assert engine.quarantined() == []
    assert fail_first_6.failures == 6
    health = engine.health_of("flaky")
    assert health["failures_total"] == 6
    assert health["quarantined"] is False


# ----- DLQ overload policies -------------------------------------------------


def letters(n):
    return [
        DeadLetter("q", Event("A", i), InjectedFault("x")) for i in range(n)
    ]


def test_dlq_shed_oldest():
    registry = MetricsRegistry()
    dlq = DeadLetterQueue(
        capacity=5, policy="shed_oldest", registry=registry
    )
    for letter in letters(8):
        dlq.push(letter)
    assert len(dlq) == 5
    assert dlq.shed == 3
    assert dlq.peek().event.ts == 3  # oldest three were shed
    assert registry.value("dlq_depth") == 5
    assert registry.value("dlq_shed_total") == 3


def test_dlq_raise_policy():
    dlq = DeadLetterQueue(capacity=3, policy="raise")
    for letter in letters(3):
        dlq.push(letter)
    with pytest.raises(OverloadError):
        dlq.push(letters(1)[0])


def test_dlq_block_policy_drains_via_hook():
    drained = []
    dlq = DeadLetterQueue(
        capacity=3,
        policy="block",
        on_full=lambda queue: drained.extend(queue.drain()),
    )
    for letter in letters(10):
        dlq.push(letter)
    assert len(drained) + len(dlq) == 10


def test_dlq_block_policy_without_hook_raises():
    dlq = DeadLetterQueue(capacity=2, policy="block")
    for letter in letters(2):
        dlq.push(letter)
    with pytest.raises(OverloadError):
        dlq.push(letters(1)[0])


def test_dlq_rejects_bad_parameters():
    with pytest.raises(ValueError):
        DeadLetterQueue(capacity=0)
    with pytest.raises(ValueError):
        DeadLetterQueue(policy="panic")


def test_engine_overload_policy_flows_through():
    engine, _ = poison_engine(
        quarantine_after=100, dlq_capacity=4, overload_policy="raise"
    )
    events = stream(20)
    with pytest.raises(OverloadError):
        for event in events:
            engine.process(event)


# ----- journal backlog bound -------------------------------------------------


def test_journal_backlog_bound_forces_fsync(tmp_path):
    registry = MetricsRegistry()
    engine = SupervisedStreamEngine(
        registry=registry, max_journal_backlog_bytes=200
    )
    engine.attach_journal(
        EventJournal(tmp_path, fsync="never", registry=registry)
    )
    engine.register(ab_query())
    for event in stream(40):
        engine.process(event)
    assert registry.value("journal_fsyncs_total") > 0
    assert engine.journal.backlog_bytes <= 200 + 64


# ----- seeded plan determinism ----------------------------------------------


def test_fault_plan_is_deterministic_per_seed():
    plan_a, plan_b = FaultPlan(seed=42), FaultPlan(seed=42)
    assert plan_a.crash_point(1000) == plan_b.crash_point(1000)
    assert plan_a.failure_ordinals(100, 5) == plan_b.failure_ordinals(100, 5)
    assert FaultPlan(seed=1).crash_point(1000) != FaultPlan(
        seed=2
    ).crash_point(1000)
