"""The ECube-style shared-construction comparator."""

import random

import pytest

from conftest import random_events, replay
from repro.baseline.oracle import BruteForceOracle
from repro.errors import PlanError
from repro.events import Event
from repro.multi.ecube import ECubeEngine, _SubMatchStore
from repro.query import seq


def q(name, *pattern, win=15):
    return seq(*pattern).count().within(ms=win).named(name).build()


class TestSubMatchStore:
    def test_insertion_counter_survives_purge(self):
        store = _SubMatchStore()
        store.add(1, 2)
        store.add(3, 4)
        store.purge(now=7, window_ms=5)  # first (start 1) dies at 6
        assert len(store) == 1
        assert store.total_inserted == 2

    def test_below_respects_rip_and_purge(self):
        store = _SubMatchStore()
        store.add(1, 2)
        store.add(3, 4)
        store.add(5, 6)
        assert store.below(2) == [(1, 2), (3, 4)]
        store.purge(now=7, window_ms=5)
        assert store.below(2) == [(3, 4)]
        assert store.below(0) == ()


class TestECubeEngine:
    def test_shared_substring_in_middle(self):
        engine = ECubeEngine(
            [q("q1", "A", "B", "C", "D")], shared_types=("B", "C")
        )
        outputs = replay(
            engine, [Event(t, ts) for ts, t in enumerate("ABCD", start=1)]
        )
        assert outputs == [{"q1": 1}]

    def test_shared_substring_at_tail(self):
        engine = ECubeEngine(
            [q("q1", "A", "B", "C")], shared_types=("B", "C")
        )
        outputs = replay(
            engine, [Event(t, ts) for ts, t in enumerate("ABC", start=1)]
        )
        assert outputs == [{"q1": 1}]

    def test_shared_substring_at_head(self):
        engine = ECubeEngine(
            [q("q1", "B", "C", "D")], shared_types=("B", "C")
        )
        outputs = replay(
            engine, [Event(t, ts) for ts, t in enumerate("BCD", start=1)]
        )
        assert outputs == [{"q1": 1}]

    def test_whole_pattern_shared(self):
        engine = ECubeEngine(
            [q("q1", "B", "C")], shared_types=("B", "C")
        )
        replay(engine, [Event("B", 1), Event("C", 2), Event("C", 3)])
        assert engine.result("q1") == 2

    def test_query_without_substring_runs_private(self):
        engine = ECubeEngine(
            [q("q1", "A", "B", "C"), q("q2", "X", "Y")],
            shared_types=("B", "C"),
        )
        replay(
            engine,
            [Event("X", 1), Event("Y", 2), Event("A", 3),
             Event("B", 4), Event("C", 5)],
        )
        assert engine.result() == {"q1": 1, "q2": 1}

    def test_default_substring_from_planner(self):
        engine = ECubeEngine([q("q1", "A", "B", "C"), q("q2", "X", "B", "C")])
        assert engine.shared_types == ("B", "C")

    def test_no_common_substring_rejected(self):
        with pytest.raises(PlanError):
            ECubeEngine([q("q1", "A", "B"), q("q2", "X", "Y")])

    def test_window_required(self):
        query = seq("A", "B").count().named("q").build()
        with pytest.raises(PlanError):
            ECubeEngine([query], shared_types=("A", "B"))

    def test_negation_rejected(self):
        query = (
            seq("A", "!N", "B").count().within(ms=5).named("q").build()
        )
        with pytest.raises(PlanError):
            ECubeEngine([query], shared_types=("A", "B"))

    def test_memory_accounting_nonzero(self):
        engine = ECubeEngine([q("q1", "A", "B", "C")], shared_types=("B", "C"))
        replay(engine, [Event("A", 1), Event("B", 2)])
        assert engine.current_objects() > 0


class TestECubeDifferential:
    @pytest.mark.parametrize("position", ["head", "middle", "tail"])
    def test_matches_oracle_any_substring_position(self, position):
        rng = random.Random(hash(position) & 0xFFFF)
        patterns = {
            "head": ("B", "C", "D"),
            "middle": ("A", "B", "C", "D"),
            "tail": ("A", "B", "C"),
        }
        query = q("q", *patterns[position])
        for _ in range(25):
            events = random_events(rng, ["A", "B", "C", "D"], 30)
            engine = ECubeEngine([query], shared_types=("B", "C"))
            replay(engine, events)
            expected = BruteForceOracle(query).aggregate(events)
            assert engine.result("q") == expected

    def test_three_query_workload_matches_oracle(self):
        rng = random.Random(808)
        queries = [
            q("q1", "A", "B", "C", "D"),
            q("q2", "X", "B", "C"),
            q("q3", "B", "C", "Y"),
        ]
        for _ in range(25):
            events = random_events(
                rng, ["A", "B", "C", "D", "X", "Y"], rng.randint(10, 35)
            )
            engine = ECubeEngine(queries, shared_types=("B", "C"))
            replay(engine, events)
            for query in queries:
                expected = BruteForceOracle(query).aggregate(events)
                assert engine.result(query.name) == expected, query.name
