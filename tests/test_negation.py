"""Negation: the Recounting Rule (paper Sec. 3.3, Lemmas 5/6)."""

from conftest import assert_matches_oracle, events_of, random_events, replay
from repro.baseline.twostep import TwoStepEngine
from repro.core.dpc import DPCEngine
from repro.core.executor import ASeqEngine
from repro.core.sem import SemEngine
from repro.query import seq


class TestRecountingRule:
    def test_paper_example_4_figure_7(self):
        """(A, B, !C, D): the (A,B) count is cleared when c1 arrives;
        output at d1 is 2 — <a1, b1, d1> is excluded."""
        engine = SemEngine(seq("A", "B", "!C", "D").within(ms=7).build())
        outputs = replay(
            engine,
            events_of(
                ("A", 1),  # a1
                ("B", 2),  # b1
                ("C", 3),  # c1 resets (A,B)
                ("A", 4),  # a2
                ("B", 5),  # b2 -> (A,B) counts: a1:1, a2:1
                ("D", 6),  # d1 -> 2
            ),
        )
        assert outputs == [2]

    def test_negative_event_before_any_positive(self):
        engine = DPCEngine(seq("A", "!C", "B").build())
        outputs = replay(
            engine, events_of(("C", 1), ("A", 2), ("B", 3))
        )
        assert outputs == [1]

    def test_negation_adjacent_to_start(self):
        """(A, !N, B): N kills every active A permanently."""
        engine = SemEngine(seq("A", "!N", "B").within(ms=100).build())
        outputs = replay(
            engine,
            events_of(("A", 1), ("N", 2), ("B", 3), ("A", 4), ("B", 5)),
        )
        # b@3: nothing (a1 invalidated). b@5: (a4, b5) only.
        assert outputs == [0, 1]

    def test_negative_between_guarded_neighbours_only(self):
        """An N after the guarded pair does not invalidate it (Lemma 5)."""
        engine = DPCEngine(seq("A", "!N", "B", "C").build())
        outputs = replay(
            engine,
            events_of(("A", 1), ("B", 2), ("N", 3), ("C", 4)),
        )
        # N arrives after b2, so (a1, b2) survived; (a1,b2,c4) counts.
        assert outputs == [1]

    def test_longer_prefixes_unaffected(self):
        """Prefixes longer than the LPPS keep their counts (Lemma 5)."""
        engine = DPCEngine(seq("A", "B", "!C", "D").build())
        replay(engine, events_of(("A", 1), ("B", 2), ("D", 3)))
        assert engine.result() == 1
        engine.process(events_of(("C", 4))[0])
        # The completed (A,B,D) count must survive the reset.
        assert engine.result() == 1

    def test_shorter_prefixes_unaffected(self):
        engine = DPCEngine(seq("A", "B", "!C", "D").build())
        replay(
            engine,
            events_of(
                ("A", 1), ("B", 2), ("C", 3),  # resets (A,B)
                ("B", 4),                       # (A) still alive: (A,B)=1
                ("D", 5),
            ),
        )
        assert engine.result() == 1

    def test_multiple_negations(self):
        engine = DPCEngine(seq("A", "!N", "B", "!M", "C").build())
        outputs = replay(
            engine,
            events_of(
                ("A", 1), ("B", 2), ("M", 3), ("C", 4),   # M kills (A,B)
                ("B", 5), ("C", 6),                        # (a1,b5,c6) ok
            ),
        )
        assert outputs == [0, 1]

    def test_negation_constant_time(self):
        """A negative arrival touches exactly one slot: state elsewhere
        is untouched (the paper's constant-time claim)."""
        engine = DPCEngine(seq("A", "B", "!C", "D").build())
        replay(engine, events_of(("A", 1), ("B", 2), ("D", 3)))
        before = engine.counter.snapshot_counts()
        engine.process(events_of(("C", 4))[0])
        after = engine.counter.snapshot_counts()
        assert after == (before[0], 0, before[2])


class TestNegationDifferential:
    def test_random_streams_match_oracle(self, rng):
        query_windowed = seq("A", "!N", "B", "C").count().within(ms=12).build()
        query_open = seq("A", "B", "!N", "C").count().build()
        for _ in range(60):
            events = random_events(rng, ["A", "B", "C", "N"], 25)
            assert_matches_oracle(
                query_windowed,
                [ASeqEngine(query_windowed), TwoStepEngine(query_windowed)],
                events,
            )
            assert_matches_oracle(
                query_open,
                [ASeqEngine(query_open), TwoStepEngine(query_open)],
                events,
            )
