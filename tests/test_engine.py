"""StreamEngine wiring: registration, dispatch, sinks."""

import pytest

from conftest import events_of
from repro.engine import (
    CallbackSink,
    CollectSink,
    LatestSink,
    Output,
    StreamEngine,
    ThresholdAlertSink,
)
from repro.errors import EngineError
from repro.query import seq


class TestStreamEngine:
    def test_register_and_run(self):
        engine = StreamEngine()
        sink = CollectSink()
        engine.register(
            seq("A", "B").count().within(ms=10).named("ab").build(), sink
        )
        processed = engine.run(events_of(("A", 1), ("B", 2)))
        assert processed == 2
        assert sink.values() == [1]

    def test_duplicate_name_rejected(self):
        engine = StreamEngine()
        engine.register(seq("A", "B").named("q").build())
        with pytest.raises(EngineError):
            engine.register(seq("A", "C").named("q").build())

    def test_auto_names(self):
        engine = StreamEngine()
        engine.register(seq("A", "B").build())
        engine.register(seq("A", "C").build())
        assert len(engine.query_names) == 2

    def test_deregister(self):
        engine = StreamEngine()
        engine.register(seq("A", "B").named("q").build())
        engine.deregister("q")
        assert engine.query_names == []
        with pytest.raises(EngineError):
            engine.deregister("q")

    def test_results_across_queries(self):
        engine = StreamEngine()
        engine.register(seq("A", "B").named("ab").build())
        engine.register(seq("A", "C").named("ac").build())
        engine.run(events_of(("A", 1), ("B", 2), ("C", 3)))
        assert engine.results() == {"ab": 1, "ac": 1}

    def test_unknown_result_name(self):
        with pytest.raises(EngineError):
            StreamEngine().result("nope")

    def test_metrics_accumulate(self):
        engine = StreamEngine()
        engine.register(seq("A", "B").named("q").build())
        engine.run(events_of(("A", 1), ("B", 2), ("B", 3)))
        assert engine.metrics.events == 3
        assert engine.metrics.outputs == 2
        assert engine.metrics.elapsed_s > 0

    def test_register_external_executor(self):
        from repro.multi.prefix_sharing import PrefixSharedEngine

        shared = PrefixSharedEngine(
            [
                seq("A", "B").count().within(ms=9).named("q1").build(),
                seq("A", "C").count().within(ms=9).named("q2").build(),
            ]
        )
        engine = StreamEngine()
        sink = CollectSink()
        engine.register_executor("workload", shared, sink)
        engine.run(events_of(("A", 1), ("B", 2)))
        assert sink.values() == [{"q1": 1}]

    def test_vectorized_engine_flag(self):
        from repro.core.vectorized import VectorizedSemEngine

        engine = StreamEngine(vectorized=True)
        executor = engine.register(
            seq("A", "B").within(ms=5).named("q").build()
        )
        assert isinstance(executor.runtime, VectorizedSemEngine)


class TestSinks:
    def test_collect_sink(self):
        sink = CollectSink()
        sink.emit(Output("q", 1, 5))
        assert sink.last().value == 5
        assert len(sink) == 1

    def test_latest_sink(self):
        sink = LatestSink()
        sink.emit(Output("q", 1, 5))
        sink.emit(Output("q", 2, 7))
        assert sink.value_of("q") == 7
        assert sink.value_of("other", default=-1) == -1

    def test_callback_sink(self):
        seen = []
        sink = CallbackSink(seen.append)
        sink.emit(Output("q", 1, 5))
        assert seen[0].value == 5

    def test_threshold_alert_edge_triggered(self):
        alerts = []
        sink = ThresholdAlertSink(3, alerts.append)
        for ts, value in enumerate([1, 3, 4, 2, 5]):
            sink.emit(Output("q", ts, value))
        # Fires at 3 (first crossing) and at 5 (re-crossing after the dip),
        # but not at 4 (still high).
        assert [a.ts for a in alerts] == [1, 4]

    def test_threshold_alert_group_by_values(self):
        alerts = []
        sink = ThresholdAlertSink(2, alerts.append)
        sink.emit(Output("q", 1, {"x": 1, "y": 2}))
        assert len(alerts) == 1
        assert alerts[0].value == {"y": 2}

    def test_threshold_below_direction(self):
        alerts = []
        sink = ThresholdAlertSink(2, alerts.append, direction="below")
        sink.emit(Output("q", 1, 5))
        sink.emit(Output("q", 2, 1))
        assert [a.ts for a in alerts] == [2]

    def test_threshold_bad_direction(self):
        with pytest.raises(ValueError):
            ThresholdAlertSink(1, lambda o: None, direction="sideways")

    def test_threshold_ignores_none(self):
        alerts = []
        sink = ThresholdAlertSink(1, alerts.append)
        sink.emit(Output("q", 1, None))
        assert alerts == []
