"""PreTree layout and counter instances (paper Sec. 4.1, Fig. 9)."""

import pytest

from repro.errors import PlanError
from repro.multi.pretree import PreTree, PreTreeLayout, shared_window_ms
from repro.query import seq


def q(name, *pattern, win=100):
    return seq(*pattern).count().within(ms=win).named(name).build()


class TestLayout:
    def test_paper_figure_9_sharing(self):
        """Q1~Q4 of Example 7 share (VK, BK) and Q1's full path."""
        queries = [
            q("Q1", "VK", "BK", "VC", "BC"),
            q("Q2", "VK", "BK", "VKF"),
            q("Q3", "VK", "BK", "VC", "BC", "VeB", "BeB"),
            q("Q4", "VK", "BK", "VC", "BC", "VL", "BL"),
        ]
        layout = PreTreeLayout(queries)
        # Shared nodes: VK, BK, VC, BC + branch tails VKF, VeB, BeB, VL, BL.
        assert layout.size == 9
        assert set(layout.terminal_of) == {"Q1", "Q2", "Q3", "Q4"}
        # Q1 terminates at the shared BC node on Q3/Q4's path.
        bc_node = layout.terminal_of["Q1"]
        assert str(layout.nodes[bc_node].element) == "BC"

    def test_negation_gets_guard_node(self):
        queries = [q("q1", "A", "B", "C"), q("q2", "A", "B", "!N", "D")]
        layout = PreTreeLayout(queries)
        assert "N" in layout.guard_nodes
        # Nodes: A, B, C, guard(!N), D.
        assert layout.size == 5

    def test_distinct_starts_rejected(self):
        with pytest.raises(PlanError):
            PreTreeLayout([q("q1", "A", "B"), q("q2", "B", "A")])

    def test_unnamed_query_rejected(self):
        query = seq("A", "B").count().within(ms=100).build()
        with pytest.raises(PlanError):
            PreTreeLayout([query])

    def test_duplicate_names_rejected(self):
        with pytest.raises(PlanError):
            PreTreeLayout([q("q1", "A", "B"), q("q1", "A", "C")])

    def test_non_count_rejected(self):
        query = (
            seq("A", "B").sum("B", "w").within(ms=100).named("q").build()
        )
        with pytest.raises(PlanError):
            PreTreeLayout([query])

    def test_predicates_rejected(self):
        query = (
            seq("A", "B")
            .where_local("A", "x", ">", 1)
            .count()
            .within(ms=100)
            .named("q")
            .build()
        )
        with pytest.raises(PlanError):
            PreTreeLayout([query])

    def test_render_mentions_queries(self):
        layout = PreTreeLayout([q("q1", "A", "B"), q("q2", "A", "C")])
        rendered = layout.render()
        assert "q1" in rendered and "q2" in rendered

    def test_update_nodes_deepest_first(self):
        layout = PreTreeLayout([q("q1", "A", "B", "A")])
        depths = [layout.nodes[i].depth for i in layout.update_nodes["A"]]
        assert depths == sorted(depths, reverse=True)

    def test_path_of(self):
        layout = PreTreeLayout([q("q1", "A", "!N", "B")])
        assert [str(e) for e in layout.path_of("q1")] == ["A", "!N", "B"]


class TestPreTreeCounts:
    def test_shared_prefix_counts_diverge_after_branch(self):
        layout = PreTreeLayout([q("q1", "A", "B", "C"), q("q2", "A", "B", "D")])
        tree = PreTree(layout, implicit_start=True)
        for name in ("B", "C", "D", "D"):
            tree.update(name)
        assert tree.result_of("q1") == 1
        assert tree.result_of("q2") == 2

    def test_guard_shadow_protects_sibling(self):
        """The q2 guard reset must not disturb q1's shared (A,B) count."""
        layout = PreTreeLayout(
            [q("q1", "A", "B", "C"), q("q2", "A", "B", "!N", "D")]
        )
        tree = PreTree(layout, implicit_start=True)
        tree.update("B")
        tree.reset_guards("N")
        tree.update("C")   # q1 path still sees (A,B) = 1
        tree.update("D")   # q2 path sees the wiped guard
        assert tree.result_of("q1") == 1
        assert tree.result_of("q2") == 0

    def test_guard_refills_after_reset(self):
        layout = PreTreeLayout([q("q2", "A", "B", "!N", "D")])
        tree = PreTree(layout, implicit_start=True)
        tree.update("B")
        tree.reset_guards("N")
        tree.update("B")   # a fresh (A,B) match re-arms the guard
        tree.update("D")
        assert tree.result_of("q2") == 1

    def test_guard_on_start_position(self):
        layout = PreTreeLayout([q("q", "A", "!N", "B")])
        tree = PreTree(layout, implicit_start=True)
        tree.reset_guards("N")
        tree.update("B")
        assert tree.result_of("q") == 0

    def test_global_mode_counts_starts(self):
        query = seq("A", "B").count().named("q").build()
        layout = PreTreeLayout([query])
        tree = PreTree(layout)  # global: START arrivals feed depth-1
        tree.update("A")
        tree.update("A")
        tree.update("B")
        assert tree.result_of("q") == 2


class TestSharedWindow:
    def test_common_window_ok(self):
        assert shared_window_ms([q("a", "A", "B"), q("b", "A", "C")]) == 100

    def test_mixed_windows_rejected(self):
        with pytest.raises(PlanError):
            shared_window_ms(
                [q("a", "A", "B", win=100), q("b", "A", "C", win=200)]
            )
