"""Type-indexed routing: the StreamEngine fast path.

Routing must be invisible semantically — identical results and sink
outputs with ``routed=True`` — while provably skipping executors whose
patterns cannot react to an arrival.
"""

import random

import pytest

from conftest import random_events
from repro.engine.engine import StreamEngine, relevant_types_of
from repro.engine.sinks import CollectSink
from repro.errors import EngineError
from repro.events.event import Event
from repro.query import parse_query


QUERIES = [
    ("ab", "PATTERN SEQ(A, B) AGG COUNT WITHIN 20 ms"),
    ("cd", "PATTERN SEQ(C, D) AGG COUNT WITHIN 20 ms"),
    ("neg", "PATTERN SEQ(A, !N, D) AGG COUNT WITHIN 30 ms"),
]


def build(routed):
    engine = StreamEngine(routed=routed)
    sinks = {}
    for name, text in QUERIES:
        sink = CollectSink()
        engine.register(parse_query(text), sink, name=name)
        sinks[name] = sink
    return engine, sinks


def test_relevant_types_come_from_the_layout():
    engine = StreamEngine()
    executor = engine.register(
        parse_query("PATTERN SEQ(A, !N, D) AGG COUNT WITHIN 30 ms")
    )
    assert relevant_types_of(executor) == frozenset({"A", "N", "D"})


def test_relevant_types_none_for_layoutless_executors():
    class Opaque:
        def process(self, event):
            return None

        def result(self):
            return 0

    assert relevant_types_of(Opaque()) is None


def test_routing_index_maps_types_to_reacting_queries():
    engine, _ = build(routed=True)
    routes = engine.routes()
    assert routes["A"] == ["ab", "neg"]
    assert routes["B"] == ["ab"]
    assert routes["C"] == ["cd"]
    assert routes["D"] == ["cd", "neg"]
    assert routes["N"] == ["neg"]


def test_routed_results_and_sinks_match_reference():
    rng = random.Random(7)
    events = random_events(rng, ["A", "B", "C", "D", "N", "Z"], 600)
    reference, ref_sinks = build(routed=False)
    routed, fast_sinks = build(routed=True)
    reference.run(events)
    routed.run(events)
    assert reference.results() == routed.results()
    for name in ref_sinks:
        assert ref_sinks[name].outputs == fast_sinks[name].outputs


def test_irrelevant_types_skip_every_executor():
    engine, _ = build(routed=True)
    engine.process(Event("Z", 1))  # no pattern mentions Z
    for name, _ in QUERIES:
        assert engine.executor_of(name).events_seen == 0


def test_routed_executors_still_see_window_slides_on_result():
    # A and B arrive, then only irrelevant Z events move time past the
    # window; the routed engine must still expire the ab counter before
    # answering result().
    engine, _ = build(routed=True)
    reference, _ = build(routed=False)
    events = [Event("A", 1), Event("B", 2), Event("Z", 500)]
    for event in events:
        engine.process(event)
        reference.process(event)
    assert engine.result("ab") == reference.result("ab")
    assert engine.results() == reference.results()


def test_layoutless_executor_lands_in_catch_all_and_sees_everything():
    class Probe:
        def __init__(self):
            self.seen = []

        def process(self, event):
            self.seen.append(event.event_type)
            return None

        def result(self):
            return len(self.seen)

    engine, _ = build(routed=True)
    probe = Probe()
    engine.register_executor("probe", probe)
    for event_type in ["A", "Z", "D"]:
        engine.process(Event(event_type, 1))
    assert probe.seen == ["A", "Z", "D"]
    assert "probe" in engine.routes()["A"]


def test_deregister_rebuilds_the_index():
    engine, _ = build(routed=True)
    engine.deregister("ab")
    routes = engine.routes()
    assert routes["A"] == ["neg"]
    assert "B" not in routes


def test_routed_flag_and_inspect_surface():
    engine, _ = build(routed=True)
    assert engine.routed
    state = engine.inspect()
    assert state["routed"] is True
    assert state["batch_size"] == 0


def test_negative_batch_size_rejected():
    with pytest.raises(ValueError):
        StreamEngine(batch_size=-1)


def test_obs_off_fast_path_counts_outputs_and_sink_errors():
    class BadSink(CollectSink):
        def emit(self, output):
            raise RuntimeError("boom")

    engine = StreamEngine(routed=True)
    engine.register(
        parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 20 ms"),
        BadSink(),
        name="ab",
    )
    engine.process(Event("A", 1))
    engine.process(Event("B", 2))
    assert engine.metrics.outputs == 1
    assert engine.metrics.sink_errors == 1


def test_duplicate_name_still_rejected_when_routed():
    engine, _ = build(routed=True)
    with pytest.raises(EngineError):
        engine.register(
            parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 20 ms"),
            name="ab",
        )
