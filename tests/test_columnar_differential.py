"""Differential pinning: the columnar lane vs the reference engine.

Every consumer of :class:`EventBatch` must be bit-identical to the
per-event reference :class:`StreamEngine` (itself pinned to the
brute-force oracle in ``test_differential.py``):

* the zero-object kernel (``process_event_batch`` over COUNT / SUM /
  AVG / MAX / MIN with mask-compiled predicates), across seeds and
  batch sizes including 1 and larger-than-stream;
* the batch→Event fallback materializer (negation, GROUP BY / HPC,
  equivalence chains, tracing) — also pinned wholesale by the CI leg
  that sets ``REPRO_FORCE_COLUMNAR=1`` over the engine suites;
* the sharded flat-buffer wire, over both pipe and TCP transports;
* edge semantics: window expiry straddling a batch edge, out-of-order
  timestamps rejected exactly like the per-event path (intra- and
  cross-batch), ``PredicateError`` surfacing, empty and size-1 batches.

Attribute values are small integers so float addition order cannot mask
a divergence — "equal" means bit-identical.
"""

import random

import pytest

from conftest import random_events
from repro.engine.engine import StreamEngine
from repro.engine.sharded import ShardedStreamEngine
from repro.errors import OutOfOrderError, PredicateError
from repro.events.batch import EventBatch, batches_from_events
from repro.events.event import Event
from repro.query import parse_query
from repro.resilience.faults import fault_seed

SEEDS = [fault_seed(0) * 101 + offset for offset in (0, 1, 2)]
BATCH_SIZES = [1, 7, 256, 4096]

KERNEL_QUERIES = [
    "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms",
    "PATTERN SEQ(A, B, C) AGG COUNT WITHIN 90 ms",
    "PATTERN SEQ(A, C) AGG SUM(C.v) WITHIN 60 ms",
    "PATTERN SEQ(A, B, C) AGG AVG(C.v) WITHIN 80 ms",
    "PATTERN SEQ(B, C) AGG MAX(C.v) WITHIN 50 ms",
    "PATTERN SEQ(A, C) AGG MIN(C.v) WITHIN 50 ms",
]

PREDICATE_QUERIES = [
    "PATTERN SEQ(A, B) AGG COUNT WITHIN 60 ms WHERE B.v > 4",
    "PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 60 ms WHERE A.v <= 3",
    "PATTERN SEQ(A, B) AGG COUNT WITHIN 60 ms WHERE A.v != A.w",
    "PATTERN SEQ(A, B, C) AGG AVG(C.v) WITHIN 90 ms "
    "WHERE A.v < 5 AND C.v >= 2",
]

FALLBACK_QUERIES = [
    "PATTERN SEQ(A, !N, B) AGG COUNT WITHIN 70 ms",
    "PATTERN SEQ(A, B) AGG COUNT WITHIN 50 ms GROUP BY g",
    "PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 60 ms WHERE A.g = B.g",
    "PATTERN SEQ(A, B) AGG COUNT",  # unwindowed: DPC runtime
]


def flat_stream(seed, count=1500):
    rng = random.Random(seed)
    return random_events(
        rng,
        ["A", "B", "C", "N", "Z"],
        count,
        attr_maker=lambda r, t: {
            "v": r.randint(1, 9), "w": r.randint(1, 9),
            "g": r.randint(0, 5),
        },
    )


def reference_results(queries, events):
    engine = StreamEngine()
    for index, text in enumerate(queries):
        engine.register(parse_query(text), name=f"q{index}")
    for event in events:
        engine.process(event)
    return engine.results()


def columnar_results(queries, events, batch_size):
    engine = StreamEngine(routed=True, vectorized=True)
    for index, text in enumerate(queries):
        engine.register(parse_query(text), name=f"q{index}")
    engine.run(batches_from_events(events, batch_size=batch_size))
    return engine.results()


def kernel_engaged(engine, name):
    registration = engine._registrations[name]
    return (
        registration.columnar is not None
        and registration.columnar[1] is not None
    )


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_kernel_queries_match_reference(seed, batch_size):
    events = flat_stream(seed)
    expected = reference_results(KERNEL_QUERIES, events)
    assert columnar_results(KERNEL_QUERIES, events, batch_size) == expected


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("batch_size", [7, 256])
def test_predicate_masks_match_reference(seed, batch_size):
    events = flat_stream(seed)
    expected = reference_results(PREDICATE_QUERIES, events)
    assert (
        columnar_results(PREDICATE_QUERIES, events, batch_size) == expected
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_fallback_queries_match_reference(seed):
    events = flat_stream(seed)
    expected = reference_results(FALLBACK_QUERIES, events)
    assert columnar_results(FALLBACK_QUERIES, events, 113) == expected


def test_kernel_actually_engages_and_fallback_actually_falls_back():
    # Guard against the differential silently passing because every
    # registration fell back: pin which lane each query takes.
    events = flat_stream(SEEDS[0], count=300)
    engine = StreamEngine(routed=True, vectorized=True)
    engine.register(parse_query(KERNEL_QUERIES[0]), name="kernel")
    engine.register(parse_query(FALLBACK_QUERIES[0]), name="fallback")
    engine.run(batches_from_events(events, batch_size=64))
    assert kernel_engaged(engine, "kernel")
    assert not kernel_engaged(engine, "fallback")


class TestBatchBoundaryEdges:
    def test_window_expiry_straddles_batch_edge(self):
        # A run opened in batch k must expire in batch k+1 exactly at
        # window end: events 1..4 in one batch, the trigger after the
        # boundary at ts 45 (A@1 expired, A@10 alive) and ts 52
        # (A@10 expired too).
        events = [
            Event("A", 1), Event("A", 10), Event("B", 12),
            Event("B", 45), Event("B", 52),
        ]
        query = "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms"
        expected = reference_results([query], events)
        for split in range(1, len(events)):
            engine = StreamEngine(routed=True, vectorized=True)
            engine.register(parse_query(query), name="q0")
            engine.process_event_batch(EventBatch.from_events(events[:split]))
            engine.process_event_batch(EventBatch.from_events(events[split:]))
            assert engine.results() == expected, f"split={split}"

    def test_empty_batch_is_a_noop(self):
        engine = StreamEngine(routed=True, vectorized=True)
        engine.register(
            parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms"),
            name="q0",
        )
        assert engine.process_event_batch(EventBatch.empty()) == 0
        assert engine.results() == {"q0": 0}

    def test_size_one_batches_match_reference(self):
        events = flat_stream(SEEDS[0], count=200)
        expected = reference_results(KERNEL_QUERIES, events)
        assert columnar_results(KERNEL_QUERIES, events, 1) == expected

    def test_intra_batch_regression_rejected_like_per_event(self):
        events = [Event("A", 5), Event("B", 3)]
        engine = StreamEngine(routed=True, vectorized=True)
        engine.register(
            parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms"),
            name="q0",
        )
        with pytest.raises(OutOfOrderError):
            engine.process_event_batch(EventBatch.from_events(events))

    def test_cross_batch_regression_rejected_like_per_event(self):
        engine = StreamEngine(routed=True, vectorized=True)
        engine.register(
            parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms"),
            name="q0",
        )
        engine.process_event_batch(
            EventBatch.from_events([Event("A", 5)])
        )
        with pytest.raises(OutOfOrderError):
            engine.process_event_batch(
                EventBatch.from_events([Event("B", 3)])
            )
        # Ties across the boundary are legal, like EventStream.
        engine.process_event_batch(
            EventBatch.from_events([Event("B", 5)])
        )

    def test_missing_predicate_attribute_raises_like_per_event(self):
        # The mask compiler routes the offending batch through the
        # materializer, which must surface the same PredicateError the
        # per-event evaluator raises.
        events = [Event("A", 1, {"v": 1}), Event("B", 2)]  # B lacks v
        query = "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms WHERE B.v > 0"
        reference = StreamEngine()
        reference.register(parse_query(query), name="q0")
        with pytest.raises(PredicateError):
            for event in events:
                reference.process(event)
        engine = StreamEngine(routed=True, vectorized=True)
        engine.register(parse_query(query), name="q0")
        with pytest.raises(PredicateError):
            engine.process_event_batch(EventBatch.from_events(events))

    def test_missing_aggregate_value_raises_like_per_event(self):
        events = [Event("A", 1), Event("C", 2)]  # C lacks v
        query = "PATTERN SEQ(A, C) AGG SUM(C.v) WITHIN 40 ms"
        reference = StreamEngine()
        reference.register(parse_query(query), name="q0")
        with pytest.raises(PredicateError):
            for event in events:
                reference.process(event)
        engine = StreamEngine(routed=True, vectorized=True)
        engine.register(parse_query(query), name="q0")
        with pytest.raises(PredicateError):
            engine.process_event_batch(EventBatch.from_events(events))


@pytest.mark.parametrize("seed", SEEDS)
def test_accounting_matches_batched_path(seed):
    # events_processed / counter_updates feed the obs cost model; the
    # kernel must account identically to the per-event runtime.
    events = flat_stream(seed, count=800)
    query = "PATTERN SEQ(A, B, C) AGG COUNT WITHIN 90 ms"

    reference = StreamEngine(routed=True, vectorized=True)
    reference.register(parse_query(query), name="q0")
    reference.process_batch(events)

    engine = StreamEngine(routed=True, vectorized=True)
    engine.register(parse_query(query), name="q0")
    engine.run(batches_from_events(events, batch_size=97))

    ref_exec = reference._registrations["q0"].executor
    col_exec = engine._registrations["q0"].executor
    assert col_exec.events_seen == ref_exec.events_seen
    assert col_exec.events_processed == ref_exec.events_processed
    assert col_exec.counter_updates == ref_exec.counter_updates


def grouped_stream(seed, count=1200, groups=7):
    rng = random.Random(seed)
    events = random_events(
        rng,
        ["A", "B", "C", "Z"],
        count,
        attr_maker=lambda r, t: {
            "g": r.randint(0, groups - 1), "v": r.randint(1, 9)
        },
    )
    # Keyless rows exercise the broadcast lane on every seed.
    for index in range(50, len(events), 97):
        events[index] = Event("N", events[index].ts)
    return events


SHARDED_QUERIES = [
    "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms GROUP BY g",
    "PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 60 ms GROUP BY g",
    "PATTERN SEQ(A, !N, B) AGG COUNT WITHIN 70 ms GROUP BY g",
    "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms",  # local lane
]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("transport", ["pipe", "tcp"])
def test_sharded_columnar_matches_reference(seed, transport):
    events = grouped_stream(seed)
    expected = reference_results(SHARDED_QUERIES, events)
    with ShardedStreamEngine(
        shards=2, vectorized=True, transport=transport
    ) as engine:
        for index, text in enumerate(SHARDED_QUERIES):
            engine.register(parse_query(text), name=f"q{index}")
        engine.run(batches_from_events(events, batch_size=149))
        assert engine.results() == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_columnar_matches_per_event_sharded(seed):
    # Same engine, same shard count: only the wire format differs.
    events = grouped_stream(seed, count=900)
    queries = SHARDED_QUERIES[:2]
    with ShardedStreamEngine(shards=2, vectorized=True) as engine:
        for index, text in enumerate(queries):
            engine.register(parse_query(text), name=f"q{index}")
        for event in events:
            engine.process(event)
        engine.flush()
        expected = engine.results()
    with ShardedStreamEngine(shards=2, vectorized=True) as engine:
        for index, text in enumerate(queries):
            engine.register(parse_query(text), name=f"q{index}")
        for batch in batches_from_events(events, batch_size=256):
            engine.process_event_batch(batch)
        engine.flush()
        assert engine.results() == expected


def test_sharded_mixed_batches_and_events():
    # run() accepts a stream interleaving both shapes.
    events = grouped_stream(SEEDS[0], count=600)
    expected = reference_results(SHARDED_QUERIES[:2], events)
    half = len(events) // 2
    mixed = list(batches_from_events(events[:half], batch_size=128))
    mixed += events[half:]
    with ShardedStreamEngine(shards=2, vectorized=True) as engine:
        for index, text in enumerate(SHARDED_QUERIES[:2]):
            engine.register(parse_query(text), name=f"q{index}")
        engine.run(mixed)
        assert engine.results() == expected
