"""Instrumentation wired through the engines: identical results,
meaningful counters, resilient sinks, and the CLI exporters."""

import json

import pytest

from conftest import events_of

from repro.baseline.twostep import TwoStepEngine
from repro.bench.harness import time_engines
from repro.cli import main
from repro.core.executor import ASeqEngine
from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet
from repro.engine.engine import StreamEngine
from repro.engine.metrics import measure_run
from repro.engine.sinks import CollectSink, ResultSink
from repro.multi.workload import WorkloadEngine
from repro.obs.registry import MetricsRegistry
from repro.query import parse_query, parse_workload, seq


def _stream(count=2_000, seed=5):
    return SyntheticTypeGenerator(
        alphabet(8), mean_gap_ms=1, seed=seed
    ).take(count)


QUERIES = [
    "PATTERN SEQ(T0, T1, T2) AGG COUNT WITHIN 50 ms",
    "PATTERN SEQ(T0, !T3, T2) AGG COUNT WITHIN 50 ms",
]

WORKLOAD = """
q1: PATTERN SEQ(T0, T1, T2) AGG COUNT WITHIN 50 ms;
q2: PATTERN SEQ(T3, T1, T2) AGG COUNT WITHIN 50 ms;
q3: PATTERN SEQ(T0, !T4, T5) AGG COUNT WITHIN 50 ms;
"""


class TestDifferential:
    """Instrumented and null-registry engines must agree exactly."""

    @pytest.mark.parametrize("query_text", QUERIES)
    def test_aseq_aggregates_identical(self, query_text):
        query = parse_query(query_text)
        events = _stream()
        plain = ASeqEngine(query)
        instrumented = ASeqEngine(query, registry=MetricsRegistry())
        for event in events:
            assert plain.process(event) == instrumented.process(event)
        assert plain.result() == instrumented.result()

    def test_twostep_aggregates_identical(self):
        query = parse_query(QUERIES[0])
        events = _stream(800)
        plain = TwoStepEngine(query)
        instrumented = TwoStepEngine(query, registry=MetricsRegistry())
        for event in events:
            assert plain.process(event) == instrumented.process(event)
        assert plain.result() == instrumented.result()

    def test_workload_aggregates_identical(self):
        queries = parse_workload(WORKLOAD)
        events = _stream()
        plain = WorkloadEngine(queries)
        instrumented = WorkloadEngine(queries, registry=MetricsRegistry())
        for event in events:
            assert plain.process(event) == instrumented.process(event)
        assert plain.result() == instrumented.result()


class TestEngineCounters:
    def test_sem_lifecycle_counters(self):
        registry = MetricsRegistry()
        query = parse_query("PATTERN SEQ(A, !N, C) AGG COUNT WITHIN 10 ms")
        engine = ASeqEngine(query, registry=registry)
        for event in events_of(
            ("A", 1), ("N", 2), ("A", 3), ("C", 4), ("A", 50), ("C", 51)
        ):
            engine.process(event)
        assert registry.value("executor_events_total") == 6
        assert registry.value("sem_counters_created_total") == 3
        assert registry.value("sem_recount_resets_total") == 1
        assert registry.value("sem_counters_expired_total") == 2
        assert registry.value("sem_active_counters") == 1
        assert registry.value("executor_emits_total") == 2

    def test_hpc_partition_counters(self):
        registry = MetricsRegistry()
        query = parse_query(
            "PATTERN SEQ(A, C) WHERE A.id = C.id "
            "AGG COUNT WITHIN 100 ms"
        )
        engine = ASeqEngine(query, registry=registry)
        for event in events_of(
            ("A", 1, {"id": 1}), ("A", 2, {"id": 2}), ("C", 3, {"id": 1})
        ):
            engine.process(event)
        assert registry.value("hpc_partitions_created_total") == 2
        assert registry.value("hpc_partitions_live") == 2
        # partition engines share the sem_* series
        assert registry.value("sem_counters_created_total") == 2

    def test_chop_connect_counters(self):
        registry = MetricsRegistry()
        queries = parse_workload(
            """
            q1: PATTERN SEQ(A, B, C, D) AGG COUNT WITHIN 100 ms;
            q2: PATTERN SEQ(X, C, D) AGG COUNT WITHIN 100 ms;
            """
        )
        engine = WorkloadEngine(queries, registry=registry)
        assert sorted(engine.shared_query_names) == ["q1", "q2"]
        for event in events_of(
            ("A", 1), ("B", 2), ("X", 3), ("C", 4), ("D", 5)
        ):
            engine.process(event)
        assert registry.value("cc_events_total") == 5
        assert registry.value("cc_snapshots_created_total") >= 1
        assert registry.value("cc_connect_joins_total") >= 1

    def test_stream_engine_latency_histogram_and_per_query_series(self):
        registry = MetricsRegistry()
        engine = StreamEngine(registry=registry)
        sink = CollectSink()
        engine.register(
            seq("A", "B").count().within(ms=10).named("ab").build(), sink
        )
        engine.run(events_of(("A", 1), ("B", 2)))
        histogram = registry.get("event_latency_us")
        assert histogram.count == 2
        assert histogram.p50 > 0
        assert registry.value("events_ingested_total") == 2
        assert registry.value("query_events_total", query="ab") == 2
        assert registry.value("query_outputs_total", query="ab") == 1
        assert sink.values() == [1]


class _ExplodingSink(ResultSink):
    def emit(self, output):
        raise RuntimeError("boom")


class TestSinkErrorIsolation:
    def test_one_bad_sink_does_not_abort_the_loop(self):
        engine = StreamEngine()
        bad = _ExplodingSink()
        good = CollectSink()
        other = CollectSink()
        engine.register(
            seq("A", "B").count().within(ms=10).named("q1").build(),
            bad, good,
        )
        engine.register(
            seq("A", "C").count().within(ms=10).named("q2").build(),
            other,
        )
        processed = engine.run(
            events_of(("A", 1), ("B", 2), ("C", 3))
        )
        assert processed == 3
        assert good.values() == [1]  # sinks after the bad one still fed
        assert other.values() == [1]  # other registrations still pumped
        assert engine.metrics.sink_errors == 1

    def test_sink_errors_total_counter(self):
        registry = MetricsRegistry()
        engine = StreamEngine(registry=registry)
        engine.register(
            seq("A", "B").count().within(ms=10).named("q").build(),
            _ExplodingSink(),
        )
        engine.run(events_of(("A", 1), ("B", 2), ("A", 3), ("B", 4)))
        assert registry.value("sink_errors_total") == 2
        assert engine.metrics.sink_errors == 2


class TestMeasureRun:
    def test_final_probe_catches_end_of_run_peak(self):
        class Spiky:
            """Live objects grow monotonically; peak is at the end."""

            def __init__(self):
                self.seen = 0

            def process(self, event):
                self.seen += 1
                return None

            def result(self):
                return None

            def current_objects(self):
                return self.seen

        # 18 events with stride 16 → old code probed at 0 and 16 only
        # and reported 17; the final probe must see all 18.
        events = events_of(*[("A", ts) for ts in range(1, 19)])
        stats = measure_run("spiky", Spiky(), events)
        assert stats.peak_objects == 18

    def test_stride_configurable(self):
        probes = []

        class Probed:
            def process(self, event):
                return None

            def result(self):
                return None

            def current_objects(self):
                probes.append(1)
                return 0

        events = events_of(*[("A", ts) for ts in range(1, 11)])
        measure_run("p", Probed(), events, sample_memory_every=5)
        # indices 0 and 5, plus the final probe
        assert len(probes) == 3

    def test_bad_stride_rejected(self):
        with pytest.raises(ValueError):
            measure_run("x", object(), [], sample_memory_every=0)

    def test_extras_filled_from_engine_registry(self):
        registry = MetricsRegistry()
        query = parse_query(QUERIES[0])
        engine = ASeqEngine(query, registry=registry)
        stats = measure_run("aseq", engine, _stream(500))
        assert stats.extras["executor_events_total"] == 500
        assert "sem_counters_created_total" in stats.extras

    def test_extras_empty_without_instrumentation(self):
        query = parse_query(QUERIES[0])
        stats = measure_run("aseq", ASeqEngine(query), _stream(300))
        assert stats.extras == {}


class TestTimeEnginesInstrumented:
    def test_instrumented_runs_carry_extras(self):
        query = parse_query(QUERIES[0])
        events = _stream(500)
        results = time_engines(
            [
                ("aseq", lambda registry=None: ASeqEngine(
                    query, registry=registry
                )),
                ("twostep", lambda registry=None: TwoStepEngine(
                    query, registry=registry
                )),
            ],
            events,
            instrument=True,
        )
        assert results["aseq"].extras["executor_events_total"] == 500
        assert results["twostep"].extras["twostep_events_total"] > 0
        assert (
            results["aseq"].final_result == results["twostep"].final_result
        )


QUERY = "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 300 ms"


class TestCliExporters:
    def test_metrics_out_writes_prometheus_and_json(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        code = main([
            "--query", QUERY, "--generate", "stock",
            "--events", "3000", "--metrics-out", str(out),
        ])
        assert code == 0
        text = out.read_text()
        assert "# TYPE events_ingested_total counter" in text
        assert "events_ingested_total 3000" in text
        assert "# TYPE event_latency_us histogram" in text
        assert 'event_latency_us_bucket{le="+Inf"} 3000' in text
        snapshot = json.loads((tmp_path / "metrics.prom.json").read_text())
        counters = {
            entry["name"]: entry["value"]
            for entry in snapshot["counters"]
        }
        assert counters["events_ingested_total"] == 3000
        assert "sem_counters_created_total" in counters
        assert "sem_counters_expired_total" in counters
        assert "sem_recount_resets_total" in counters
        (histogram,) = [
            entry for entry in snapshot["histograms"]
            if entry["name"] == "event_latency_us"
        ]
        for quantile in ("p50", "p95", "p99"):
            assert histogram[quantile] > 0
        assert snapshot["run"]["events"] == 3000

    def test_stats_every_reports_to_stderr(self, capsys):
        code = main([
            "--query", QUERY, "--generate", "stock",
            "--events", "2000", "--stats-every", "1000",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert err.count("# stats ") == 2
        assert "events=1,000" in err

    def test_dump_trace_prints_spans(self, capsys):
        code = main([
            "--query", QUERY, "--generate", "stock",
            "--events", "500", "--dump-trace", "--trace-capacity", "16",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "ingest" in err
        assert "seq" in err

    def test_uninstrumented_run_unchanged(self, capsys):
        code = main([
            "--query", QUERY, "--generate", "stock", "--events", "500",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "# stats" not in err
        assert "wrote metrics" not in err
