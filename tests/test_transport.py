"""Shard transport suite: framing, backoff, and pipe/tcp parity.

The transport contract is that the router/worker protocol is
byte-for-byte transport-agnostic: a sharded run over framed TCP must
produce exactly the results of the same run over forked pipes. The
framing layer is tested at the socket level (round trip, user-space
buffering, EOF semantics), the connect path for its bounded seeded
backoff, and the whole stack end-to-end through the engine.
"""

from __future__ import annotations

import random
import socket

import pytest

from conftest import random_events
from repro.engine.sharded import ShardedStreamEngine
from repro.engine.transport import (
    FramedChannel,
    PipeTransport,
    SocketTransport,
    build_transport,
    connect_with_backoff,
    parse_hostport,
    wait_readable,
)
from repro.errors import TransportError
from repro.obs.registry import MetricsRegistry
from repro.query import parse_query
from repro.resilience.faults import FaultPlan, fault_seed

QUERIES = {
    "count": "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms GROUP BY g",
    "avg": "PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 40 ms GROUP BY g",
    "neg": "PATTERN SEQ(A, !C, B) AGG COUNT WITHIN 40 ms GROUP BY g",
}


def _attrs(rng, _event_type):
    return {"g": rng.randrange(16), "v": rng.randrange(1000)}


def _channel_pair() -> tuple[FramedChannel, FramedChannel]:
    left, right = socket.socketpair()
    return FramedChannel(left), FramedChannel(right)


# ----- framing --------------------------------------------------------------


def test_framed_channel_roundtrips_messages():
    a, b = _channel_pair()
    try:
        payloads = [
            ("batch", {"r": [("A", 1, {"g": 2})] * 50, "q": 7}),
            ("ping", {"ack": 3}),
            ("ok", {"partials": {"count": {1: 2}}, "obs": None}),
            "just a string",
            list(range(10_000)),  # multi-chunk frame
        ]
        for payload in payloads:
            a.send(payload)
        for payload in payloads:
            assert b.poll(1.0)
            assert b.recv() == payload
    finally:
        a.close()
        b.close()


def test_framed_channel_buffers_extra_frames():
    """Two frames read in one chunk: the second is served from the
    user-space buffer even though the descriptor has gone quiet."""
    a, b = _channel_pair()
    try:
        a.send("first")
        a.send("second")
        assert b.poll(1.0)
        assert b.recv() == "first"
        # Nothing left on the wire, but the frame is buffered.
        assert b.buffered
        assert b.poll(0.0)
        assert b.recv() == "second"
        assert not b.buffered
        assert not b.poll(0.0)
    finally:
        a.close()
        b.close()


def test_framed_channel_eof_polls_ready_and_recv_raises():
    a, b = _channel_pair()
    a.send("last words")
    a.close()
    try:
        assert b.poll(1.0)
        assert b.recv() == "last words"
        assert b.poll(1.0), "EOF must read as ready, not hang"
        with pytest.raises(EOFError):
            b.recv()
    finally:
        b.close()


def test_wait_readable_sees_buffered_frames():
    """A complete frame in the channel buffer is invisible to a raw
    select on the descriptor; wait_readable must report it anyway."""
    a, b = _channel_pair()
    try:
        a.send(1)
        a.send(2)
        assert b.recv() == 1  # pulls both frames into the buffer
        ready = wait_readable([b], timeout=0.0)
        assert ready == [b]
    finally:
        a.close()
        b.close()


def test_parse_hostport():
    assert parse_hostport("10.0.0.1:9200") == ("10.0.0.1", 9200)
    assert parse_hostport(":9200") == ("127.0.0.1", 9200)
    for bad in ("no-port", "host:", "host:abc", ""):
        with pytest.raises(TransportError):
            parse_hostport(bad)


# ----- connect backoff ------------------------------------------------------


def _dead_address() -> tuple[str, int]:
    """An address that refuses connections (bound, never listening)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


def test_connect_backoff_is_bounded_and_counts_retries():
    retries = []
    with pytest.raises(TransportError):
        connect_with_backoff(
            _dead_address(),
            attempts=3,
            backoff_s=0.001,
            on_retry=lambda: retries.append(1),
            rng=random.Random(fault_seed(0)),
        )
    assert len(retries) == 3


def test_connect_backoff_jitter_is_seeded():
    """Identical rng seeds draw identical jitter — chaos runs replay
    their reconnect timing deterministically."""
    draws = []
    for _ in range(2):
        rng = random.Random(fault_seed(7))
        draws.append([rng.random() for _ in range(8)])
    assert draws[0] == draws[1]


def test_build_transport_resolves_kinds():
    assert isinstance(build_transport(None), PipeTransport)
    assert isinstance(build_transport("pipe"), PipeTransport)
    assert isinstance(build_transport("tcp"), SocketTransport)
    passthrough = SocketTransport()
    assert build_transport(passthrough) is passthrough
    assert isinstance(
        build_transport(None, worker_addresses=["127.0.0.1:9200"]),
        SocketTransport,
    )
    with pytest.raises(TransportError):
        build_transport("pipe", worker_addresses=["127.0.0.1:9200"])
    with pytest.raises(TransportError):
        build_transport("carrier-pigeon")


# ----- end-to-end parity ----------------------------------------------------


def _run(transport: str | None, events, **overrides) -> dict:
    settings = dict(
        shards=2,
        batch_size=32,
        heartbeat_interval_s=0.1,
        transport=transport,
    )
    settings.update(overrides)
    with ShardedStreamEngine(**settings) as engine:
        for name, text in QUERIES.items():
            engine.register(parse_query(text), name=name)
        for event in events:
            engine.process(event)
        return engine.results()


def test_socket_transport_matches_pipe_transport():
    plan = FaultPlan(fault_seed(0))
    events = random_events(plan.rng, "ABC", 700, attr_maker=_attrs)
    over_pipe = _run("pipe", events)
    over_tcp = _run("tcp", events)
    assert over_tcp == over_pipe


def test_socket_transport_parity_unsupervised():
    plan = FaultPlan(fault_seed(1))
    events = random_events(plan.rng, "ABC", 500, attr_maker=_attrs)
    over_pipe = _run("pipe", events, supervise=False)
    over_tcp = _run("tcp", events, supervise=False)
    assert over_tcp == over_pipe


def test_socket_transport_counts_connects():
    registry = MetricsRegistry()
    plan = FaultPlan(fault_seed(2))
    events = random_events(plan.rng, "AB", 200, attr_maker=_attrs)
    _run("tcp", events, registry=registry)
    for shard in ("0", "1"):
        assert (
            registry.value("transport_connects_total", shard=shard) >= 1
        )


def test_engine_inspect_reports_transport():
    plan = FaultPlan(fault_seed(0))
    events = random_events(plan.rng, "AB", 100, attr_maker=_attrs)
    with ShardedStreamEngine(shards=2, transport="tcp") as engine:
        engine.register(parse_query(QUERIES["count"]), name="count")
        for event in events:
            engine.process(event)
        state = engine.inspect()
        assert state["transport"] == "tcp"
        assert state["router_journal"] is False


def test_pre_started_worker_addresses(tmp_path):
    """The --shard-worker mode: connect to externally started
    listeners instead of spawning them."""
    import subprocess
    import sys
    import os
    import re

    workers = []
    addresses = []
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    try:
        for _ in range(2):
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.shard_worker",
                    "--listen", "127.0.0.1:0", "--orphan-timeout", "30",
                ],
                stdout=subprocess.PIPE,
                env=env,
                text=True,
            )
            workers.append(proc)
            line = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+:\d+)", line)
            assert match, f"worker never announced its port: {line!r}"
            addresses.append(match.group(1))
        plan = FaultPlan(fault_seed(1))
        events = random_events(plan.rng, "ABC", 400, attr_maker=_attrs)
        expected = _run("pipe", events)
        got = _run(None, events, worker_addresses=addresses)
        assert got == expected
    finally:
        for proc in workers:
            proc.kill()
            proc.wait(timeout=10)
