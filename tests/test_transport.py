"""Shard transport suite: framing, backoff, and pipe/tcp parity.

The transport contract is that the router/worker protocol is
byte-for-byte transport-agnostic: a sharded run over framed TCP must
produce exactly the results of the same run over forked pipes. The
framing layer is tested at the socket level (round trip, user-space
buffering, EOF semantics), the connect path for its bounded seeded
backoff, and the whole stack end-to-end through the engine.
"""

from __future__ import annotations

import pickle
import random
import socket
import struct
import threading
import time
import zlib

import pytest

from conftest import random_events
from repro.engine.sharded import ShardedStreamEngine
from repro.engine.transport import (
    FRAME_MAGIC,
    FrameStats,
    FramedChannel,
    PipeTransport,
    SocketTransport,
    build_transport,
    connect_with_backoff,
    parse_hostport,
    wait_readable,
)
from repro.errors import FrameError, TransportError, TransportTimeout
from repro.obs.registry import MetricsRegistry
from repro.query import parse_query
from repro.resilience.faults import FaultPlan, fault_seed

QUERIES = {
    "count": "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms GROUP BY g",
    "avg": "PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 40 ms GROUP BY g",
    "neg": "PATTERN SEQ(A, !C, B) AGG COUNT WITHIN 40 ms GROUP BY g",
}


def _attrs(rng, _event_type):
    return {"g": rng.randrange(16), "v": rng.randrange(1000)}


def _channel_pair() -> tuple[FramedChannel, FramedChannel]:
    left, right = socket.socketpair()
    return FramedChannel(left), FramedChannel(right)


# ----- framing --------------------------------------------------------------


def test_framed_channel_roundtrips_messages():
    a, b = _channel_pair()
    try:
        payloads = [
            ("batch", {"r": [("A", 1, {"g": 2})] * 50, "q": 7}),
            ("ping", {"ack": 3}),
            ("ok", {"partials": {"count": {1: 2}}, "obs": None}),
            "just a string",
            list(range(10_000)),  # multi-chunk frame
        ]
        for payload in payloads:
            a.send(payload)
        for payload in payloads:
            assert b.poll(1.0)
            assert b.recv() == payload
    finally:
        a.close()
        b.close()


def test_framed_channel_buffers_extra_frames():
    """Two frames read in one chunk: the second is served from the
    user-space buffer even though the descriptor has gone quiet."""
    a, b = _channel_pair()
    try:
        a.send("first")
        a.send("second")
        assert b.poll(1.0)
        assert b.recv() == "first"
        # Nothing left on the wire, but the frame is buffered.
        assert b.buffered
        assert b.poll(0.0)
        assert b.recv() == "second"
        assert not b.buffered
        assert not b.poll(0.0)
    finally:
        a.close()
        b.close()


def test_framed_channel_eof_polls_ready_and_recv_raises():
    a, b = _channel_pair()
    a.send("last words")
    a.close()
    try:
        assert b.poll(1.0)
        assert b.recv() == "last words"
        assert b.poll(1.0), "EOF must read as ready, not hang"
        with pytest.raises(EOFError):
            b.recv()
    finally:
        b.close()


def test_wait_readable_sees_buffered_frames():
    """A complete frame in the channel buffer is invisible to a raw
    select on the descriptor; wait_readable must report it anyway."""
    a, b = _channel_pair()
    try:
        a.send(1)
        a.send(2)
        assert b.recv() == 1  # pulls both frames into the buffer
        ready = wait_readable([b], timeout=0.0)
        assert ready == [b]
    finally:
        a.close()
        b.close()


# ----- frame integrity: CRC, sequence numbers, deadlines --------------------

#: The wire format, restated independently of the implementation so a
#: silent layout change fails here: magic, u32 payload length, u64
#: channel sequence number, u32 CRC32 of the payload.
_WIRE_HEADER = struct.Struct(">4sIQI")


def _raw_frame(obj, seq: int, crc_delta: int = 0) -> bytes:
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    crc = (zlib.crc32(payload) + crc_delta) & 0xFFFFFFFF
    return _WIRE_HEADER.pack(FRAME_MAGIC, len(payload), seq, crc) + payload


def _receiver() -> tuple[socket.socket, FramedChannel]:
    left, right = socket.socketpair()
    return left, FramedChannel(right)


def test_crc_corruption_raises_frame_error():
    wire, channel = _receiver()
    try:
        wire.sendall(_raw_frame("tainted", seq=1, crc_delta=7))
        with pytest.raises(FrameError):
            channel.recv()
        assert channel.stats.corrupt == 1
    finally:
        wire.close()
        channel.close()


def test_duplicate_frames_are_skipped_not_redelivered():
    """A frame re-sent after a stall arrives twice; sequence numbers
    suppress the duplicate so the layer above never sees it."""
    wire, channel = _receiver()
    try:
        wire.sendall(_raw_frame("first", seq=1))
        wire.sendall(_raw_frame("first", seq=1))  # duplicate delivery
        wire.sendall(_raw_frame("second", seq=2))
        assert channel.recv() == "first"
        assert channel.recv() == "second"
        assert channel.stats.dup_skipped == 1
    finally:
        wire.close()
        channel.close()


def test_sequence_gap_raises_frame_error():
    wire, channel = _receiver()
    try:
        wire.sendall(_raw_frame("one", seq=1))
        wire.sendall(_raw_frame("three", seq=3))  # frame 2 lost
        assert channel.recv() == "one"
        with pytest.raises(FrameError):
            channel.recv()
    finally:
        wire.close()
        channel.close()


def test_magic_scan_resynchronizes_past_torn_bytes():
    """Garbage before a valid frame (the tail of a frame torn by a
    dying connection) is scanned past and counted, and the frame after
    it is delivered intact."""
    wire, channel = _receiver()
    try:
        wire.sendall(b"\x00\xffTORN-FRAME-TAIL" + _raw_frame("ok", seq=1))
        assert channel.recv() == "ok"
        assert channel.stats.resyncs >= 1
    finally:
        wire.close()
        channel.close()


def test_read_deadline_distinguishes_dead_peer_from_slow_link():
    """Zero bytes for the whole budget raises TransportTimeout; a
    trickle (any progress) re-arms the deadline and succeeds."""
    wire, channel = _receiver()
    channel.read_deadline_s = 0.2
    try:
        with pytest.raises(TransportTimeout):
            channel.recv()
        assert channel.stats.deadline_misses == 1
        frame = _raw_frame("slowly", seq=1)
        half = len(frame) // 2

        def drip():
            wire.sendall(frame[:half])
            time.sleep(0.15)  # inside the per-chunk budget
            wire.sendall(frame[half:])

        feeder = threading.Thread(target=drip, daemon=True)
        feeder.start()
        assert channel.recv() == "slowly"
        feeder.join(5.0)
    finally:
        wire.close()
        channel.close()


def test_half_sent_frame_heals_on_the_next_send():
    """Regression for reconnect-after-half-sent-frame: a write deadline
    interrupting a frame parks the unsent remainder, and the next send
    finishes the old frame first — the peer decodes both messages, in
    order, with no torn bytes between them."""
    sender_sock, receiver_sock = socket.socketpair()
    sender_sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
    receiver_sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
    sender = FramedChannel(sender_sock, write_deadline_s=0.2)
    receiver = FramedChannel(receiver_sock)
    try:
        big = {"bulk": bytes(4 * 1024 * 1024)}
        with pytest.raises(TransportTimeout):
            sender.send(big)  # stalls: nobody is draining
        assert sender.stats.deadline_misses >= 1
        got: list = []
        drainer = threading.Thread(
            target=lambda: got.extend(
                (receiver.recv(), receiver.recv())
            ),
            daemon=True,
        )
        drainer.start()
        sender.write_deadline_s = None  # the link recovered
        sender.send("tail")
        drainer.join(10.0)
        assert not drainer.is_alive(), "receiver never got both frames"
        assert got[0] == big
        assert got[1] == "tail"
    finally:
        sender.close()
        receiver.close()


def test_frame_stats_mirror_into_registry_counters():
    """The FrameStats sink contract SocketTransport relies on for the
    per-shard ``repro_transport_frame_*`` series."""
    registry = MetricsRegistry()
    sink = {
        "corrupt": registry.counter(
            "repro_transport_frame_corrupt_total", "t", shard="9"
        ),
        "dup_skipped": registry.counter(
            "repro_transport_frame_dup_skipped_total", "t", shard="9"
        ),
    }
    stats = FrameStats(sink)
    stats.bump("corrupt")
    stats.bump("dup_skipped", 3)
    stats.bump("resyncs")  # no sink entry: in-process only
    assert stats.snapshot() == {
        "corrupt": 1, "resyncs": 1, "dup_skipped": 3,
        "deadline_misses": 0,
    }
    assert registry.value(
        "repro_transport_frame_corrupt_total", shard="9"
    ) == 1
    assert registry.value(
        "repro_transport_frame_dup_skipped_total", shard="9"
    ) == 3


def test_parse_hostport():
    assert parse_hostport("10.0.0.1:9200") == ("10.0.0.1", 9200)
    assert parse_hostport(":9200") == ("127.0.0.1", 9200)
    for bad in ("no-port", "host:", "host:abc", ""):
        with pytest.raises(TransportError):
            parse_hostport(bad)


# ----- connect backoff ------------------------------------------------------


def _dead_address() -> tuple[str, int]:
    """An address that refuses connections (bound, never listening)."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    address = probe.getsockname()
    probe.close()
    return address


def test_connect_backoff_is_bounded_and_counts_retries():
    retries = []
    with pytest.raises(TransportError):
        connect_with_backoff(
            _dead_address(),
            attempts=3,
            backoff_s=0.001,
            on_retry=lambda: retries.append(1),
            rng=random.Random(fault_seed(0)),
        )
    assert len(retries) == 3


def test_connect_backoff_jitter_is_seeded():
    """Identical rng seeds draw identical jitter — chaos runs replay
    their reconnect timing deterministically."""
    draws = []
    for _ in range(2):
        rng = random.Random(fault_seed(7))
        draws.append([rng.random() for _ in range(8)])
    assert draws[0] == draws[1]


def test_build_transport_resolves_kinds():
    assert isinstance(build_transport(None), PipeTransport)
    assert isinstance(build_transport("pipe"), PipeTransport)
    assert isinstance(build_transport("tcp"), SocketTransport)
    passthrough = SocketTransport()
    assert build_transport(passthrough) is passthrough
    assert isinstance(
        build_transport(None, worker_addresses=["127.0.0.1:9200"]),
        SocketTransport,
    )
    with pytest.raises(TransportError):
        build_transport("pipe", worker_addresses=["127.0.0.1:9200"])
    with pytest.raises(TransportError):
        build_transport("carrier-pigeon")


# ----- end-to-end parity ----------------------------------------------------


def _run(transport: str | None, events, **overrides) -> dict:
    settings = dict(
        shards=2,
        batch_size=32,
        heartbeat_interval_s=0.1,
        transport=transport,
    )
    settings.update(overrides)
    with ShardedStreamEngine(**settings) as engine:
        for name, text in QUERIES.items():
            engine.register(parse_query(text), name=name)
        for event in events:
            engine.process(event)
        return engine.results()


def test_socket_transport_matches_pipe_transport():
    plan = FaultPlan(fault_seed(0))
    events = random_events(plan.rng, "ABC", 700, attr_maker=_attrs)
    over_pipe = _run("pipe", events)
    over_tcp = _run("tcp", events)
    assert over_tcp == over_pipe


def test_socket_transport_parity_unsupervised():
    plan = FaultPlan(fault_seed(1))
    events = random_events(plan.rng, "ABC", 500, attr_maker=_attrs)
    over_pipe = _run("pipe", events, supervise=False)
    over_tcp = _run("tcp", events, supervise=False)
    assert over_tcp == over_pipe


def test_socket_transport_counts_connects():
    registry = MetricsRegistry()
    plan = FaultPlan(fault_seed(2))
    events = random_events(plan.rng, "AB", 200, attr_maker=_attrs)
    _run("tcp", events, registry=registry)
    for shard in ("0", "1"):
        assert (
            registry.value("transport_connects_total", shard=shard) >= 1
        )


def test_engine_inspect_reports_transport():
    plan = FaultPlan(fault_seed(0))
    events = random_events(plan.rng, "AB", 100, attr_maker=_attrs)
    with ShardedStreamEngine(shards=2, transport="tcp") as engine:
        engine.register(parse_query(QUERIES["count"]), name="count")
        for event in events:
            engine.process(event)
        state = engine.inspect()
        assert state["transport"] == "tcp"
        assert state["router_journal"] is False


def test_pre_started_worker_addresses(tmp_path):
    """The --shard-worker mode: connect to externally started
    listeners instead of spawning them."""
    import subprocess
    import sys
    import os
    import re

    workers = []
    addresses = []
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    try:
        for _ in range(2):
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.shard_worker",
                    "--listen", "127.0.0.1:0", "--orphan-timeout", "30",
                ],
                stdout=subprocess.PIPE,
                env=env,
                text=True,
            )
            workers.append(proc)
            line = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+:\d+)", line)
            assert match, f"worker never announced its port: {line!r}"
            addresses.append(match.group(1))
        plan = FaultPlan(fault_seed(1))
        events = random_events(plan.rng, "ABC", 400, attr_maker=_attrs)
        expected = _run("pipe", events)
        got = _run(None, events, worker_addresses=addresses)
        assert got == expected
    finally:
        for proc in workers:
            proc.kill()
            proc.wait(timeout=10)
