"""Struct-of-arrays :class:`EventBatch`: construction, round-trips, wire.

The exactness contract under test: columnarizing events and
materializing them back must reproduce the originals exactly (types,
timestamps, attribute values *and* Python value types), and the flat
wire format must round-trip every column shape — including presence
masks and the pickled ``object`` fallback for heterogeneous columns.
"""

import io

import numpy as np
import pytest

from repro.datagen import (
    ClickStreamGenerator,
    LoginStreamGenerator,
    StockTradeGenerator,
    SyntheticTypeGenerator,
)
from repro.datagen.synthetic import alphabet
from repro.datagen.tracefile import iter_trace, read_trace_batches, trace_text
from repro.errors import OutOfOrderError, StreamError
from repro.events import Event
from repro.events.batch import BatchSchema, EventBatch, batches_from_events


def sample_events():
    return [
        Event("A", 1, {"v": 1, "s": "x"}),
        Event("B", 2, {"v": 2}),
        Event("A", 2, {"v": 3, "s": "y", "f": 1.5}),
        Event("C", 5),
        Event("B", 9, {"v": 4, "f": 2.5}),
    ]


class TestConstruction:
    def test_from_events_roundtrips_exactly(self):
        events = sample_events()
        batch = EventBatch.from_events(events)
        assert len(batch) == len(events)
        assert batch.to_events() == events

    def test_value_types_survive_materialization(self):
        events = [
            Event("T", 1, {"i": 7, "f": 2.5, "s": "hi", "b": True,
                           "m": [1, 2]}),
            Event("T", 2, {"i": 8, "f": 3.5, "s": "yo", "b": False,
                           "m": {"k": 1}}),
        ]
        back = EventBatch.from_events(events).to_events()
        assert back == events
        attrs = back[0].attrs
        assert type(attrs["i"]) is int
        assert type(attrs["f"]) is float
        assert type(attrs["s"]) is str
        assert type(attrs["b"]) is bool
        assert attrs["m"] == [1, 2]

    def test_column_dtypes(self):
        batch = EventBatch.from_events(
            [Event("T", i, {"i": i, "f": float(i), "s": str(i)})
             for i in range(4)]
        )
        assert batch.codes.dtype == np.int32
        assert batch.ts.dtype == np.int64
        assert batch.cols["i"].dtype == np.int64
        assert batch.cols["f"].dtype == np.float64
        assert batch.cols["s"].dtype.kind == "U"

    def test_mixed_column_falls_back_to_object(self):
        batch = EventBatch.from_events(
            [Event("T", 1, {"v": 1}), Event("T", 2, {"v": "two"})]
        )
        assert batch.cols["v"].dtype == object

    def test_huge_ints_stay_exact(self):
        big = 2 ** 100
        batch = EventBatch.from_events([Event("T", 1, {"v": big})])
        assert batch.cols["v"].dtype == object
        assert batch.to_events()[0].attrs["v"] == big

    def test_presence_mask_for_partial_attributes(self):
        events = [Event("A", 1, {"v": 1}), Event("B", 2), Event("A", 3)]
        batch = EventBatch.from_events(events)
        assert batch.present["v"].tolist() == [True, False, False]
        assert batch.to_events() == events

    def test_absent_attrs_materialize_as_no_attrs(self):
        batch = EventBatch.from_events([Event("A", 1), Event("B", 2)])
        assert all(not e.attrs for e in batch.to_events())

    def test_schema_reuse_keeps_codes_stable(self):
        first = EventBatch.from_events([Event("A", 1), Event("B", 2)])
        second = EventBatch.from_events(
            [Event("B", 3)], schema=first.schema
        )
        assert second.schema is first.schema
        assert second.codes.tolist() == [first.schema.code_of["B"]]

    def test_schema_extension_is_prefix_compatible(self):
        first = EventBatch.from_events([Event("A", 1)])
        second = EventBatch.from_events(
            [Event("A", 2), Event("B", 3, {"v": 1})], schema=first.schema
        )
        assert second.schema is not first.schema
        assert second.schema.code_of["A"] == first.schema.code_of["A"]
        assert "v" in second.schema.columns

    def test_duplicate_schema_types_rejected(self):
        with pytest.raises(StreamError):
            BatchSchema(("A", "A"))

    def test_length_mismatch_rejected(self):
        schema = BatchSchema(("A",))
        with pytest.raises(StreamError):
            EventBatch(
                schema,
                np.zeros(2, dtype=np.int32),
                np.zeros(3, dtype=np.int64),
            )

    def test_empty_batch(self):
        batch = EventBatch.empty()
        assert len(batch) == 0
        assert batch.to_events() == []


class TestOrderHelpers:
    def test_in_order_batch_passes(self):
        batch = EventBatch.from_events([Event("A", 1), Event("A", 1),
                                        Event("A", 3)])
        assert batch.first_regression() is None
        batch.ensure_in_order()  # ties are legal, like EventStream

    def test_intra_batch_regression_detected(self):
        batch = EventBatch.from_events([Event("A", 5), Event("A", 3)])
        assert batch.first_regression() == (5, 3)
        with pytest.raises(OutOfOrderError):
            batch.ensure_in_order()

    def test_cross_batch_regression_detected(self):
        batch = EventBatch.from_events([Event("A", 5)])
        assert batch.first_regression(previous_ts=9) == (9, 5)
        batch.ensure_in_order(previous_ts=5)  # tie with predecessor OK


class TestDerivation:
    def test_take_and_islice_share_schema(self):
        batch = EventBatch.from_events(sample_events())
        taken = batch.take(np.array([0, 2, 4]))
        sliced = batch.islice(1, 4)
        assert taken.schema is batch.schema
        assert sliced.schema is batch.schema
        events = batch.to_events()
        assert taken.to_events() == [events[0], events[2], events[4]]
        assert sliced.to_events() == events[1:4]

    def test_to_records_matches_router_shape(self):
        events = sample_events()
        batch = EventBatch.from_events(events)
        assert batch.to_records() == [
            (e.event_type, e.ts, e.attrs or None) for e in events
        ]


class TestWire:
    def test_roundtrip_numeric_string_and_object_columns(self):
        events = [
            Event("A", 1, {"i": 1, "f": 0.5, "s": "a", "o": [1]}),
            Event("B", 2, {"i": 2, "f": 1.5, "s": "bb", "o": (2,)}),
        ]
        batch = EventBatch.from_events(events)
        decoded = EventBatch.from_wire(batch.to_wire())
        assert decoded.to_events() == events
        assert decoded.cols["i"].dtype == np.int64
        assert decoded.cols["o"].dtype == object

    def test_roundtrip_presence_masks(self):
        events = [Event("A", 1, {"v": 1}), Event("B", 2), Event("A", 3)]
        decoded = EventBatch.from_wire(
            EventBatch.from_events(events).to_wire()
        )
        assert decoded.present["v"].tolist() == [True, False, False]
        assert decoded.to_events() == events

    def test_roundtrip_empty_batch(self):
        decoded = EventBatch.from_wire(EventBatch.empty().to_wire())
        assert len(decoded) == 0

    def test_truncated_frame_rejected(self):
        wire = EventBatch.from_events(sample_events()).to_wire()
        with pytest.raises(StreamError):
            EventBatch.from_wire(wire[:3])
        with pytest.raises(StreamError):
            EventBatch.from_wire(wire[:-2])

    def test_wrong_version_rejected(self):
        import json
        import struct

        header = json.dumps({"v": 999, "n": 0, "types": [],
                             "segs": []}).encode()
        with pytest.raises(StreamError):
            EventBatch.from_wire(struct.pack("<I", len(header)) + header)


class TestBatchesFromEvents:
    def test_chunks_and_schema_growth(self):
        events = [Event(t, i + 1, {"v": i}) for i, t in
                  enumerate("AABCABCD")]
        batches = list(batches_from_events(events, batch_size=3))
        assert [len(b) for b in batches] == [3, 3, 2]
        # Later batches extend earlier schemas without remapping codes.
        assert batches[1].schema.code_of["A"] == \
            batches[0].schema.code_of["A"]
        flat = [e for b in batches for e in b.to_events()]
        assert flat == events

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            list(batches_from_events([], batch_size=0))


class TestDatagenEmitters:
    def test_synthetic_batches_match_events(self):
        gen = SyntheticTypeGenerator(alphabet(12), mean_gap_ms=1, seed=3)
        flat = [e for b in gen.batches(2000, batch_size=333)
                for e in b.to_events()]
        assert flat == gen.take(2000)

    def test_synthetic_batches_share_one_schema(self):
        gen = SyntheticTypeGenerator(alphabet(5), seed=1)
        schemas = {id(b.schema) for b in gen.batches(500, batch_size=100)}
        assert len(schemas) == 1

    def test_stock_batches_match_events(self):
        gen = StockTradeGenerator(seed=9)
        flat = [e for b in gen.batches(1200, batch_size=256)
                for e in b.to_events()]
        assert flat == gen.take(1200)

    def test_clicks_batches_match_events(self):
        gen = ClickStreamGenerator(seed=4)
        flat = [e for b in gen.batches(900, batch_size=128)
                for e in b.to_events()]
        assert flat == gen.take(900)

    def test_logins_batches_match_events(self):
        # Login streams have heterogeneous attrs (password events carry
        # extra fields) — the presence-mask path end to end.
        gen = LoginStreamGenerator(seed=6)
        flat = [e for b in gen.batches(900, batch_size=64)
                for e in b.to_events()]
        assert flat == gen.take(900)

    def test_trace_batches_match_iter_trace(self):
        text = trace_text(StockTradeGenerator(seed=2).take(400))
        expected = list(iter_trace(io.StringIO(text)))
        flat = [
            e
            for b in read_trace_batches(io.StringIO(text), batch_size=64)
            for e in b.to_events()
        ]
        assert flat == expected
