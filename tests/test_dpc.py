"""Unit tests for the basic DPC engine (paper Sec. 3.1)."""

import pytest

from conftest import events_of, replay
from repro.core.dpc import DPCEngine
from repro.errors import QueryError
from repro.query import seq


class TestDPCEngine:
    def test_rejects_windowed_queries(self):
        with pytest.raises(QueryError):
            DPCEngine(seq("A", "B").within(ms=10).build())

    def test_counts_simple_sequence(self):
        engine = DPCEngine(seq("A", "B", "C").build())
        outputs = replay(
            engine, events_of(("A", 1), ("B", 2), ("C", 3))
        )
        assert outputs == [1]

    def test_paper_figure_2_sequence_forming(self):
        """Fig. 2: a1 b1 c1 a2 b2 c2 yields 4 total (A,B,C) matches."""
        engine = DPCEngine(seq("A", "B", "C").build())
        outputs = replay(
            engine,
            events_of(
                ("A", 1), ("B", 2), ("C", 3),
                ("A", 4), ("B", 5), ("C", 6),
            ),
        )
        assert outputs == [1, 4]

    def test_emits_only_on_trigger(self):
        engine = DPCEngine(seq("A", "B").build())
        assert engine.process(events_of(("A", 1))[0]) is None
        assert engine.result() == 0

    def test_irrelevant_update_type_ignored(self):
        engine = DPCEngine(seq("A", "B").build())
        replay(engine, events_of(("A", 1), ("Z", 2), ("B", 3)))
        assert engine.result() == 1

    def test_pattern_length_one(self):
        engine = DPCEngine(seq("A").build())
        outputs = replay(engine, events_of(("A", 1), ("A", 2)))
        assert outputs == [1, 2]

    def test_repeated_type_no_self_chaining(self):
        engine = DPCEngine(seq("A", "A").build())
        outputs = replay(engine, events_of(("A", 1), ("A", 2), ("A", 3)))
        # pairs: (a1,a2), (a1,a3), (a2,a3)
        assert outputs == [0, 1, 3]

    def test_sum_aggregate(self):
        engine = DPCEngine(seq("A", "B").sum("B", "w").build())
        replay(
            engine,
            events_of(
                ("A", 1), ("B", 2, {"w": 10}),
                ("A", 3), ("B", 4, {"w": 1}),
            ),
        )
        # matches: (a1,b1)=10, (a1,b2)=1, (a2,b2)=1
        assert engine.result() == 12

    def test_avg_aggregate_empty_is_none(self):
        engine = DPCEngine(seq("A", "B").avg("B", "w").build())
        assert engine.result() is None

    def test_avg_aggregate(self):
        engine = DPCEngine(seq("A", "B").avg("B", "w").build())
        replay(
            engine,
            events_of(("A", 1), ("B", 2, {"w": 10}), ("B", 3, {"w": 4})),
        )
        assert engine.result() == 7.0

    def test_memory_is_constant(self):
        engine = DPCEngine(seq("A", "B", "C").build())
        replay(engine, events_of(*[("A", t) for t in range(1, 100)]))
        assert engine.current_objects() == 1

    def test_count_and_wsum(self):
        engine = DPCEngine(seq("A", "B").sum("B", "w").build())
        replay(engine, events_of(("A", 1), ("B", 2, {"w": 5})))
        assert engine.count_and_wsum() == (1, 5.0)
