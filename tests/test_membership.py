"""Elastic membership suite: the worker fleet may grow and shrink
mid-stream, merged results may not change by one bit.

The invariant under test is the split at the heart of the membership
layer: the **partition count** is fixed for the life of a query
(``shard_of`` never moves a key), while partition **ownership** is
elastic — a versioned routing table maps each partition to a registry
member, and joins, graceful leaves, and SIGKILL'd members are handled
by migrating partitions with an exact state handoff (quiesce at a
batch boundary, checkpoint, journal-suffix replay, atomic routing
flip). The differential matrix therefore churns the fleet mid-stream
— over the pipe transport with virtual local members and over framed
TCP with real worker processes — and pins the merged COUNT / SUM /
AVG / MAX / MIN / GROUP BY results against an uninterrupted
single-process reference.

Unit coverage rides along: the :class:`WorkerRegistry` state machine
(static members, workers-file hot reload, ``--advertise``
self-registration, liveness transitions), the engine's placement and
validation guards, the routing document in router checkpoints, and
the membership view surfaced through ``inspect()`` / ``/healthz``.
"""

from __future__ import annotations

import os
import re
import signal
import socket
import subprocess
import sys
import time

import pytest

from conftest import random_events
from repro.engine.engine import StreamEngine
from repro.events.event import Event
from repro.engine.sharded import ShardedStreamEngine
from repro.engine.transport import FramedChannel
from repro.errors import EngineError, TransportError
from repro.obs.inspect import health_snapshot
from repro.obs.registry import MetricsRegistry
from repro.query import parse_query
from repro.resilience.faults import FaultPlan, fault_seed
from repro.resilience.membership import (
    DEAD,
    JOIN,
    LEAVE,
    WorkerRegistry,
    _parse_member,
    registry_from_cli,
)
from repro.resilience.router_recovery import RouterLog, recover_router

SEEDS = [fault_seed(0) * 211 + offset for offset in (0, 1, 2)]

QUERIES = {
    "count": "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms GROUP BY g",
    "sum": "PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 40 ms GROUP BY g",
    "avg": "PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 40 ms GROUP BY g",
    "max": "PATTERN SEQ(A, B) AGG MAX(B.v) WITHIN 40 ms GROUP BY g",
    "min": "PATTERN SEQ(A, B) AGG MIN(B.v) WITHIN 40 ms GROUP BY g",
    "neg": "PATTERN SEQ(A, !C, B) AGG COUNT WITHIN 40 ms GROUP BY g",
}

ENGINE_SETTINGS = dict(
    shards=4,
    batch_size=32,
    heartbeat_interval_s=0.05,
    heartbeat_max_missed=2,
    checkpoint_every_batches=4,
)


def _attrs(rng, _event_type):
    return {"g": rng.randrange(16), "v": rng.randrange(1000)}


def _stream(plan: FaultPlan, count: int):
    return random_events(plan.rng, "ABC", count, attr_maker=_attrs)


def _reference(events) -> dict:
    engine = StreamEngine()
    for name, text in QUERIES.items():
        engine.register(parse_query(text), name=name)
    for event in events:
        engine.process(event)
    engine.advance_clock(events[-1].ts)
    return engine.results()


def _member_engine(fleet: WorkerRegistry, **overrides):
    settings = dict(ENGINE_SETTINGS, membership=fleet)
    settings.update(overrides)
    engine = ShardedStreamEngine(**settings)
    for name, text in QUERIES.items():
        engine.register(parse_query(text), name=name)
    return engine


def _wait_until(probe, timeout_s: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if probe():
            return True
        time.sleep(0.05)
    return bool(probe())


def _owner_loads(engine: ShardedStreamEngine) -> dict[str, int]:
    owners = engine.membership_view()["routing"]["owners"]
    return {owner: owners.count(owner) for owner in set(owners)}


# ----- registry state machine ------------------------------------------------


def test_parse_member_shapes():
    assert _parse_member("m-a") == ("m-a", None)
    assert _parse_member("10.0.0.1:9200") == (
        "10.0.0.1:9200", ("10.0.0.1", 9200)
    )
    assert _parse_member(":9200") == (
        "127.0.0.1:9200", ("127.0.0.1", 9200)
    )
    with pytest.raises(TransportError):
        _parse_member("host:not-a-port")


def test_registry_lifecycle_and_events():
    registry = WorkerRegistry(members=["m-a", "m-b"])
    try:
        assert [m.member_id for m in registry.live_members()] == [
            "m-a", "m-b"
        ]
        # Constructor admits are quiet: the engine should not treat
        # its initial fleet as a burst of joins.
        assert registry.poll() == []
        registry.register("m-c")
        registry.leave("m-a")
        registry.mark_dead("m-b")
        assert registry.poll() == [
            (JOIN, "m-c"), (LEAVE, "m-a"), (DEAD, "m-b"),
        ]
        assert registry.get("m-a").status == "left"
        assert registry.get("m-b").status == "dead"
        assert not registry.get("m-b").live
        # Retiring twice queues nothing new; a dead member can rejoin.
        registry.mark_dead("m-b")
        assert registry.poll() == []
        revived = registry.register("m-b")
        assert revived.live and revived.generation == 1
        assert registry.poll() == [(JOIN, "m-b")]
    finally:
        registry.close()


def test_registry_exports_membership_metrics():
    metrics = MetricsRegistry()
    registry = WorkerRegistry(members=["m-a"], registry=metrics)
    try:
        registry.register("m-b")
        registry.leave("m-a")
        registry.mark_dead("m-b")
        assert metrics.value("repro_membership_joins_total") == 2
        assert metrics.value("repro_membership_leaves_total") == 1
        assert metrics.value("repro_membership_deaths_total") == 1
        assert metrics.value("repro_membership_workers") == 0
    finally:
        registry.close()


def test_workers_file_hot_reload(tmp_path):
    workers_file = tmp_path / "workers.txt"
    workers_file.write_text(
        "# the fleet\nm-a\nm-b  # inline comment\n\n"
    )
    registry = WorkerRegistry(workers_file=workers_file)
    try:
        assert [m.member_id for m in registry.live_members()] == [
            "m-a", "m-b"
        ]
        assert registry.poll() == []  # initial load is quiet
        # Rewrite: m-b gone, m-c added. Force the mtime forward so the
        # change detector cannot miss a same-second rewrite.
        workers_file.write_text("m-a\nm-c\n")
        stamp = time.time() + 2
        os.utime(workers_file, (stamp, stamp))
        events = registry.poll()
        assert (JOIN, "m-c") in events
        assert (LEAVE, "m-b") in events
        assert registry.get("m-b").status == "left"
        # Members that joined by other means are not file-managed:
        # removing them from the file must not retire them.
        registry.register("m-x")
        registry.poll()
        workers_file.write_text("m-a\nm-c\n# unchanged\n")
        stamp += 2
        os.utime(workers_file, (stamp, stamp))
        assert registry.poll() == []
        assert registry.get("m-x").live
    finally:
        registry.close()


def test_registry_from_cli(tmp_path):
    assert registry_from_cli(None) is None
    with pytest.raises(TransportError):
        registry_from_cli(str(tmp_path / "missing.txt"))
    workers_file = tmp_path / "workers.txt"
    workers_file.write_text("m-a\n")
    registry = registry_from_cli(str(workers_file))
    try:
        assert [m.member_id for m in registry.live_members()] == ["m-a"]
    finally:
        registry.close()


def _join_frame(address: tuple[str, int], payload) -> tuple:
    sock = socket.create_connection(address, timeout=5.0)
    channel = FramedChannel(sock)
    try:
        channel.send(payload)
        assert channel.poll(5.0)
        return channel.recv()
    finally:
        channel.close()


def test_join_listener_registers_and_deregisters():
    registry = WorkerRegistry(token="s3cret")
    try:
        address = registry.listen("127.0.0.1", 0)
        status, member_id = _join_frame(
            address,
            ("join", {"address": "127.0.0.1:7700", "token": "s3cret",
                      "pid": 4242}),
        )
        assert (status, member_id) == ("ok", "127.0.0.1:7700")
        member = registry.get("127.0.0.1:7700")
        assert member.live and member.source == "advertised"
        assert member.pid == 4242
        status, _ = _join_frame(
            address,
            ("leave", {"address": "127.0.0.1:7700", "token": "s3cret"}),
        )
        assert status == "ok"
        assert registry.get("127.0.0.1:7700").status == "left"
        assert registry.poll() == [
            (JOIN, "127.0.0.1:7700"), (LEAVE, "127.0.0.1:7700"),
        ]
    finally:
        registry.close()


def test_join_listener_rejects_bad_tokens_and_frames():
    registry = WorkerRegistry(token="s3cret")
    try:
        address = registry.listen("127.0.0.1", 0)
        status, detail = _join_frame(
            address,
            ("join", {"address": "127.0.0.1:7701", "token": "wrong"}),
        )
        assert (status, detail) == ("error", "token mismatch")
        status, _ = _join_frame(address, "not even a tuple")
        assert status == "error"
        status, _ = _join_frame(
            address, ("reboot", {"token": "s3cret", "address": "x:1"})
        )
        assert status == "error"
        assert registry.live_members() == []
    finally:
        registry.close()


def _spawn_worker(*extra: str) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro.shard_worker",
            "--listen", "127.0.0.1:0", *extra,
        ],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"listening on ([\d.]+:\d+)", line)
    assert match, f"worker never announced its port: {line!r}"
    return process, match.group(1)


def test_worker_advertise_joins_then_leaves_on_orphan_exit():
    """The full self-registration loop: ``--advertise`` joins the
    registry, and the orphan exit (no router ever shows up) sends the
    best-effort leave on the way out."""
    registry = WorkerRegistry()
    worker = None
    try:
        host, port = registry.listen("127.0.0.1", 0)
        worker, address = _spawn_worker(
            "--advertise", f"{host}:{port}", "--orphan-timeout", "1",
        )
        seen: list[tuple[str, str]] = []
        assert _wait_until(
            lambda: seen.extend(registry.poll())
            or (JOIN, address) in seen
        ), "worker never advertised itself"
        assert registry.get(address).live
        assert worker.wait(timeout=30) == 0  # orphan budget exit
        assert _wait_until(
            lambda: seen.extend(registry.poll())
            or (LEAVE, address) in seen
        ), "orphan exit never de-registered the worker"
    finally:
        if worker is not None and worker.poll() is None:
            worker.kill()
            worker.wait(timeout=10)
        registry.close()


# ----- engine placement and guards -------------------------------------------


def test_membership_requires_supervision():
    registry = WorkerRegistry(members=["m-a"])
    try:
        with pytest.raises(ValueError):
            ShardedStreamEngine(
                shards=2, membership=registry, supervise=False
            )
    finally:
        registry.close()


def test_empty_static_fleet_fails_fast():
    """No members and no way to gain any: first start must not hang."""
    fleet = WorkerRegistry(members=[])
    engine = _member_engine(fleet, shards=2)
    try:
        with pytest.raises(EngineError, match="no live members"):
            engine.process(Event("A", 1, {"g": 0, "v": 1}))
    finally:
        engine.close()
        fleet.close()


def test_empty_growable_fleet_waits_for_the_first_member():
    """The cold-start race: a router launched alongside --advertise
    workers must wait out the empty fleet, not fail its first ingest
    because nobody dialed in yet."""
    import threading

    fleet = WorkerRegistry(members=[])
    fleet.listen("127.0.0.1", 0)  # growable: a join listener is open
    engine = _member_engine(fleet, shards=2, membership_wait_s=10.0)
    threading.Timer(
        0.4, lambda: fleet.register("m-late", source="static")
    ).start()
    try:
        plan = FaultPlan(SEEDS[0])
        events = _stream(plan, 120)
        for event in events:
            engine.process(event)
        assert engine.results() == _reference(events)
        assert set(engine.membership_view()["routing"]["owners"]) == {
            "m-late"
        }
    finally:
        engine.close()
        fleet.close()


def test_initial_routing_and_membership_view():
    registry = WorkerRegistry(members=["m-a", "m-b"])
    engine = _member_engine(registry)
    try:
        engine.process(next(iter(_stream(FaultPlan(SEEDS[0]), 1))))
        view = engine.membership_view()
        assert view["routing"]["owners"] == ["m-a", "m-b", "m-a", "m-b"]
        assert view["routing"]["version"] == 0
        assert view["live"] == 2
        assert view["migrations"] == 0
        state = engine.inspect()
        assert state["membership"]["routing"]["owners"] == (
            view["routing"]["owners"]
        )
        assert state["routing_version"] == 0
        health = health_snapshot(engine)
        assert health["membership"]["live"] == 2
    finally:
        engine.close()
        registry.close()
    # Without a registry the view is absent, not empty.
    with ShardedStreamEngine(shards=2) as bare:
        assert bare.membership_view() is None
        assert "membership" not in health_snapshot(bare)


def test_migrate_partition_guards():
    plan = FaultPlan(SEEDS[1])
    events = _stream(plan, 10)
    with ShardedStreamEngine(shards=2) as bare:
        bare.register(parse_query(QUERIES["count"]), name="count")
        bare.process(events[0])
        with pytest.raises(EngineError):
            bare.migrate_partition(0, "anywhere")
    registry = WorkerRegistry(members=["m-a", "m-b"])
    engine = _member_engine(registry)
    try:
        with pytest.raises(EngineError):
            engine.migrate_partition(0, "m-b")  # not started yet
        for event in events:
            engine.process(event)
        with pytest.raises(EngineError):
            engine.migrate_partition(99, "m-b")
        with pytest.raises(EngineError):
            engine.migrate_partition(0, "not-a-member")
        registry.leave("m-b")
        with pytest.raises(EngineError):
            engine.migrate_partition(0, "m-b")  # not live
        owner = engine.membership_view()["routing"]["owners"][0]
        assert engine.migrate_partition(0, owner) == 0.0  # no-op
        assert engine.routing_version == 0
    finally:
        engine.close()
        registry.close()


def test_explicit_migration_moves_state_exactly():
    """One hand-driven ``migrate_partition``: the moved partition keeps
    its counts, the routing version bumps, the metrics record it."""
    metrics = MetricsRegistry()
    plan = FaultPlan(SEEDS[2])
    events = _stream(plan, 600)
    expected = _reference(events)
    registry = WorkerRegistry(members=["m-a", "m-b"], registry=metrics)
    engine = _member_engine(registry, registry=metrics)
    try:
        for event in events[:400]:
            engine.process(event)
        pause = engine.migrate_partition(0, "m-b")
        assert pause > 0.0
        assert engine.membership_view()["routing"]["owners"][0] == "m-b"
        assert engine.routing_version == 1
        assert engine.migrations == 1
        for event in events[400:]:
            engine.process(event)
        assert engine.results() == expected
        assert metrics.value("repro_migration_total") == 1
        assert metrics.value("repro_membership_routing_version") == 1
        assert metrics.flat()["repro_migration_pause_us_count"] == 1
    finally:
        engine.close()
        registry.close()


# ----- the differential churn matrix -----------------------------------------


def _churn_run(transport: str, seed: int) -> None:
    """Join at one third, graceful leave at two thirds, both handled by
    the live engine (heartbeat tick or direct poll), results exact."""
    plan = FaultPlan(seed)
    events = _stream(plan, 900)
    expected = _reference(events)
    registry = WorkerRegistry(members=["m-a", "m-b"])
    engine = _member_engine(registry, transport=transport)
    try:
        for index, event in enumerate(events):
            engine.process(event)
            if index == 300:
                registry.register("m-c")
                engine.poll_membership()
            elif index == 600:
                registry.leave("m-a")
                engine.poll_membership()
        assert _wait_until(lambda: (
            engine.poll_membership() is not None
            and engine.migrations >= 2
        )), "membership churn never completed its migrations"
        owners = engine.membership_view()["routing"]["owners"]
        assert "m-a" not in owners, "a left member still owns partitions"
        assert engine.routing_version >= 2
        assert engine.results() == expected
    finally:
        engine.close()
        registry.close()


@pytest.mark.parametrize("seed", SEEDS)
def test_membership_churn_is_exact_over_pipes(seed):
    _churn_run("pipe", seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_membership_churn_is_exact_over_tcp(seed):
    _churn_run("tcp", seed)


@pytest.mark.parametrize("transport", ["pipe", "tcp"])
def test_dead_member_reroutes_exactly(transport):
    """A member declared permanently dead mid-stream: its partitions
    re-place from checkpoints + journal suffixes, results exact."""
    plan = FaultPlan(SEEDS[0])
    events = _stream(plan, 900)
    expected = _reference(events)
    registry = WorkerRegistry(members=["m-a", "m-b"])
    engine = _member_engine(registry, transport=transport)
    try:
        for index, event in enumerate(events):
            engine.process(event)
            if index == 450:
                registry.mark_dead("m-b")
        assert _wait_until(lambda: (
            engine.poll_membership() is not None
            and engine.migrations >= 2
        )), "dead-member evacuation never completed"
        owners = engine.membership_view()["routing"]["owners"]
        assert set(owners) == {"m-a"}
        assert engine.results() == expected
    finally:
        engine.close()
        registry.close()


def test_join_rebalance_moves_minimal_partitions():
    """A join pulls partitions only while the move strictly reduces
    imbalance — one migration for a 4-partition, 2→3 member fleet."""
    plan = FaultPlan(SEEDS[1])
    events = _stream(plan, 400)
    registry = WorkerRegistry(members=["m-a", "m-b"])
    engine = _member_engine(registry)
    try:
        for event in events[:200]:
            engine.process(event)
        registry.register("m-c")
        assert _wait_until(lambda: (
            engine.poll_membership() is not None
            and engine.migrations >= 1
        ))
        loads = _owner_loads(engine)
        assert loads == {"m-a": 1, "m-b": 2, "m-c": 1}
        # A second poll with no membership change moves nothing more.
        engine.poll_membership()
        assert engine.migrations == 1
        # And a second joiner with nothing to gain also moves nothing:
        # every donor is within one partition of the joiner.
        registry.register("m-d")
        assert _wait_until(lambda: (
            engine.poll_membership() is not None
            and _owner_loads(engine).get("m-d", 0) >= 1
        ))
        assert engine.migrations == 2
        assert max(_owner_loads(engine).values()) == 1
    finally:
        engine.close()
        registry.close()


def test_sigkilled_tcp_member_fails_over_exactly(tmp_path):
    """The real thing: external worker processes in a workers file, one
    hot-reload join, then SIGKILL of the most-loaded member mid-stream.
    The revive path marks it dead, the survivors absorb its partitions
    (least-loaded first), and merged results stay bit-identical."""
    plan = FaultPlan(SEEDS[2])
    events = _stream(plan, 900)
    expected = _reference(events)
    workers, addresses = [], []
    try:
        for _ in range(3):
            process, address = _spawn_worker("--orphan-timeout", "60")
            workers.append(process)
            addresses.append(address)
        workers_file = tmp_path / "workers.txt"
        workers_file.write_text("\n".join(addresses[:2]) + "\n")
        registry = WorkerRegistry(workers_file=workers_file)
        engine = _member_engine(registry, transport="tcp")
        try:
            killed = None
            for index, event in enumerate(events):
                engine.process(event)
                if index == 300:
                    # Hot-reload join: the third worker enters the file.
                    workers_file.write_text("\n".join(addresses) + "\n")
                    stamp = time.time() + 2
                    os.utime(workers_file, (stamp, stamp))
                elif index == 600:
                    owners = (
                        engine.membership_view()["routing"]["owners"]
                    )
                    killed = max(set(owners), key=owners.count)
                    victim = workers[addresses.index(killed)]
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.wait(timeout=10)
            assert _wait_until(lambda: (
                engine.poll_membership() is not None
                and killed not in
                engine.membership_view()["routing"]["owners"]
            )), "the killed member still owns partitions"
            assert engine.results() == expected
            assert not engine.degraded_shards
            assert registry.get(killed).status == "dead"
            # Every partition landed on a live survivor (placement
            # balance is best-effort when two revives race; exactness
            # and liveness are the contract).
            owners = engine.membership_view()["routing"]["owners"]
            live = {m.member_id for m in registry.live_members()}
            assert set(owners) <= live
        finally:
            engine.close()
            registry.close()
    finally:
        for process in workers:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


# ----- routing table in router checkpoints -----------------------------------


def _crash_router(engine: ShardedStreamEngine) -> None:
    """Leave behind exactly what a SIGKILL'd router leaves (the same
    recipe as the router-recovery suite): dead workers, un-closed
    journals, no flush, no checkpoint."""
    monitor = engine._monitor
    if monitor is not None:
        monitor._revive = lambda shard, reason: None
        monitor.stop()
        engine._monitor = None
    for worker in engine._workers:
        process = worker.process
        if process is not None and process.is_alive():
            os.kill(process.pid, signal.SIGKILL)
    for worker in engine._workers:
        if worker.process is not None:
            worker.process.join(timeout=10)
    engine._closed = True


def test_routing_table_rides_router_checkpoints(tmp_path):
    """Routing-table versioning end to end: migrate, crash the router,
    recover with the same fleet — the recovered engine honors the
    checkpointed owners and version, and finishes the stream exactly."""
    plan = FaultPlan(SEEDS[0])
    events = _stream(plan, 900)
    expected = _reference(events)
    registry = WorkerRegistry(members=["m-a", "m-b"])
    engine = _member_engine(
        registry,
        journal_dir=tmp_path / "shards",
        router_checkpoint_every=100,
    )
    engine.attach_router_log(RouterLog(tmp_path, lanes=2))
    for event in events[:300]:
        engine.process(event)
    registry.register("m-c")
    assert _wait_until(lambda: (
        engine.poll_membership() is not None and engine.migrations >= 1
    ))
    for event in events[300:600]:
        engine.process(event)
    engine.flush()
    owners_before = list(engine.membership_view()["routing"]["owners"])
    version_before = engine.routing_version
    assert version_before >= 1
    document = engine.router_checkpoint()
    assert document["router"]["routing"] == {
        "version": version_before, "owners": owners_before,
    }
    _crash_router(engine)
    registry.close()
    fleet = WorkerRegistry(members=["m-a", "m-b", "m-c"])
    settings = dict(ENGINE_SETTINGS)
    settings.pop("shards")
    recovered = recover_router(
        tmp_path, membership=fleet, **settings
    )
    try:
        assert recovered.routing_version >= version_before
        view = recovered.membership_view()
        assert view["routing"]["owners"] == owners_before
        for event in events[recovered.metrics.events:]:
            recovered.process(event)
        assert recovered.results() == expected
    finally:
        recovered.close()
        fleet.close()


def test_recovery_replaces_owners_that_never_returned(tmp_path):
    """Recovery with a *shrunken* fleet: owners missing from the new
    registry are re-placed round-robin over whoever is live, and the
    journals still replay every partition exactly."""
    plan = FaultPlan(SEEDS[1])
    events = _stream(plan, 700)
    expected = _reference(events)
    registry = WorkerRegistry(members=["m-a", "m-b"])
    engine = _member_engine(
        registry,
        journal_dir=tmp_path / "shards",
        router_checkpoint_every=100,
    )
    engine.attach_router_log(RouterLog(tmp_path, lanes=2))
    for event in events[:450]:
        engine.process(event)
    engine.flush()
    _crash_router(engine)
    registry.close()
    fleet = WorkerRegistry(members=["m-b", "m-z"])  # m-a never returns
    settings = dict(ENGINE_SETTINGS)
    settings.pop("shards")
    recovered = recover_router(tmp_path, membership=fleet, **settings)
    try:
        owners = recovered.membership_view()["routing"]["owners"]
        assert "m-a" not in owners
        assert set(owners) <= {"m-b", "m-z"}
        for event in events[recovered.metrics.events:]:
            recovered.process(event)
        assert recovered.results() == expected
    finally:
        recovered.close()
        fleet.close()
