"""Structured logging: JSON records, text mode, rate limiting."""

import io
import json

import pytest

from repro.obs.logging import (
    LogConfig,
    StructLogger,
    configure,
    get_logger,
    install_config,
)


@pytest.fixture
def stream():
    """Capture log output; always restore the global config after."""
    captured = io.StringIO()
    previous = install_config(LogConfig(stream=captured))
    yield captured
    install_config(previous)


def lines(stream):
    return [line for line in stream.getvalue().splitlines() if line]


class TestTextMode:
    def test_message_keeps_cli_prefix(self, stream):
        get_logger("cli").info("stats", message="stats events=1,000")
        assert lines(stream) == ["# stats events=1,000"]

    def test_fields_render_without_message(self, stream):
        get_logger("cli").info("quarantine", query="q3", failures=5)
        assert lines(stream) == ["# quarantine query=q3 failures=5"]

    def test_bare_event(self, stream):
        get_logger("cli").info("started")
        assert lines(stream) == ["# started"]


class TestJsonMode:
    def test_record_shape(self, stream):
        install_config(LogConfig(stream=stream, json_mode=True))
        get_logger("supervisor").warning(
            "quarantine", message="quarantined q3", query="q3", failures=5
        )
        (line,) = lines(stream)
        record = json.loads(line)
        assert record["level"] == "warning"
        assert record["subsystem"] == "supervisor"
        assert record["event"] == "quarantine"
        assert record["message"] == "quarantined q3"
        assert record["query"] == "q3"
        assert record["failures"] == 5
        assert isinstance(record["ts"], float)

    def test_non_serializable_fields_coerced(self, stream):
        install_config(LogConfig(stream=stream, json_mode=True))
        get_logger("x").info("evt", path=object())
        record = json.loads(lines(stream)[0])
        assert "object object" in record["path"]


class TestLevels:
    def test_below_threshold_suppressed(self, stream):
        get_logger("cli").debug("noise")
        assert lines(stream) == []

    def test_level_lowered_by_configure(self, stream):
        install_config(LogConfig(stream=stream, level="debug"))
        get_logger("cli").debug("noise")
        assert lines(stream) == ["# noise"]

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            LogConfig(level="loud")


class TestRateLimiting:
    def test_burst_caps_output_and_counts_drops(self, stream):
        install_config(
            LogConfig(stream=stream, rate_per_s=0.001, burst=5)
        )
        logger = StructLogger("noisy")
        for i in range(50):
            logger.info("tick", i=i)
        emitted = lines(stream)
        assert len(emitted) == 5
        assert logger.records_emitted == 5
        assert logger.records_dropped == 45

    def test_dropped_count_carried_on_next_record(self, stream):
        install_config(
            LogConfig(stream=stream, json_mode=True, rate_per_s=1000.0,
                      burst=2)
        )
        logger = StructLogger("noisy")
        for i in range(10):
            logger.info("tick", i=i)
        # burn the refilled tokens' worth of wall time: force a refill
        logger._tokens = 1.0
        logger.info("after")
        records = [json.loads(line) for line in lines(stream)]
        assert records[-1]["event"] == "after"
        assert records[-1]["dropped"] == 8

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            LogConfig(rate_per_s=0)
        with pytest.raises(ValueError):
            LogConfig(burst=0)


class TestLoggerRegistry:
    def test_get_logger_is_cached_per_subsystem(self):
        assert get_logger("alpha") is get_logger("alpha")
        assert get_logger("alpha") is not get_logger("beta")

    def test_broken_stream_never_raises(self):
        class Broken:
            def write(self, text):
                raise OSError("disk full")

        previous = install_config(LogConfig(stream=Broken()))
        try:
            logger = StructLogger("x")
            logger.info("evt")  # must not raise
            assert logger.records_dropped == 1
        finally:
            install_config(previous)

    def test_configure_returns_previous_config(self):
        first = configure(level="error")
        second = configure(level=first.level)
        assert second.level == "error"
        install_config(first)
