"""Differential pinning: fast paths vs the reference engine.

The reference single-event :class:`StreamEngine` is the correctness
oracle (itself pinned to the brute-force oracle in
``test_differential.py``). Every fast path introduced by the batched +
sharded execution work must produce *identical* results:

* routed (type-indexed dispatch);
* routed + micro-batched (``process_batch`` / ``run(batch_size=...)``);
* routed + batched + vectorized;
* :class:`ShardedStreamEngine` across 2 worker processes.

Streams are seeded with the chaos-seed convention (``REPRO_FAULT_SEED``
shifts the base, CI sweeps 0/1/2) and attribute values are small
integers so float addition order cannot mask a real divergence — sums
of small ints are exact in binary floating point, making "equal" mean
bit-identical.
"""

import random

import pytest

from conftest import random_events
from repro.engine.engine import StreamEngine
from repro.engine.sharded import ShardedStreamEngine
from repro.events.event import Event
from repro.query import parse_query
from repro.resilience.faults import fault_seed

SEEDS = [fault_seed(0) * 101 + offset for offset in (0, 1, 2)]

GROUPED_QUERIES = [
    "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms GROUP BY g",
    "PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 60 ms GROUP BY g",
    "PATTERN SEQ(A, B, C) AGG AVG(C.v) WITHIN 80 ms GROUP BY g",
    "PATTERN SEQ(A, C) AGG MAX(C.v) WITHIN 50 ms GROUP BY g",
    "PATTERN SEQ(B, C) AGG MIN(C.v) WITHIN 50 ms GROUP BY g",
    "PATTERN SEQ(A, !N, B) AGG COUNT WITHIN 70 ms GROUP BY g",
]

FLAT_QUERIES = [
    "PATTERN SEQ(A, B) AGG COUNT WITHIN 40 ms",
    "PATTERN SEQ(A, C) AGG SUM(C.v) WITHIN 60 ms",
    "PATTERN SEQ(A, B, C) AGG AVG(C.v) WITHIN 80 ms",
    "PATTERN SEQ(B, C) AGG MAX(C.v) WITHIN 50 ms",
    "PATTERN SEQ(A, C) AGG MIN(C.v) WITHIN 50 ms",
    "PATTERN SEQ(A, !N, C) AGG COUNT WITHIN 70 ms",
    "PATTERN SEQ(A, B) AGG COUNT",  # unwindowed: DPC
]


def _grouped_stream(seed, count=1500, groups=7):
    rng = random.Random(seed)
    events = random_events(
        rng,
        ["A", "B", "C", "Z"],
        count,
        attr_maker=lambda r, t: {
            "g": r.randint(0, groups - 1), "v": r.randint(1, 9)
        },
    )
    # Sprinkle keyless negative instances so the broadcast lane is
    # exercised on every seed.
    for index in range(50, len(events), 97):
        events[index] = Event("N", events[index].ts)
    return events


def _flat_stream(seed, count=1500):
    rng = random.Random(seed)
    return random_events(
        rng,
        ["A", "B", "C", "N", "Z"],
        count,
        attr_maker=lambda r, t: {"v": r.randint(1, 9)},
    )


def _reference_results(queries, events):
    engine = StreamEngine()
    for index, text in enumerate(queries):
        engine.register(parse_query(text), name=f"q{index}")
    engine.run(events)
    return engine.results()


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("vectorized", [False, True])
def test_batched_pipeline_matches_reference(seed, vectorized):
    events = _flat_stream(seed)
    expected = _reference_results(FLAT_QUERIES, events)
    engine = StreamEngine(routed=True, vectorized=vectorized)
    for index, text in enumerate(FLAT_QUERIES):
        engine.register(parse_query(text), name=f"q{index}")
    engine.run(events, batch_size=113)
    assert engine.results() == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_batched_grouped_matches_reference(seed):
    events = _grouped_stream(seed)
    expected = _reference_results(GROUPED_QUERIES, events)
    engine = StreamEngine(routed=True)
    for index, text in enumerate(GROUPED_QUERIES):
        engine.register(parse_query(text), name=f"q{index}")
    engine.run(events, batch_size=64)
    assert engine.results() == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_matches_single_process(seed):
    events = _grouped_stream(seed)
    expected = _reference_results(GROUPED_QUERIES, events)
    with ShardedStreamEngine(shards=2, batch_size=128) as engine:
        for index, text in enumerate(GROUPED_QUERIES):
            engine.register(parse_query(text), name=f"q{index}")
        engine.run(events)
        assert engine.results() == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_mixed_lanes_match_single_process(seed):
    # Grouped queries shard; flat queries ride the local lane — both
    # lanes must agree with the reference on the same stream.
    events = _grouped_stream(seed)
    queries = GROUPED_QUERIES[:3] + FLAT_QUERIES[:3]
    expected = _reference_results(queries, events)
    with ShardedStreamEngine(shards=2, batch_size=64) as engine:
        for index, text in enumerate(queries):
            engine.register(parse_query(text), name=f"q{index}")
        engine.run(events)
        assert engine.results() == expected


@pytest.mark.parametrize("seed", SEEDS)
def test_equivalence_chain_shards_match_single_process(seed):
    # HPC via equivalence predicate (not GROUP BY): scalar results
    # composed across shards.
    queries = [
        "PATTERN SEQ(A, B) AGG COUNT WITHIN 60 ms WHERE A.g = B.g",
        "PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 60 ms WHERE A.g = B.g",
    ]
    rng = random.Random(seed)
    events = random_events(
        rng,
        ["A", "B"],
        1200,
        attr_maker=lambda r, t: {
            "g": r.randint(0, 5), "v": r.randint(1, 9)
        },
    )
    expected = _reference_results(queries, events)
    with ShardedStreamEngine(shards=2, batch_size=100) as engine:
        for index, text in enumerate(queries):
            engine.register(parse_query(text), name=f"q{index}")
        engine.run(events)
        assert engine.results() == expected


def test_batch_boundary_sweep_never_changes_results():
    # The same stream under many batch sizes, including size 1 and a
    # size larger than the stream, must always agree.
    events = _flat_stream(fault_seed(0) + 17, count=400)
    expected = _reference_results(FLAT_QUERIES, events)
    for batch_size in (1, 2, 7, 64, 1000):
        engine = StreamEngine(routed=True)
        for index, text in enumerate(FLAT_QUERIES):
            engine.register(parse_query(text), name=f"q{index}")
        engine.run(events, batch_size=batch_size)
        assert engine.results() == expected, f"batch_size={batch_size}"


def test_shard_count_sweep_never_changes_results():
    events = _grouped_stream(fault_seed(0) + 23, count=800)
    expected = _reference_results(GROUPED_QUERIES[:3], events)
    for shards in (1, 2, 3):
        with ShardedStreamEngine(shards=shards, batch_size=90) as engine:
            for index, text in enumerate(GROUPED_QUERIES[:3]):
                engine.register(parse_query(text), name=f"q{index}")
            engine.run(events)
            assert engine.results() == expected, f"shards={shards}"
