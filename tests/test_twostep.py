"""The stack-based two-step baseline (paper Sec. 2.2)."""

import pytest

from conftest import events_of, replay
from repro.baseline.matcher import StackMatcher
from repro.baseline.stacks import EventStack
from repro.baseline.twostep import TwoStepEngine, _MatchStore
from repro.errors import PredicateError, QueryError
from repro.events import Event
from repro.query import seq


class TestEventStack:
    def test_push_and_rip(self):
        stack = EventStack("A")
        stack.push(Event("A", 1), rip=0)
        stack.push(Event("A", 2), rip=3)
        assert len(stack) == 2
        assert stack.total_inserted == 2

    def test_purge_advances_offset(self):
        stack = EventStack("A")
        for ts in (1, 2, 3):
            stack.push(Event("A", ts), rip=0)
        dropped = stack.purge_expired(now=7, window_ms=5)
        assert dropped == 2  # ts 1 and 2 died (ts + 5 <= 7)
        assert len(stack) == 1
        assert stack.total_inserted == 3

    def test_live_below_respects_purge(self):
        stack = EventStack("A")
        for ts in (1, 2, 3):
            stack.push(Event("A", ts), rip=0)
        stack.purge_expired(now=7, window_ms=5)
        visible = [e.event.ts for e in stack.live_below(rip=3)]
        assert visible == [3]

    def test_live_below_zero(self):
        stack = EventStack("A")
        stack.push(Event("A", 1), rip=0)
        assert list(stack.live_below(0)) == []

    def test_newest(self):
        stack = EventStack("A")
        assert stack.newest() is None
        stack.push(Event("A", 1), rip=0)
        assert stack.newest().event.ts == 1


class TestStackMatcher:
    def test_paper_example_1_figure_1(self):
        """(TypeUsername, TypePassword, ClickSubmit) WITHIN 5 (unit ts):
        c3 forms <a1,b2,c3>; c4 adds <a1,b2,c4>; b6 expires a1."""
        query = seq("U", "P", "C").count().within(ms=5).build()
        engine = TwoStepEngine(query)
        outputs = replay(
            engine,
            events_of(("U", 1), ("P", 2), ("C", 3), ("C", 4)),
        )
        assert outputs == [1, 2]
        engine.process(Event("P", 6))  # u1 (exp 6) purged
        assert engine.result() == 0

    def test_matcher_returns_new_matches_only(self):
        query = seq("A", "B").count().build()
        matcher = StackMatcher(query)
        assert matcher.process(Event("A", 1)) == []
        first = matcher.process(Event("B", 2))
        assert len(first) == 1
        second = matcher.process(Event("B", 3))
        assert len(second) == 1  # only (a1, b3), not (a1, b2) again

    def test_equal_timestamps_do_not_chain(self):
        query = seq("A", "B").count().build()
        matcher = StackMatcher(query)
        matcher.process(Event("A", 5))
        assert matcher.process(Event("B", 5)) == []

    def test_negation_post_filter(self):
        query = seq("A", "!N", "B").count().build()
        matcher = StackMatcher(query)
        matcher.process(Event("A", 1))
        matcher.process(Event("N", 2))
        assert matcher.process(Event("B", 3)) == []
        matcher.process(Event("A", 4))
        assert len(matcher.process(Event("B", 5))) == 1

    def test_equivalence_checked_during_dfs(self):
        query = seq("A", "B").where_equal("id").build()
        matcher = StackMatcher(query)
        matcher.process(Event("A", 1, {"id": 1}))
        matcher.process(Event("A", 2, {"id": 2}))
        matches = matcher.process(Event("B", 3, {"id": 1}))
        assert len(matches) == 1
        assert matches[0][0].ts == 1

    def test_edges_explored_accumulates(self):
        query = seq("A", "B").count().build()
        matcher = StackMatcher(query)
        for ts in range(1, 6):
            matcher.process(Event("A", ts))
        matcher.process(Event("B", 10))
        assert matcher.edges_explored == 5

    def test_repeated_type_positions(self):
        query = seq("A", "A").count().build()
        matcher = StackMatcher(query)
        matcher.process(Event("A", 1))
        matches = matcher.process(Event("A", 2))
        assert len(matches) == 1


class TestMatchStore:
    def test_count_and_sum_expire(self):
        store = _MatchStore(window_ms=5)
        store.add(1, 10.0)
        store.add(3, 5.0)
        store.purge(now=6)  # start_ts 1 dies at 6
        assert store.count == 1
        assert store.total == 5.0

    def test_extremum_lazy_heap(self):
        store = _MatchStore(window_ms=5, extremum_sign=1)
        store.add(1, 100.0)
        store.add(3, 7.0)
        assert store.extremum(now=4) == 100.0
        assert store.extremum(now=6) == 7.0
        assert store.extremum(now=100) is None

    def test_min_extremum(self):
        store = _MatchStore(window_ms=None, extremum_sign=-1)
        store.add(1, 5.0)
        store.add(2, 9.0)
        assert store.extremum(now=10) == 5.0

    def test_extremum_requires_enablement(self):
        store = _MatchStore(window_ms=None)
        with pytest.raises(QueryError):
            store.extremum(now=1)


class TestTwoStepEngine:
    def test_group_by(self):
        query = seq("A", "B").group_by("ip").count().build()
        engine = TwoStepEngine(query)
        replay(
            engine,
            events_of(
                ("A", 1, {"ip": "x"}), ("B", 2, {"ip": "x"}),
                ("A", 3, {"ip": "y"}),
            ),
        )
        assert engine.result() == {"x": 1, "y": 0}

    def test_group_by_missing_attribute_raises(self):
        query = seq("A", "B").group_by("ip").count().build()
        engine = TwoStepEngine(query)
        with pytest.raises(PredicateError):
            engine.process(Event("A", 1))

    def test_aggregates(self):
        base = events_of(
            ("A", 1), ("B", 2, {"w": 10}), ("B", 3, {"w": 4})
        )
        sums = TwoStepEngine(seq("A", "B").sum("B", "w").build())
        replay(sums, base)
        assert sums.result() == 14
        avgs = TwoStepEngine(seq("A", "B").avg("B", "w").build())
        replay(avgs, base)
        assert avgs.result() == 7
        maxs = TwoStepEngine(seq("A", "B").max("B", "w").build())
        replay(maxs, base)
        assert maxs.result() == 10

    def test_matches_materialized_counts_work(self):
        engine = TwoStepEngine(seq("A", "B").count().build())
        replay(engine, events_of(("A", 1), ("A", 2), ("B", 3)))
        assert engine.matches_materialized == 2

    def test_peak_objects_grow_with_stacks(self):
        engine = TwoStepEngine(seq("A", "B").count().within(ms=100).build())
        replay(engine, events_of(*[("A", t) for t in range(1, 11)]))
        assert engine.peak_objects >= 20  # 10 entries + 10 pointers

    def test_aggregate_attribute_missing_raises(self):
        engine = TwoStepEngine(seq("A", "B").sum("B", "w").build())
        engine.process(Event("A", 1))
        with pytest.raises(PredicateError):
            engine.process(Event("B", 2))


class TestDeferredNegation:
    """The paper's later-filter-step: keep everything, filter at output."""

    def q(self, win=None):
        builder = seq("A", "!N", "B").count()
        if win:
            builder = builder.within(ms=win)
        return builder.build()

    def test_same_answer_as_eager(self):
        events = events_of(
            ("A", 1), ("N", 2), ("B", 3), ("A", 4), ("B", 5)
        )
        eager = TwoStepEngine(self.q())
        deferred = TwoStepEngine(self.q(), negation_mode="deferred")
        replay(eager, events)
        replay(deferred, events)
        assert eager.result() == deferred.result() == 1

    def test_retains_filtered_matches(self):
        """Deferred mode materializes matches eager mode never stores."""
        events = events_of(("A", 1), ("N", 2), ("B", 3))
        eager = TwoStepEngine(self.q())
        deferred = TwoStepEngine(self.q(), negation_mode="deferred")
        replay(eager, events)
        replay(deferred, events)
        assert eager.matches_materialized == 0
        assert deferred.matches_materialized == 1
        assert deferred.current_objects() > eager.current_objects()

    def test_windowed_deferred_matches_oracle(self, rng):
        from conftest import assert_matches_oracle, random_events

        query = self.q(win=12)
        for _ in range(40):
            events = random_events(rng, ["A", "B", "N"], 25)
            assert_matches_oracle(
                query,
                [TwoStepEngine(query, negation_mode="deferred")],
                events,
            )

    def test_deferred_mode_count_only(self):
        query = seq("A", "!N", "B").sum("B", "w").build()
        with pytest.raises(QueryError):
            TwoStepEngine(query, negation_mode="deferred")

    def test_bad_mode_rejected(self):
        with pytest.raises(QueryError):
            TwoStepEngine(self.q(), negation_mode="lazy")

    def test_deferred_without_negation_is_plain(self):
        query = seq("A", "B").count().build()
        engine = TwoStepEngine(query, negation_mode="deferred")
        replay(engine, events_of(("A", 1), ("B", 2)))
        assert engine.result() == 1
