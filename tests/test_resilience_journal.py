"""Event journal: append/replay, CRC, rotation, torn-tail tolerance."""

import pytest

from repro.errors import JournalError
from repro.events import Event
from repro.obs.registry import MetricsRegistry
from repro.resilience.faults import FaultPlan, tear_journal_tail
from repro.resilience.journal import (
    EventJournal,
    decode_record,
    encode_record,
    list_segments,
    read_journal,
)


def some_events(n, with_attrs=True):
    return [
        Event(
            "ABC"[i % 3],
            i + 1,
            {"id": i % 4, "w": float(i)} if with_attrs and i % 2 else None,
        )
        for i in range(n)
    ]


def test_append_then_read_round_trips_events(tmp_path):
    events = some_events(50)
    with EventJournal(tmp_path) as journal:
        for event in events:
            journal.append(event)
    replayed = [event for _, event in read_journal(tmp_path)]
    assert replayed == events
    assert [seq for seq, _ in read_journal(tmp_path)] == list(range(50))


def test_read_from_offset_skips_prefix(tmp_path):
    events = some_events(30)
    with EventJournal(tmp_path) as journal:
        for event in events:
            journal.append(event)
    suffix = [event for _, event in read_journal(tmp_path, start_seq=21)]
    assert suffix == events[21:]


def test_segments_rotate_and_replay_in_order(tmp_path):
    events = some_events(200)
    with EventJournal(tmp_path, segment_bytes=512) as journal:
        for event in events:
            journal.append(event)
    segments = list_segments(tmp_path)
    assert len(segments) > 3
    assert [event for _, event in read_journal(tmp_path)] == events
    # offset replay can start inside a late segment
    assert [
        event for _, event in read_journal(tmp_path, start_seq=150)
    ] == events[150:]


def test_reopen_continues_sequence(tmp_path):
    with EventJournal(tmp_path) as journal:
        for event in some_events(10):
            journal.append(event)
    with EventJournal(tmp_path) as journal:
        assert journal.next_seq == 10
        journal.append(Event("X", 99))
    seqs = [seq for seq, _ in read_journal(tmp_path)]
    assert seqs == list(range(11))


def test_torn_tail_is_tolerated_by_reader(tmp_path):
    events = some_events(40)
    with EventJournal(tmp_path) as journal:
        for event in events:
            journal.append(event)
    dropped = tear_journal_tail(tmp_path, drop_bytes=7)
    assert dropped == 7
    replayed = [event for _, event in read_journal(tmp_path)]
    assert replayed == events[:39]  # only the final record is lost


def test_torn_tail_is_truncated_on_reopen(tmp_path):
    events = some_events(20)
    with EventJournal(tmp_path) as journal:
        for event in events:
            journal.append(event)
    tear_journal_tail(tmp_path, drop_bytes=3)
    with EventJournal(tmp_path) as journal:
        assert journal.next_seq == 19  # torn record 19 was discarded
        journal.append(Event("Z", 1000))
    replayed = [event for _, event in read_journal(tmp_path)]
    assert replayed[:-1] == events[:19]
    assert replayed[-1].event_type == "Z"


def test_mid_stream_corruption_raises(tmp_path):
    with EventJournal(tmp_path, segment_bytes=256) as journal:
        for event in some_events(120):
            journal.append(event)
    segments = list_segments(tmp_path)
    assert len(segments) >= 2
    victim = segments[0]
    data = bytearray(victim.read_bytes())
    data[len(data) // 2] ^= 0xFF
    victim.write_bytes(bytes(data))
    with pytest.raises(JournalError):
        list(read_journal(tmp_path))


def test_missing_segment_raises_sequence_gap(tmp_path):
    with EventJournal(tmp_path, segment_bytes=256) as journal:
        for event in some_events(120):
            journal.append(event)
    segments = list_segments(tmp_path)
    assert len(segments) >= 3
    segments[1].unlink()
    with pytest.raises(JournalError):
        list(read_journal(tmp_path))


def test_crc_rejects_bit_flip():
    line = encode_record(7, Event("A", 3, {"x": 1}))
    flipped = line.replace('"x":1', '"x":2')
    with pytest.raises(JournalError):
        decode_record(flipped)
    assert decode_record(line)[0] == 7


@pytest.mark.parametrize("fsync", ["never", "interval", "always"])
def test_fsync_policies_all_persist(tmp_path, fsync):
    events = some_events(25)
    journal = EventJournal(
        tmp_path, fsync=fsync, fsync_interval=8
    )
    for event in events:
        journal.append(event)
    # no close(): a process crash must still find every record, since
    # segments are line-buffered (flushed to the OS per append)
    assert [event for _, event in read_journal(tmp_path)] == events
    journal.close()


def test_bad_fsync_policy_rejected(tmp_path):
    with pytest.raises(ValueError):
        EventJournal(tmp_path, fsync="sometimes")


def test_metrics_exported(tmp_path):
    registry = MetricsRegistry()
    with EventJournal(
        tmp_path, fsync="interval", fsync_interval=4, registry=registry
    ) as journal:
        for event in some_events(10):
            journal.append(event)
    assert registry.value("journal_records_total") == 10
    assert registry.value("journal_bytes_total") > 0
    assert registry.value("journal_fsyncs_total") == 2


def test_seeded_tear_is_deterministic(tmp_path):
    events = some_events(30)
    with EventJournal(tmp_path) as journal:
        for event in events:
            journal.append(event)
    before = list_segments(tmp_path)[-1].read_bytes()

    def tear_once():
        list_segments(tmp_path)[-1].write_bytes(before)
        return FaultPlan(seed=123).tear_journal(tmp_path)

    assert tear_once() == tear_once()
