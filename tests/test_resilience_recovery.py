"""Kill-and-recover differential tests: crash at event *i*, recover,
finish — final aggregates must equal an uninterrupted oracle run.

The crash points and corruption sites are drawn from a seeded
:class:`FaultPlan`; the ``chaos`` CI job re-runs this file under
``REPRO_FAULT_SEED=0,1,2``.
"""

import random

import pytest

from repro.engine.sinks import CollectSink
from repro.errors import CheckpointError
from repro.events import Event
from repro.obs.registry import MetricsRegistry
from repro.query import seq
from repro.resilience import (
    Checkpointer,
    EventJournal,
    FaultPlan,
    SupervisedStreamEngine,
    list_checkpoints,
    recover,
)

QUERIES = {
    "dpc": lambda: seq("A", "B", "C").count().named("dpc").build(),
    "sem": lambda: seq("A", "B", "C").count().within(ms=12)
    .named("sem").build(),
    "negation": lambda: seq("A", "!N", "B").count().within(ms=12)
    .named("negation").build(),
    "hpc": lambda: seq("A", "B").where_equal("id").count().within(ms=12)
    .named("hpc").build(),
    "groupby": lambda: seq("A", "B").group_by("id").count().within(ms=12)
    .named("groupby").build(),
    "sum": lambda: seq("A", "B").sum("B", "w").within(ms=12)
    .named("sum").build(),
}


def random_stream(rng, n=400):
    events, ts = [], 0
    for _ in range(n):
        ts += rng.randint(1, 3)
        events.append(
            Event(
                rng.choice("ABCN"),
                ts,
                {"id": rng.randint(1, 3), "w": rng.randint(1, 9)},
            )
        )
    return events


def oracle_results(queries, events):
    oracle = SupervisedStreamEngine()
    for query in queries:
        oracle.register(query)
    for event in events:
        oracle.process(event)
    return oracle.results()


def crash_run(tmp_path, queries, events, crash, checkpoint_every=23,
              fsync="never"):
    """Run to ``crash`` under journal+checkpoints, then drop the engine."""
    engine = SupervisedStreamEngine()
    journal = EventJournal(tmp_path, fsync=fsync)
    engine.attach_journal(journal)
    engine.attach_checkpointer(
        Checkpointer(
            tmp_path, engine, journal=journal,
            every_events=checkpoint_every,
        )
    )
    for query in queries:
        engine.register(query)
    for event in events[:crash]:
        engine.process(event)
    # no close(), no final checkpoint: this is the crash


@pytest.mark.parametrize("kind", list(QUERIES))
def test_kill_and_recover_equals_uninterrupted(tmp_path, kind):
    plan = FaultPlan()
    rng = random.Random(plan.seed * 7919 + hash(kind) % 1000)
    queries = [QUERIES[kind]()]
    events = random_stream(rng)
    expected = oracle_results(queries, events)
    crash = plan.crash_point(len(events))

    crash_run(tmp_path, queries, events, crash)
    recovered = recover(tmp_path, queries=queries)
    assert recovered.events_replayed >= 0
    for event in events[crash:]:
        recovered.process(event)
    assert recovered.results() == expected
    assert recovered.metrics.events == len(events)


def test_kill_and_recover_multi_query_engine(tmp_path):
    plan = FaultPlan()
    rng = random.Random(plan.seed + 41)
    queries = [make() for make in QUERIES.values()]
    events = random_stream(rng)
    expected = oracle_results(queries, events)
    crash = plan.crash_point(len(events))

    crash_run(tmp_path, queries, events, crash)
    recovered = recover(tmp_path, queries=queries)
    for event in events[crash:]:
        recovered.process(event)
    assert recovered.results() == expected


def test_recover_after_torn_journal_tail(tmp_path):
    """A crash mid-append loses only the torn record's event."""
    plan = FaultPlan()
    rng = random.Random(plan.seed + 97)
    queries = [QUERIES["sem"]()]
    events = random_stream(rng, n=200)
    crash = plan.crash_point(len(events))
    if crash % 23 == 0:
        # In a real crash the torn record's event was never dispatched,
        # so no checkpoint can cover it; this simulation processes the
        # event *then* tears, so keep the tear ahead of any checkpoint.
        crash -= 1

    crash_run(tmp_path, queries, events, crash)
    plan.tear_journal(tmp_path)
    recovered = recover(tmp_path, queries=queries)
    # the torn record covered events[crash-1]; re-deliver it with the
    # rest, which must reproduce the uninterrupted run exactly
    for event in events[crash - 1:]:
        recovered.process(event)
    assert recovered.results() == oracle_results(queries, events)


def test_recover_falls_back_over_corrupt_newest_checkpoint(tmp_path):
    plan = FaultPlan()
    rng = random.Random(plan.seed + 13)
    queries = [QUERIES["groupby"](), QUERIES["dpc"]()]
    events = random_stream(rng)
    expected = oracle_results(queries, events)
    crash = plan.crash_point(len(events))

    crash_run(tmp_path, queries, events, crash, checkpoint_every=17)
    if len(list_checkpoints(tmp_path)) < 2:
        pytest.skip("crash point too early for two generations")
    plan.corrupt_latest_checkpoint(tmp_path)
    recovered = recover(tmp_path, queries=queries)
    for event in events[crash:]:
        recovered.process(event)
    assert recovered.results() == expected


def test_recover_with_every_checkpoint_corrupt_replays_from_scratch(
    tmp_path,
):
    plan = FaultPlan()
    rng = random.Random(plan.seed + 5)
    queries = [QUERIES["sem"]()]
    events = random_stream(rng, n=150)
    expected = oracle_results(queries, events)
    crash = plan.crash_point(len(events))

    crash_run(tmp_path, queries, events, crash, checkpoint_every=29)
    for path in list_checkpoints(tmp_path):
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn write
    recovered = recover(tmp_path, queries=queries)
    assert recovered.events_replayed == crash
    for event in events[crash:]:
        recovered.process(event)
    assert recovered.results() == expected


def test_recover_without_checkpoint_or_queries_raises(tmp_path):
    EventJournal(tmp_path).close()
    with pytest.raises(CheckpointError):
        recover(tmp_path)


def test_recovered_engine_is_immediately_crash_safe(tmp_path):
    """Crash the *recovered* engine again: double recovery works."""
    plan = FaultPlan()
    rng = random.Random(plan.seed + 71)
    queries = [QUERIES["sem"](), QUERIES["hpc"]()]
    events = random_stream(rng)
    expected = oracle_results(queries, events)
    first = plan.crash_point(len(events) - 2)
    second = plan.crash_point(len(events) - first - 1)

    crash_run(tmp_path, queries, events, first, checkpoint_every=19)
    middle = recover(tmp_path, queries=queries, checkpoint_every_events=19)
    for event in events[first:first + second]:
        middle.process(event)
    del middle  # second crash, again without cleanup

    final = recover(tmp_path, queries=queries)
    for event in events[first + second:]:
        final.process(event)
    assert final.results() == expected


def test_replay_does_not_re_emit_to_sinks(tmp_path):
    queries = [QUERIES["sem"]()]
    events = random_stream(random.Random(3), n=120)
    crash = 100

    engine = SupervisedStreamEngine()
    journal = EventJournal(tmp_path)
    engine.attach_journal(journal)
    engine.attach_checkpointer(
        Checkpointer(tmp_path, engine, journal=journal, every_events=30)
    )
    pre_sink = CollectSink()
    engine.register(queries[0], pre_sink)
    for event in events[:crash]:
        engine.process(event)
    pre_crash_outputs = len(pre_sink)

    post_sink = CollectSink()
    recovered = recover(tmp_path, sinks={"sem": [post_sink]})
    assert recovered.events_replayed > 0
    assert len(post_sink) == 0  # replay stays silent
    for event in events[crash:]:
        recovered.process(event)
    # sinks live again for new events
    oracle = SupervisedStreamEngine()
    oracle_sink = CollectSink()
    oracle.register(QUERIES["sem"](), oracle_sink)
    for event in events:
        oracle.process(event)
    assert pre_crash_outputs + len(post_sink) == len(oracle_sink)
    assert post_sink.values() == oracle_sink.values()[pre_crash_outputs:]


def test_recovery_metrics_exported(tmp_path):
    registry = MetricsRegistry()
    queries = [QUERIES["dpc"]()]
    events = random_stream(random.Random(11), n=100)
    crash_run(tmp_path, queries, events, 90, checkpoint_every=40)
    recovered = recover(tmp_path, registry=registry)
    assert registry.value("recoveries_total") == 1
    assert (
        registry.value("events_replayed_total")
        == recovered.events_replayed
        == 90 - 80
    )
