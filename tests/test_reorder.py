"""The out-of-order extension (the paper's Sec. 8 future work)."""

import random

import pytest

from repro.baseline.oracle import BruteForceOracle
from repro.core.executor import ASeqEngine
from repro.errors import OutOfOrderError
from repro.events import Event
from repro.events.reorder import ReorderBuffer, reordered
from repro.query import seq


def shuffled_within(events, slack, rng):
    """Disorder a sorted event list by at most ``slack`` of stream time."""
    keyed = [(e.ts + rng.uniform(0, slack * 0.99), e) for e in events]
    keyed.sort(key=lambda pair: pair[0])
    return [e for _, e in keyed]


class TestReorderBuffer:
    def test_restores_order(self):
        buffer = ReorderBuffer(slack_ms=5)
        out = []
        for ts in (3, 1, 2, 9):
            out.extend(buffer.push(Event("A", ts)))
        out.extend(buffer.flush())
        assert [e.ts for e in out] == [1, 2, 3, 9]

    def test_holds_back_within_slack(self):
        buffer = ReorderBuffer(slack_ms=10)
        assert buffer.push(Event("A", 5)) == []
        assert buffer.pending == 1
        released = buffer.push(Event("A", 20))
        assert [e.ts for e in released] == [5]

    def test_equal_ts_keeps_arrival_order(self):
        buffer = ReorderBuffer(slack_ms=0)
        first = Event("A", 5, {"n": 1})
        second = Event("B", 5, {"n": 2})
        out = buffer.push(first) + buffer.push(second) + buffer.flush()
        assert out == [first, second]

    def test_late_event_raises(self):
        buffer = ReorderBuffer(slack_ms=2)
        buffer.push(Event("A", 5))
        buffer.push(Event("A", 20))  # releases ts<=18, i.e. the 5
        with pytest.raises(OutOfOrderError):
            buffer.push(Event("A", 3))  # older than a released event

    def test_not_yet_released_region_still_accepts(self):
        """An event below watermark-slack but above the last release is
        still deliverable in order, so it is accepted."""
        buffer = ReorderBuffer(slack_ms=2)
        buffer.push(Event("A", 1))
        released = buffer.push(Event("A", 10))  # releases the 1
        assert [e.ts for e in released] == [1]
        released = buffer.push(Event("A", 3))
        assert [e.ts for e in released] == [3]

    def test_late_event_dropped_when_configured(self):
        buffer = ReorderBuffer(slack_ms=2, drop_late=True)
        buffer.push(Event("A", 5))
        buffer.push(Event("A", 20))
        assert buffer.push(Event("A", 3)) == []
        assert buffer.events_dropped == 1

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            ReorderBuffer(slack_ms=-1)

    def test_flush_empties(self):
        buffer = ReorderBuffer(slack_ms=100)
        buffer.push(Event("A", 1))
        buffer.push(Event("A", 2))
        assert len(buffer.flush()) == 2
        assert buffer.pending == 0


class TestReorderedIterator:
    def test_round_trip(self):
        rng = random.Random(5)
        ordered = [Event("A", ts) for ts in range(1, 200, 2)]
        noisy = shuffled_within(ordered, slack=20, rng=rng)
        restored = list(reordered(noisy, slack_ms=20))
        assert [e.ts for e in restored] == [e.ts for e in ordered]

    def test_engine_on_disordered_stream_matches_oracle(self):
        """A-Seq + ReorderBuffer handles the paper's future-work case."""
        rng = random.Random(6)
        query = seq("A", "B", "C").count().within(ms=30).build()
        events = []
        ts = 0
        for _ in range(120):
            ts += rng.randint(1, 3)
            events.append(Event(rng.choice("ABC"), ts))
        noisy = shuffled_within(events, slack=10, rng=rng)
        engine = ASeqEngine(query)
        for event in reordered(noisy, slack_ms=10):
            engine.process(event)
        assert engine.result() == BruteForceOracle(query).aggregate(events)
