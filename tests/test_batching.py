"""Micro-batch ingestion: process_batch through every layer.

Batching is a pure mechanical optimization — the differential suite in
``test_batch_shard_differential.py`` pins results bit-identical; these
tests cover the per-layer surfaces (StreamEngine, ASeqEngine,
VectorizedSemEngine, EventJournal, SupervisedStreamEngine) and the
places where batching *changes* bookkeeping granularity on purpose
(one journal write and one checkpoint-schedule check per batch).
"""

import random

from conftest import random_events
from repro.core.executor import ASeqEngine
from repro.core.vectorized import VectorizedSemEngine
from repro.engine.engine import StreamEngine
from repro.engine.sinks import CollectSink
from repro.events.event import Event
from repro.obs.registry import MetricsRegistry
from repro.query import parse_query
from repro.resilience.journal import EventJournal, read_journal
from repro.resilience.supervisor import SupervisedStreamEngine


def _stream(seed, count=500, alphabet=("A", "B", "C", "Z")):
    rng = random.Random(seed)
    return random_events(
        rng,
        list(alphabet),
        count,
        attr_maker=lambda r, t: {"v": r.randint(1, 9)},
    )


def _pair(routed=True, **kwargs):
    queries = [
        ("count", "PATTERN SEQ(A, B) AGG COUNT WITHIN 30 ms"),
        ("sum", "PATTERN SEQ(A, C) AGG SUM(C.v) WITHIN 40 ms"),
    ]
    reference = StreamEngine(**kwargs)
    batched = StreamEngine(routed=routed, **kwargs)
    sinks = []
    for name, text in queries:
        ref_sink, fast_sink = CollectSink(), CollectSink()
        reference.register(parse_query(text), ref_sink, name=name)
        batched.register(parse_query(text), fast_sink, name=name)
        sinks.append((ref_sink, fast_sink))
    return reference, batched, sinks


def test_process_batch_matches_per_event_including_sink_order():
    events = _stream(3)
    reference, batched, sinks = _pair()
    for event in events:
        reference.process(event)
    for start in range(0, len(events), 64):
        batched.process_batch(events[start:start + 64])
    assert reference.results() == batched.results()
    for ref_sink, fast_sink in sinks:
        assert ref_sink.outputs == fast_sink.outputs


def test_run_chunks_through_batches():
    events = _stream(4)
    reference, batched, _ = _pair()
    reference.run(events)
    assert batched.run(events, batch_size=50) == len(events)
    assert reference.results() == batched.results()
    assert batched.metrics.events == len(events)


def test_constructor_batch_size_applies_to_run():
    events = _stream(5)
    reference, _, _ = _pair()
    engine = StreamEngine(routed=True, batch_size=32)
    engine.register(
        parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 30 ms"), name="count"
    )
    engine.register(
        parse_query("PATTERN SEQ(A, C) AGG SUM(C.v) WITHIN 40 ms"), name="sum"
    )
    reference.run(events)
    engine.run(events)
    assert engine.results() == reference.results()


def test_empty_batch_is_a_noop():
    _, batched, _ = _pair()
    assert batched.process_batch([]) == 0
    assert batched.metrics.events == 0


def test_batched_engine_metrics_count_every_event():
    events = _stream(6, count=200)
    registry = MetricsRegistry()
    engine = StreamEngine(routed=True, registry=registry)
    engine.register(
        parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 30 ms"), name="count"
    )
    engine.run(events, batch_size=37)
    assert engine.metrics.events == 200
    snapshot = registry.flat()
    assert snapshot["events_ingested_total"] == 200.0
    # Routed + batched: the registration only sees its relevant slice.
    relevant = sum(1 for e in events if e.event_type in ("A", "B"))
    assert snapshot['query_events_total{query=count}'] == float(relevant)


def test_aseq_process_batch_matches_per_event():
    query = parse_query("PATTERN SEQ(A, !N, C) AGG COUNT WITHIN 25 ms")
    events = _stream(7, alphabet=("A", "C", "N", "Z"))
    reference, batched = ASeqEngine(query), ASeqEngine(query)
    outputs = []
    for event in events:
        fresh = reference.process(event)
        if fresh is not None:
            outputs.append((event, fresh))
    emitted = []
    for start in range(0, len(events), 48):
        emitted.extend(batched.process_batch(events[start:start + 48]))
    assert emitted == outputs
    assert reference.result() == batched.result()
    assert reference.events_seen == batched.events_seen


def test_vectorized_batch_and_searchsorted_expiry():
    query = parse_query("PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 15 ms")
    events = _stream(8, alphabet=("A", "B"))
    reference = VectorizedSemEngine(query)
    batched = VectorizedSemEngine(query)
    for event in events:
        reference.process(event)
    for start in range(0, len(events), 33):
        batched.process_batch(events[start:start + 33])
    assert reference.result() == batched.result()
    assert reference.active_counters == batched.active_counters
    assert reference.counter_updates == batched.counter_updates


def test_vectorized_counter_updates_match_reference_sem():
    # Satellite: the columnar runtime accounts counter updates exactly
    # like SemEngine, so /queries cost rows agree between the two.
    from repro.core.sem import SemEngine

    query = parse_query("PATTERN SEQ(A, B, C) AGG COUNT WITHIN 20 ms")
    events = _stream(9, alphabet=("A", "B", "C"))
    sem, vec = SemEngine(query), VectorizedSemEngine(query)
    for event in events:
        sem.process(event)
        vec.process(event)
    assert vec.counter_updates == sem.counter_updates
    state = vec.inspect()
    assert state["counter_updates"] == vec.counter_updates
    assert state["peak_counters"] == vec.peak_counters


def test_vectorized_accepts_registry_and_trace():
    from repro.obs.tracing import TraceRecorder

    registry = MetricsRegistry()
    trace = TraceRecorder(capacity=64)
    query = parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 10 ms")
    engine = VectorizedSemEngine(query, registry=registry, trace=trace)
    for event in [Event("A", 1), Event("B", 2), Event("A", 50)]:
        engine.process(event)
    snapshot = registry.flat()
    assert snapshot["sem_counters_created_total"] == 2.0
    assert snapshot["sem_counters_expired_total"] == 1.0
    assert trace.recorded_total > 0


def test_journal_append_batch_numbers_and_replays(tmp_path):
    events = [Event("A", i, {"n": i}) for i in range(10)]
    with EventJournal(tmp_path) as journal:
        first = journal.append_batch(events[:6])
        assert first == 0
        assert journal.append_batch([]) == 6
        second = journal.append_batch(events[6:])
        assert second == 6
    replayed = list(read_journal(tmp_path))
    assert [seq for seq, _ in replayed] == list(range(10))
    assert [event.ts for _, event in replayed] == list(range(10))


def test_journal_append_batch_one_fsync_per_batch(tmp_path):
    registry = MetricsRegistry()
    journal = EventJournal(tmp_path, fsync="always", registry=registry)
    journal.append_batch([Event("A", i) for i in range(50)])
    assert registry.flat()["journal_fsyncs_total"] == 1.0
    journal.close()


def test_journal_append_batch_interval_counts_records(tmp_path):
    registry = MetricsRegistry()
    journal = EventJournal(
        tmp_path, fsync="interval", fsync_interval=100, registry=registry
    )
    journal.append_batch([Event("A", i) for i in range(60)])
    assert registry.flat()["journal_fsyncs_total"] == 0.0
    journal.append_batch([Event("A", i) for i in range(60)])
    assert registry.flat()["journal_fsyncs_total"] == 1.0
    journal.close()


def test_supervised_batch_matches_per_event_and_journals_once(tmp_path):
    events = _stream(11, count=300)
    reference = SupervisedStreamEngine()
    batched = SupervisedStreamEngine(
        routed=True,
        journal=EventJournal(tmp_path / "wal"),
    )
    for engine in (reference, batched):
        engine.register(
            parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 30 ms"),
            name="count",
        )
    for event in events:
        reference.process(event)
    for start in range(0, len(events), 75):
        batched.process_batch(events[start:start + 75])
    assert reference.results() == batched.results()
    replayed = list(read_journal(tmp_path / "wal"))
    assert len(replayed) == len(events)


def test_supervised_batch_dead_letters_the_poison_event(tmp_path):
    class Poison:
        layout = None

        def __init__(self):
            self.calls = 0

        def process(self, event):
            self.calls += 1
            if event.event_type == "B":
                raise RuntimeError("poison")
            return None

        def result(self):
            return self.calls

    engine = SupervisedStreamEngine(
        journal=EventJournal(tmp_path / "wal"), quarantine_after=99
    )
    engine.register_executor("poison", Poison())
    events = [Event("A", 1), Event("B", 2), Event("A", 3), Event("B", 4)]
    engine.process_batch(events)
    letters = list(engine.dlq)
    assert [letter.event.event_type for letter in letters] == ["B", "B"]
    # Journal sequences attribute the exact poison events of the batch.
    assert [letter.journal_seq for letter in letters] == [1, 3]
    assert engine.health_of("poison")["failures_total"] == 2


def test_supervised_batch_quarantines_and_skips_rest_of_batch():
    class AlwaysBoom:
        layout = None

        def __init__(self):
            self.calls = 0

        def process(self, event):
            self.calls += 1
            raise RuntimeError("boom")

        def result(self):
            return None

    boom = AlwaysBoom()
    engine = SupervisedStreamEngine(quarantine_after=3)
    engine.register_executor("boom", boom)
    engine.process_batch([Event("A", i) for i in range(10)])
    assert engine.quarantined() == ["boom"]
    assert boom.calls == 3  # quarantine stops the rest of the batch


def test_supervised_batch_checkpoints_on_batch_boundaries(tmp_path):
    from repro.resilience.checkpointer import Checkpointer

    engine = SupervisedStreamEngine()
    engine.register(
        parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 30 ms"), name="count"
    )
    checkpointer = Checkpointer(
        tmp_path / "ckpt", engine, every_events=100
    )
    engine.attach_checkpointer(checkpointer)
    engine.process_batch([Event("A", i) for i in range(99)])
    assert checkpointer.last_path is None
    engine.process_batch([Event("A", i) for i in range(99, 120)])
    assert checkpointer.last_path is not None


def test_checkpointer_maybe_checkpoint_credits_event_count(tmp_path):
    from repro.resilience.checkpointer import Checkpointer

    engine = StreamEngine()
    engine.register(
        parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 30 ms"), name="count"
    )
    checkpointer = Checkpointer(tmp_path, engine, every_events=10)
    assert checkpointer.maybe_checkpoint(events=9) is None
    assert checkpointer.maybe_checkpoint(events=1) is not None


def test_batched_latency_histogram_is_per_event_scaled():
    registry = MetricsRegistry()
    engine = StreamEngine(routed=True, registry=registry)
    engine.register(
        parse_query("PATTERN SEQ(A, B) AGG COUNT WITHIN 30 ms"), name="count"
    )
    engine.process_batch([Event("A", i) for i in range(100)])
    histogram = registry.histogram(
        "event_latency_us",
        "per-event processing latency across all registrations (µs)",
    )
    assert histogram.count == 1  # one observation per batch


def test_process_batch_accepts_any_iterable():
    reference, batched, _ = _pair()
    events = _stream(12, count=64)
    for event in events:
        reference.process(event)
    assert batched.process_batch(iter(events)) == len(events)
    assert reference.results() == batched.results()
