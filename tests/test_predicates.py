"""Unit tests for WHERE predicates."""

import pytest

from repro.errors import PredicateError, QueryError
from repro.events import Event
from repro.query.predicates import (
    AttributeComparison,
    EquivalencePredicate,
    LocalPredicate,
    comparison_fn,
    local_filter,
    split_predicates,
)


class TestLocalPredicate:
    def test_matches_constrained_type(self):
        predicate = LocalPredicate("A", "price", ">", 100)
        assert predicate.matches(Event("A", 1, {"price": 150}))
        assert not predicate.matches(Event("A", 1, {"price": 50}))

    def test_other_types_pass_vacuously(self):
        predicate = LocalPredicate("A", "price", ">", 100)
        assert predicate.matches(Event("B", 1))

    def test_missing_attribute_raises(self):
        predicate = LocalPredicate("A", "price", ">", 100)
        with pytest.raises(PredicateError):
            predicate.matches(Event("A", 1))

    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 5, True), ("==", 5, True), ("!=", 5, False),
            ("<", 6, True), ("<=", 5, True), (">", 4, True),
            (">=", 6, False),
        ],
    )
    def test_all_operators(self, op, value, expected):
        predicate = LocalPredicate("A", "x", op, value)
        assert predicate.matches(Event("A", 1, {"x": 5})) is expected

    def test_bad_operator_rejected_eagerly(self):
        with pytest.raises(QueryError):
            LocalPredicate("A", "x", "~", 1)

    def test_is_local(self):
        assert LocalPredicate("A", "x", "=", 1).is_local()


class TestAttributeComparison:
    def test_compares_two_attributes(self):
        predicate = AttributeComparison("A", "x", "!=", "y")
        assert predicate.matches(Event("A", 1, {"x": 1, "y": 2}))
        assert not predicate.matches(Event("A", 1, {"x": 1, "y": 1}))

    def test_missing_attribute_raises(self):
        predicate = AttributeComparison("A", "x", "=", "y")
        with pytest.raises(PredicateError):
            predicate.matches(Event("A", 1, {"x": 1}))

    def test_other_types_pass(self):
        predicate = AttributeComparison("A", "x", "=", "y")
        assert predicate.matches(Event("B", 1))


class TestEquivalencePredicate:
    def test_on_shorthand(self):
        predicate = EquivalencePredicate.on("id", "A", "B", "C")
        assert predicate.terms == (("A", "id"), ("B", "id"), ("C", "id"))

    def test_needs_two_terms(self):
        with pytest.raises(QueryError):
            EquivalencePredicate((("A", "id"),))

    def test_duplicate_types_rejected(self):
        with pytest.raises(QueryError):
            EquivalencePredicate.on("id", "A", "A")

    def test_key_of(self):
        predicate = EquivalencePredicate.on("id", "A", "B")
        assert predicate.key_of(Event("A", 1, {"id": 7})) == 7

    def test_key_of_missing_attr_raises(self):
        predicate = EquivalencePredicate.on("id", "A", "B")
        with pytest.raises(PredicateError):
            predicate.key_of(Event("A", 1))

    def test_key_of_unconstrained_type_raises(self):
        predicate = EquivalencePredicate.on("id", "A", "B")
        with pytest.raises(PredicateError):
            predicate.key_of(Event("C", 1, {"id": 7}))

    def test_mixed_attribute_names(self):
        predicate = EquivalencePredicate((("A", "uid"), ("B", "user")))
        assert predicate.attribute_for("A") == "uid"
        assert predicate.attribute_for("B") == "user"
        assert predicate.attribute_for("C") is None

    def test_not_evaluable_per_event(self):
        predicate = EquivalencePredicate.on("id", "A", "B")
        assert not predicate.is_local()
        with pytest.raises(QueryError):
            predicate.matches(Event("A", 1, {"id": 1}))


class TestHelpers:
    def test_comparison_fn_unknown(self):
        with pytest.raises(QueryError):
            comparison_fn("<>")

    def test_split_predicates(self):
        local = LocalPredicate("A", "x", "=", 1)
        chain = EquivalencePredicate.on("id", "A", "B")
        locals_, chains = split_predicates((local, chain))
        assert locals_ == (local,)
        assert chains == (chain,)

    def test_local_filter_combines(self):
        accepts = local_filter(
            (
                LocalPredicate("A", "x", ">", 0),
                LocalPredicate("A", "x", "<", 10),
            )
        )
        assert accepts(Event("A", 1, {"x": 5}))
        assert not accepts(Event("A", 1, {"x": 15}))
        assert accepts(Event("B", 1))

    def test_local_filter_empty_accepts_all(self):
        accepts = local_filter(())
        assert accepts(Event("A", 1))
