"""Unit tests for SEM — sliding-window A-Seq (paper Sec. 3.2)."""

import pytest

from conftest import events_of, replay
from repro.core.sem import SemEngine
from repro.errors import QueryError
from repro.query import seq


class TestSemEngine:
    def test_requires_window(self):
        with pytest.raises(QueryError):
            SemEngine(seq("A", "B").build())

    def test_paper_example_3_figure_6(self):
        """Exact replay of Example 3: (A,B,C,D) WITHIN 7s (unit ts)."""
        engine = SemEngine(seq("A", "B", "C", "D").within(ms=7).build())
        stream = events_of(
            ("A", 1),   # a1, exp 8
            ("B", 2),   # b1
            ("C", 3),   # c1
            ("A", 4),   # a2, exp 11
            ("C", 5),   # c2
            ("B", 6),   # b2
            ("D", 7),   # d1 -> output 2 = 2 (a1) + 0 (a2)
            ("C", 8),   # c3: a1 expires here
            ("A", 9),   # a3, exp 16
            ("D", 10),  # d2 -> output 1
        )
        outputs = []
        for event in stream:
            fresh = engine.process(event)
            if fresh is not None:
                outputs.append(fresh)
            if event.ts == 7:
                assert fresh == 2
            if event.ts == 8:
                # "If users require a result at this moment, the output
                # would be 0 instead of 2."
                assert engine.result() == 0
        assert outputs == [2, 1]

    def test_per_start_counters_expire_in_creation_order(self):
        engine = SemEngine(seq("A", "B").within(ms=5).build())
        replay(engine, events_of(("A", 1), ("A", 2), ("A", 3)))
        assert engine.active_counters == 3
        engine.advance_time(6)  # a1 (exp 6) dies
        assert engine.active_counters == 2
        engine.advance_time(100)
        assert engine.active_counters == 0

    def test_result_after_expiry_without_new_events(self):
        engine = SemEngine(seq("A", "B").within(ms=5).build())
        replay(engine, events_of(("A", 1), ("B", 2)))
        assert engine.result() == 1
        engine.advance_time(6)
        assert engine.result() == 0

    def test_peak_counters_tracked(self):
        engine = SemEngine(seq("A", "B").within(ms=100).build())
        replay(engine, events_of(*[("A", t) for t in range(1, 11)]))
        assert engine.peak_counters == 10

    def test_window_boundary_is_half_open(self):
        """A match is alive while trig.ts < start.ts + win, dead at ==."""
        engine = SemEngine(seq("A", "B").within(ms=5).build())
        outputs = replay(engine, events_of(("A", 1), ("B", 6)))
        assert outputs == [0]
        engine2 = SemEngine(seq("A", "B").within(ms=5).build())
        outputs2 = replay(engine2, events_of(("A", 1), ("B", 5)))
        assert outputs2 == [1]

    def test_sum_with_window(self):
        engine = SemEngine(
            seq("A", "B").sum("B", "w").within(ms=5).build()
        )
        replay(
            engine,
            events_of(
                ("A", 1), ("B", 2, {"w": 10}),
                ("A", 4), ("B", 5, {"w": 3}),
            ),
        )
        # (a1,b1)=10, (a1,b2) dead? a1 exp 6 > 5 so alive: +3; (a2,b2)=3
        assert engine.result() == 16
        engine.advance_time(6)  # a1 dies with both its matches
        assert engine.result() == 3

    def test_max_with_expiry_is_exact(self):
        engine = SemEngine(
            seq("A", "B").max("B", "w").within(ms=4).build()
        )
        replay(
            engine,
            events_of(
                ("A", 1), ("B", 2, {"w": 100}),
                ("A", 4), ("B", 5, {"w": 7}),
            ),
        )
        engine.advance_time(5)  # a1 (holding the 100) expires at 5
        assert engine.result() == 7

    def test_empty_result_values(self):
        count_engine = SemEngine(seq("A", "B").within(ms=5).build())
        assert count_engine.result() == 0
        max_engine = SemEngine(
            seq("A", "B").max("B", "w").within(ms=5).build()
        )
        assert max_engine.result() is None

    def test_start_value_aggregate_seeded(self):
        engine = SemEngine(
            seq("A", "B").sum("A", "w").within(ms=10).build()
        )
        replay(
            engine,
            events_of(("A", 1, {"w": 5}), ("A", 2, {"w": 2}), ("B", 3)),
        )
        assert engine.result() == 7

    def test_counters_iterator_exposes_tags(self):
        engine = SemEngine(seq("A", "B").within(ms=10).build())
        events = events_of(("A", 1), ("A", 2))
        replay(engine, events)
        tags = [counter.tag for counter in engine.counters()]
        assert tags == events
