"""Workload generators: determinism, ordering, and shape."""

from collections import Counter

import pytest

from repro.datagen import (
    ClickStreamGenerator,
    LoginStreamGenerator,
    StockTradeGenerator,
    SyntheticTypeGenerator,
)
from repro.datagen.distributions import IntervalSampler, RandomWalk, ZipfSampler
from repro.datagen.security import CLICK_SUBMIT, TYPE_PASSWORD, TYPE_USERNAME
from repro.datagen.synthetic import alphabet
import random


def assert_strictly_increasing(events):
    timestamps = [e.ts for e in events]
    assert all(a < b for a, b in zip(timestamps, timestamps[1:]))


class TestDistributions:
    def test_zipf_uniform_when_s_zero(self):
        rng = random.Random(1)
        sampler = ZipfSampler(["a", "b"], 0.0, rng)
        counts = Counter(sampler.sample() for _ in range(4000))
        assert abs(counts["a"] - counts["b"]) < 400

    def test_zipf_skews_to_head(self):
        rng = random.Random(1)
        sampler = ZipfSampler(list("abcdefgh"), 1.5, rng)
        counts = Counter(sampler.sample() for _ in range(4000))
        assert counts["a"] > counts["h"] * 3

    def test_zipf_empty_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler([], 1.0, random.Random(1))

    def test_interval_sampler_strictly_positive(self):
        rng = random.Random(1)
        sampler = IntervalSampler(3.0, rng)
        assert all(sampler.sample() >= 1 for _ in range(1000))

    def test_interval_sampler_unit_mean(self):
        sampler = IntervalSampler(1, random.Random(1))
        assert all(sampler.sample() == 1 for _ in range(100))

    def test_interval_sampler_rejects_sub_ms(self):
        with pytest.raises(ValueError):
            IntervalSampler(0.5, random.Random(1))

    def test_random_walk_bounded_below(self):
        walk = RandomWalk(1.0, volatility=0.9, rng=random.Random(1))
        for _ in range(200):
            assert walk.step() >= 0.01


class TestStockGenerator:
    def test_deterministic(self):
        a = StockTradeGenerator(seed=5).take(500)
        b = StockTradeGenerator(seed=5).take(500)
        assert a == b

    def test_different_seeds_differ(self):
        a = StockTradeGenerator(seed=5).take(100)
        b = StockTradeGenerator(seed=6).take(100)
        assert a != b

    def test_strictly_increasing_ts(self):
        assert_strictly_increasing(StockTradeGenerator().take(2000))

    def test_event_shape(self):
        event = StockTradeGenerator().take(1)[0]
        assert event.event_type in StockTradeGenerator().symbols
        assert event["price"] > 0
        assert 100 <= event["volume"] <= 5000

    def test_symbol_rate_control(self):
        """With s symbols at 1 ev/ms, each sees ~window/s per window."""
        symbols = [f"S{i}" for i in range(10)]
        events = StockTradeGenerator(
            symbols=symbols, mean_gap_ms=1, seed=2
        ).take(5000)
        counts = Counter(e.event_type for e in events)
        for symbol in symbols:
            assert 350 < counts[symbol] < 650

    def test_skewed_rates(self):
        events = StockTradeGenerator(skew=1.2, seed=2).take(5000)
        counts = Counter(e.event_type for e in events)
        assert counts["DELL"] > counts["NTAP"]


class TestClickGenerator:
    def test_deterministic_and_ordered(self):
        a = ClickStreamGenerator(seed=3).take(800)
        assert a == ClickStreamGenerator(seed=3).take(800)
        assert_strictly_increasing(a)

    def test_funnels_exist(self):
        """Views of a product are followed by buys for the same user."""
        events = ClickStreamGenerator(users=5, seed=3).take(2000)
        buys = sum(1 for e in events if e.event_type.startswith("B"))
        assert buys > 100

    def test_user_ids_in_range(self):
        events = ClickStreamGenerator(users=7, seed=3).take(500)
        assert all(0 <= e["userId"] < 7 for e in events)

    def test_rejects_zero_users(self):
        with pytest.raises(ValueError):
            ClickStreamGenerator(users=0)


class TestLoginGenerator:
    def test_triplet_structure(self):
        events = LoginStreamGenerator(seed=4).take(300)
        counts = Counter(e.event_type for e in events)
        assert counts[TYPE_USERNAME] >= counts[CLICK_SUBMIT]
        assert counts[TYPE_PASSWORD] >= counts[CLICK_SUBMIT]

    def test_attackers_always_wrong(self):
        generator = LoginStreamGenerator(seed=4)
        attacker_ips = set(generator.attacker_ips)
        events = generator.take(3000)
        for event in events:
            if (
                event.event_type == TYPE_PASSWORD
                and event["ip"] in attacker_ips
            ):
                assert event["wrong"] is True

    def test_ordered(self):
        assert_strictly_increasing(LoginStreamGenerator(seed=4).take(1000))


class TestSyntheticGenerator:
    def test_alphabet_helper(self):
        assert alphabet(3) == ["T0", "T1", "T2"]

    def test_weights_respected(self):
        generator = SyntheticTypeGenerator(
            ["A", "B"], weights={"A": 9.0, "B": 1.0}, seed=8
        )
        counts = Counter(e.event_type for e in generator.take(2000))
        assert counts["A"] > counts["B"] * 4

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTypeGenerator([])

    def test_ordered_and_deterministic(self):
        a = SyntheticTypeGenerator(["A", "B"], seed=8).take(500)
        assert a == SyntheticTypeGenerator(["A", "B"], seed=8).take(500)
        assert_strictly_increasing(a)

    def test_stream_wrapper(self):
        stream = SyntheticTypeGenerator(["A"], seed=1).stream(10)
        assert len(list(stream)) == 10
