"""Fig. 12 — execution time and memory vs pattern length (2..5).

A-Seq should stay ~flat across lengths; the stack-based two-step
engine grows exponentially (paper: 16,736x at length 5).
"""

import pytest

from conftest import drive, make_stream
from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.datagen.synthetic import alphabet
from repro.query import seq

TYPES = alphabet(20)
WINDOW_MS = 200
EVENTS = make_stream(20, 2_000, seed=11)
LENGTHS = (2, 3, 4, 5)


def query_of(length: int):
    return seq(*TYPES[:length]).count().within(ms=WINDOW_MS).build()


@pytest.mark.parametrize("length", LENGTHS)
def test_aseq_by_length(benchmark, length):
    query = query_of(length)
    result = benchmark.pedantic(
        drive,
        setup=lambda: ((ASeqEngine(query), EVENTS), {}),
        rounds=3,
    )
    benchmark.extra_info["final_count"] = result


@pytest.mark.parametrize("length", LENGTHS)
def test_stack_by_length(benchmark, length):
    query = query_of(length)
    result = benchmark.pedantic(
        drive,
        setup=lambda: ((TwoStepEngine(query), EVENTS), {}),
        rounds=3,
    )
    benchmark.extra_info["final_count"] = result


@pytest.mark.parametrize("length", LENGTHS)
def test_results_agree(length):
    """Fig. 12's speedups only matter because the answers are equal."""
    query = query_of(length)
    assert drive(ASeqEngine(query), EVENTS) == drive(
        TwoStepEngine(query), EVENTS
    )


@pytest.mark.parametrize("length", LENGTHS)
def test_memory_gap_grows(length):
    """Fig. 12(b): the object-count gap widens with pattern length."""
    query = query_of(length)
    aseq = ASeqEngine(query)
    stack = TwoStepEngine(query)
    drive(aseq, EVENTS)
    drive(stack, EVENTS)
    ratio = stack.peak_objects / max(1, aseq.peak_objects)
    assert ratio > 2 * length
