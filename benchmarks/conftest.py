"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_figNN_*.py`` file regenerates one figure of the paper's
Sec. 6 at pytest-benchmark scale (small streams so the whole suite
stays interactive). ``python -m repro.bench`` runs the same experiments
at full scale and prints the tables recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet


def make_stream(type_count: int, events: int, seed: int, weights=None):
    """A reusable in-memory event list (benchmarks replay it per round)."""
    return SyntheticTypeGenerator(
        alphabet(type_count), weights=weights, mean_gap_ms=1, seed=seed
    ).take(events)


def drive(engine, events) -> object:
    """Feed a stream through an engine; returns the final result."""
    process = engine.process
    for event in events:
        process(event)
    return engine.result()


@pytest.fixture(scope="session")
def stock_stream():
    from repro.datagen import StockTradeGenerator

    return StockTradeGenerator(mean_gap_ms=1, seed=14).take(3_000)
