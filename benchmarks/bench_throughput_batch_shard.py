"""Throughput benchmark for the batched + sharded execution path.

Two workloads, each with a correctness guard (every fast path must
agree with the reference engine before its numbers count):

* **routing/batching** — a fig15-style multi-query workload: 20
  disjoint 3-type SEQ/COUNT queries over a 60-type alphabet. Measures
  the reference per-event engine, type-indexed routing, and routing +
  micro-batching. With disjoint patterns each arrival concerns exactly
  one query, so routing's best case (skip 19 of 20 executors) and the
  paper's shared-workload setting coincide.
* **columnar** — the same multi-query workload plus a fig12-style
  single-query workload ingested as struct-of-arrays
  :class:`EventBatch` chunks through the zero-object columnar lane
  (batches are prebuilt outside the timed region, like the event lists
  the other sections reuse).
* **sharding** — a fig12-style GROUP BY workload hash-partitioned
  across worker processes via :class:`ShardedStreamEngine`. On a
  single-CPU host this section records a skip instead of a number —
  workers would just time-slice one core.

Run directly to (re)generate ``BENCH_throughput.json``::

    PYTHONPATH=src python benchmarks/bench_throughput_batch_shard.py \
        --out BENCH_throughput.json

CI perf-smoke mode compares the *speedup ratios* (batched / per-event)
against the committed baseline — ratios, not absolute events/s, so the
check is portable across runner hardware::

    PYTHONPATH=src python benchmarks/bench_throughput_batch_shard.py \
        --events 40000 --check BENCH_throughput.json --tolerance 0.2
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet
from repro.engine.engine import StreamEngine
from repro.engine.sharded import ShardedStreamEngine
from repro.events.event import Event
from repro.query import parse_query

QUERY_COUNT = 20
TYPES_PER_QUERY = 3
WINDOW_MS = 60

FIG12_ALPHABET = 20
FIG12_LEN = 3
FIG12_WINDOW_MS = 500


def routing_queries():
    """20 disjoint 3-type queries: Qi = SEQ(T3i, T3i+1, T3i+2)."""
    queries = []
    for index in range(QUERY_COUNT):
        base = index * TYPES_PER_QUERY
        steps = ", ".join(f"T{base + k}" for k in range(TYPES_PER_QUERY))
        queries.append(
            parse_query(
                f"PATTERN SEQ({steps}) AGG COUNT WITHIN {WINDOW_MS} ms"
            )
        )
    return queries


def routing_generator():
    types = alphabet(QUERY_COUNT * TYPES_PER_QUERY)
    return SyntheticTypeGenerator(types, mean_gap_ms=1, seed=15)


def routing_stream(events):
    return routing_generator().take(events)


def fig12_generator():
    return SyntheticTypeGenerator(
        alphabet(FIG12_ALPHABET), mean_gap_ms=1, seed=11
    )


def fig12_query():
    steps = ", ".join(f"T{k}" for k in range(FIG12_LEN))
    return parse_query(
        f"PATTERN SEQ({steps}) AGG COUNT WITHIN {FIG12_WINDOW_MS} ms"
    )


def grouped_stream(events, groups=16, seed=12):
    """A/B stream carrying a group key — SyntheticTypeGenerator events
    only carry a serial ``n``, so the shard workload rolls its own."""
    import random

    rng = random.Random(seed)
    out = []
    ts = 0
    for _ in range(events):
        ts += rng.randint(1, 2)
        out.append(
            Event(
                rng.choice(("A", "B")),
                ts,
                {"g": rng.randrange(groups), "v": rng.randint(1, 9)},
            )
        )
    return out


def shard_queries():
    return [
        parse_query(
            "PATTERN SEQ(A, B) AGG COUNT WITHIN 80 ms GROUP BY g"
        ),
        parse_query(
            "PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 80 ms GROUP BY g"
        ),
        parse_query(
            "PATTERN SEQ(B, A) AGG SUM(A.v) WITHIN 60 ms GROUP BY g"
        ),
    ]


def _drive(make_engine, stream, repeat, count=None):
    """Best-of-``repeat`` events/s plus the final results for pinning.

    ``count`` overrides the event count when ``stream`` is a list of
    :class:`EventBatch` chunks rather than of single events.
    """
    count = len(stream) if count is None else count
    best = 0.0
    results = None
    for _ in range(repeat):
        engine = make_engine()
        started = time.perf_counter()
        engine.run(stream)
        elapsed = time.perf_counter() - started
        results = engine.results()
        best = max(best, count / elapsed)
    return best, results


def bench_routing_batching(events, batch_size, columnar_batch, repeat):
    stream = routing_stream(events)
    queries = routing_queries()

    def make(routed, batch):
        def build():
            engine = StreamEngine(routed=routed, batch_size=batch)
            for index, query in enumerate(queries):
                engine.register(query, name=f"q{index}")
            return engine

        return build

    per_event_eps, reference = _drive(make(False, 0), stream, repeat)
    routed_eps, routed_results = _drive(make(True, 0), stream, repeat)
    batched_eps, batched_results = _drive(
        make(True, batch_size), stream, repeat
    )
    if routed_results != reference or batched_results != reference:
        raise SystemExit("fast-path results diverged from the reference")

    batches = list(
        routing_generator().batches(events, batch_size=columnar_batch)
    )

    def columnar():
        engine = StreamEngine(routed=True, vectorized=True)
        for index, query in enumerate(queries):
            engine.register(query, name=f"q{index}")
        return engine

    columnar_eps, columnar_results = _drive(
        columnar, batches, repeat, count=events
    )
    if columnar_results != reference:
        raise SystemExit("columnar results diverged from the reference")
    return {
        "events": events,
        "queries": QUERY_COUNT,
        "alphabet": QUERY_COUNT * TYPES_PER_QUERY,
        "batch_size": batch_size,
        "columnar_batch_size": columnar_batch,
        "cpus": _cpu_count(),
        "per_event_eps": round(per_event_eps),
        "routed_eps": round(routed_eps),
        "batched_eps": round(batched_eps),
        "columnar_eps": round(columnar_eps),
        "speedup_routed": round(routed_eps / per_event_eps, 2),
        "speedup_batched": round(batched_eps / per_event_eps, 2),
        "speedup_columnar": round(columnar_eps / per_event_eps, 2),
    }


def bench_fig12_columnar(events, columnar_batch, repeat):
    """Single fig12-style query: reference per-event vs columnar lane."""
    stream = fig12_generator().take(events)

    def per_event():
        engine = StreamEngine(routed=True)
        engine.register(fig12_query(), name="q")
        return engine

    per_event_eps, reference = _drive(per_event, stream, repeat)

    batches = list(
        fig12_generator().batches(events, batch_size=columnar_batch)
    )

    def columnar():
        engine = StreamEngine(routed=True, vectorized=True)
        engine.register(fig12_query(), name="q")
        return engine

    columnar_eps, columnar_results = _drive(
        columnar, batches, repeat, count=events
    )
    if columnar_results != reference:
        raise SystemExit(
            "fig12 columnar results diverged from the reference"
        )
    return {
        "events": events,
        "pattern_len": FIG12_LEN,
        "window_ms": FIG12_WINDOW_MS,
        "batch_size": columnar_batch,
        "cpus": _cpu_count(),
        "per_event_eps": round(per_event_eps),
        "columnar_eps": round(columnar_eps),
        "speedup_columnar": round(columnar_eps / per_event_eps, 2),
    }


def bench_sharding(events, shards, batch_size, repeat):
    stream = grouped_stream(events)
    queries = shard_queries()

    def single():
        engine = StreamEngine(routed=True, batch_size=batch_size)
        for index, query in enumerate(queries):
            engine.register(query, name=f"q{index}")
        return engine

    single_eps, reference = _drive(single, stream, repeat)

    sharded_eps = 0.0
    sharded_results = None
    for _ in range(repeat):
        with ShardedStreamEngine(
            shards=shards, batch_size=batch_size
        ) as engine:
            for index, query in enumerate(queries):
                engine.register(query, name=f"q{index}")
            started = time.perf_counter()
            engine.run(stream)
            sharded_results = engine.results()
            elapsed = time.perf_counter() - started
            sharded_eps = max(sharded_eps, len(stream) / elapsed)
    if sharded_results != reference:
        raise SystemExit("sharded results diverged from the single process")
    return {
        "events": events,
        "queries": len(queries),
        "shards": shards,
        "batch_size": batch_size,
        "cpus": _cpu_count(),
        "single_eps": round(single_eps),
        "sharded_eps": round(sharded_eps),
        "speedup_sharded": round(sharded_eps / single_eps, 2),
    }


def _cpu_count():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run(args):
    report = {
        "meta": {
            "generated_utc": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "python": platform.python_version(),
            "cpus": _cpu_count(),
            "repeat": args.repeat,
        },
        "routing_batching": bench_routing_batching(
            args.events, args.batch_size, args.columnar_batch_size,
            args.repeat,
        ),
        "fig12_columnar": bench_fig12_columnar(
            args.fig12_events, args.columnar_batch_size, args.repeat
        ),
    }
    if not args.skip_shard:
        if _cpu_count() < 2:
            # Workers would time-slice one core: the "speedup" would
            # measure IPC overhead, not scaling. Record the skip so
            # the gate in check() knows it was deliberate.
            report["sharding"] = {
                "skipped": "single-CPU host; sharded speedup not "
                "meaningful",
                "cpus": _cpu_count(),
            }
        else:
            report["sharding"] = bench_sharding(
                args.shard_events, args.shards, args.batch_size,
                args.repeat,
            )
    return report


def check(report, baseline_path, tolerance):
    """Fail when a fast-path speedup ratio regressed vs the baseline.

    Ratios (fast path / per-event on the same machine and run) transfer
    across hardware; absolute events/s do not. The sharded ratio is
    gated only when both the baseline and this run actually measured it
    on a multi-core host — a single-CPU runner records a skip, never a
    failure.
    """
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = []

    def gate(section, key):
        expected = baseline.get(section, {}).get(key)
        actual = report.get(section, {}).get(key)
        if expected is None or actual is None:
            reason = (
                report.get(section, {}).get("skipped")
                or baseline.get(section, {}).get("skipped")
                or "not measured"
            )
            print(f"skip {section}.{key}: {reason}")
            return
        floor = expected * (1.0 - tolerance)
        line = (
            f"{section}.{key}: baseline {expected:.2f}x, "
            f"now {actual:.2f}x (floor {floor:.2f}x)"
        )
        print(("FAIL " if actual < floor else "ok   ") + line)
        if actual < floor:
            failures.append(line)

    gate("routing_batching", "speedup_routed")
    gate("routing_batching", "speedup_batched")
    gate("routing_batching", "speedup_columnar")
    gate("fig12_columnar", "speedup_columnar")
    gate("sharding", "speedup_sharded")
    if failures:
        raise SystemExit(
            "perf-smoke regression: " + "; ".join(failures)
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000)
    parser.add_argument("--fig12-events", type=int, default=400_000)
    parser.add_argument("--shard-events", type=int, default=100_000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--columnar-batch-size", type=int, default=4096)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--skip-shard", action="store_true")
    parser.add_argument("--out", help="write the JSON report here")
    parser.add_argument(
        "--check", help="baseline JSON to compare speedup ratios against"
    )
    parser.add_argument("--tolerance", type=float, default=0.2)
    args = parser.parse_args(argv)

    report = run(args)
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    if args.check:
        check(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
