"""Throughput benchmark for the batched + sharded execution path.

Two workloads, each with a correctness guard (every fast path must
agree with the reference engine before its numbers count):

* **routing/batching** — a fig15-style multi-query workload: 20
  disjoint 3-type SEQ/COUNT queries over a 60-type alphabet. Measures
  the reference per-event engine, type-indexed routing, and routing +
  micro-batching. With disjoint patterns each arrival concerns exactly
  one query, so routing's best case (skip 19 of 20 executors) and the
  paper's shared-workload setting coincide.
* **sharding** — a fig12-style GROUP BY workload hash-partitioned
  across worker processes via :class:`ShardedStreamEngine`.

Run directly to (re)generate ``BENCH_throughput.json``::

    PYTHONPATH=src python benchmarks/bench_throughput_batch_shard.py \
        --out BENCH_throughput.json

CI perf-smoke mode compares the *speedup ratios* (batched / per-event)
against the committed baseline — ratios, not absolute events/s, so the
check is portable across runner hardware::

    PYTHONPATH=src python benchmarks/bench_throughput_batch_shard.py \
        --events 40000 --check BENCH_throughput.json --tolerance 0.2
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet
from repro.engine.engine import StreamEngine
from repro.engine.sharded import ShardedStreamEngine
from repro.events.event import Event
from repro.query import parse_query

QUERY_COUNT = 20
TYPES_PER_QUERY = 3
WINDOW_MS = 60


def routing_queries():
    """20 disjoint 3-type queries: Qi = SEQ(T3i, T3i+1, T3i+2)."""
    queries = []
    for index in range(QUERY_COUNT):
        base = index * TYPES_PER_QUERY
        steps = ", ".join(f"T{base + k}" for k in range(TYPES_PER_QUERY))
        queries.append(
            parse_query(
                f"PATTERN SEQ({steps}) AGG COUNT WITHIN {WINDOW_MS} ms"
            )
        )
    return queries


def routing_stream(events):
    types = alphabet(QUERY_COUNT * TYPES_PER_QUERY)
    return SyntheticTypeGenerator(types, mean_gap_ms=1, seed=15).take(events)


def grouped_stream(events, groups=16, seed=12):
    """A/B stream carrying a group key — SyntheticTypeGenerator events
    only carry a serial ``n``, so the shard workload rolls its own."""
    import random

    rng = random.Random(seed)
    out = []
    ts = 0
    for _ in range(events):
        ts += rng.randint(1, 2)
        out.append(
            Event(
                rng.choice(("A", "B")),
                ts,
                {"g": rng.randrange(groups), "v": rng.randint(1, 9)},
            )
        )
    return out


def shard_queries():
    return [
        parse_query(
            "PATTERN SEQ(A, B) AGG COUNT WITHIN 80 ms GROUP BY g"
        ),
        parse_query(
            "PATTERN SEQ(A, B) AGG AVG(B.v) WITHIN 80 ms GROUP BY g"
        ),
        parse_query(
            "PATTERN SEQ(B, A) AGG SUM(A.v) WITHIN 60 ms GROUP BY g"
        ),
    ]


def _drive(make_engine, events, repeat):
    """Best-of-``repeat`` events/s plus the final results for pinning."""
    best = 0.0
    results = None
    for _ in range(repeat):
        engine = make_engine()
        started = time.perf_counter()
        engine.run(events)
        elapsed = time.perf_counter() - started
        results = engine.results()
        best = max(best, len(events) / elapsed)
    return best, results


def bench_routing_batching(events, batch_size, repeat):
    stream = routing_stream(events)
    queries = routing_queries()

    def make(routed, batch):
        def build():
            engine = StreamEngine(routed=routed, batch_size=batch)
            for index, query in enumerate(queries):
                engine.register(query, name=f"q{index}")
            return engine

        return build

    per_event_eps, reference = _drive(make(False, 0), stream, repeat)
    routed_eps, routed_results = _drive(make(True, 0), stream, repeat)
    batched_eps, batched_results = _drive(
        make(True, batch_size), stream, repeat
    )
    if routed_results != reference or batched_results != reference:
        raise SystemExit("fast-path results diverged from the reference")
    return {
        "events": events,
        "queries": QUERY_COUNT,
        "alphabet": QUERY_COUNT * TYPES_PER_QUERY,
        "batch_size": batch_size,
        "per_event_eps": round(per_event_eps),
        "routed_eps": round(routed_eps),
        "batched_eps": round(batched_eps),
        "speedup_routed": round(routed_eps / per_event_eps, 2),
        "speedup_batched": round(batched_eps / per_event_eps, 2),
    }


def bench_sharding(events, shards, batch_size, repeat):
    stream = grouped_stream(events)
    queries = shard_queries()

    def single():
        engine = StreamEngine(routed=True, batch_size=batch_size)
        for index, query in enumerate(queries):
            engine.register(query, name=f"q{index}")
        return engine

    single_eps, reference = _drive(single, stream, repeat)

    sharded_eps = 0.0
    sharded_results = None
    for _ in range(repeat):
        with ShardedStreamEngine(
            shards=shards, batch_size=batch_size
        ) as engine:
            for index, query in enumerate(queries):
                engine.register(query, name=f"q{index}")
            started = time.perf_counter()
            engine.run(stream)
            sharded_results = engine.results()
            elapsed = time.perf_counter() - started
            sharded_eps = max(sharded_eps, len(stream) / elapsed)
    if sharded_results != reference:
        raise SystemExit("sharded results diverged from the single process")
    return {
        "events": events,
        "queries": len(queries),
        "shards": shards,
        "batch_size": batch_size,
        "single_eps": round(single_eps),
        "sharded_eps": round(sharded_eps),
        "speedup_sharded": round(sharded_eps / single_eps, 2),
    }


def _cpu_count():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run(args):
    report = {
        "meta": {
            "generated_utc": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            "python": platform.python_version(),
            "cpus": _cpu_count(),
            "repeat": args.repeat,
        },
        "routing_batching": bench_routing_batching(
            args.events, args.batch_size, args.repeat
        ),
    }
    if not args.skip_shard:
        report["sharding"] = bench_sharding(
            args.shard_events, args.shards, args.batch_size, args.repeat
        )
    return report


def check(report, baseline_path, tolerance):
    """Fail when the batched-path speedup ratio regressed vs baseline.

    Ratios (batched / per-event on the same machine and run) transfer
    across hardware; absolute events/s do not. Shard scaling is NOT
    checked — it depends on the runner's core count.
    """
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = []
    for key in ("speedup_routed", "speedup_batched"):
        expected = baseline["routing_batching"][key]
        actual = report["routing_batching"][key]
        floor = expected * (1.0 - tolerance)
        line = (
            f"{key}: baseline {expected:.2f}x, "
            f"now {actual:.2f}x (floor {floor:.2f}x)"
        )
        print(("FAIL " if actual < floor else "ok   ") + line)
        if actual < floor:
            failures.append(line)
    if failures:
        raise SystemExit(
            "perf-smoke regression: " + "; ".join(failures)
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000)
    parser.add_argument("--shard-events", type=int, default=100_000)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=256)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--skip-shard", action="store_true")
    parser.add_argument("--out", help="write the JSON report here")
    parser.add_argument(
        "--check", help="baseline JSON to compare speedup ratios against"
    )
    parser.add_argument("--tolerance", type=float, default=0.2)
    args = parser.parse_args(argv)

    report = run(args)
    print(json.dumps(report, indent=2))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    if args.check:
        check(report, args.check, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
