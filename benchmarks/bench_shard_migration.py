"""Membership cost on the steady path and the migration pause.

Two questions with acceptance numbers attached:

* **Static-fleet overhead** — attaching a :class:`WorkerRegistry`
  with a static two-member fleet (no churn) must not tax steady-state
  ingest: membership work on the hot path is one non-blocking poll per
  batch, so the gate is a small absolute per-event tax (the relative
  10%-class target emerges once worker matching dominates).  Results
  must agree exactly with the membership-free engine.
* **Migration pause** — moving a partition mid-stream stalls only
  that partition's ingest for the handoff (quiesce at a batch
  boundary, checkpoint, ship checkpoint + journal suffix, replay,
  flip the routing table).  Target: < 250 ms per shard on the fig. 12
  workload shape; skipped on single-CPU hosts where the source and
  destination workers time-slice one core and the "pause" measures
  scheduling, not handoff.
"""

from __future__ import annotations

import os
import random
import time

from repro.datagen.synthetic import alphabet
from repro.engine.sharded import ShardedStreamEngine
from repro.events.event import Event
from repro.obs.registry import MetricsRegistry
from repro.query import parse_query
from repro.resilience.membership import WorkerRegistry

TYPES = alphabet(20)
QUERY = (
    f"PATTERN SEQ({TYPES[0]}, {TYPES[1]}, {TYPES[2]}) "
    "AGG COUNT WITHIN 200 ms GROUP BY g"
)
N_EVENTS = 4_000
PAUSE_BUDGET_S = 0.25

_OPEN: list[ShardedStreamEngine] = []


def keyed_stream(count: int = N_EVENTS, seed: int = 13) -> list[Event]:
    """Fig. 12's stream shape (20 uniform types, ~1 ms gaps) plus a
    group key so the sharded engine can partition it."""
    rng = random.Random(seed)
    events, ts = [], 0
    for _ in range(count):
        ts += rng.randint(1, 2)
        events.append(
            Event(rng.choice(TYPES), ts, {"g": rng.randrange(32)})
        )
    return events


EVENTS = keyed_stream()


def build(membership: bool, **overrides) -> ShardedStreamEngine:
    """Default sharded path vs the same run with a static two-member
    registry attached (versioned routing table, per-batch poll)."""
    settings = dict(shards=2, batch_size=256)
    if membership:
        settings["membership"] = WorkerRegistry(
            members=["m-a", "m-b"], registry=MetricsRegistry()
        )
    settings.update(overrides)
    engine = ShardedStreamEngine(**settings)
    engine.register(parse_query(QUERY), name="q")
    _OPEN.append(engine)
    return engine


def ingest(engine: ShardedStreamEngine):
    process = engine.process
    for event in EVENTS:
        process(event)
    return engine.result("q")


def _reap() -> None:
    """Close engines between tests: idle worker processes' heartbeat
    churn is enough to skew the later timings."""
    while _OPEN:
        _OPEN.pop().close()


def _multi_core() -> bool:
    try:
        return len(os.sched_getaffinity(0)) >= 2
    except AttributeError:  # pragma: no cover - non-linux
        return (os.cpu_count() or 1) >= 2


def test_sharded_ingest_no_membership(benchmark):
    benchmark.pedantic(
        ingest, setup=lambda: ((build(False),), {}), rounds=3
    )
    _reap()


def test_sharded_ingest_static_fleet(benchmark):
    """Same workload with the registry attached and zero churn."""
    benchmark.pedantic(
        ingest, setup=lambda: ((build(True),), {}), rounds=3
    )
    _reap()


def test_partition_migration_pause(benchmark):
    """One explicit mid-stream handoff per round: ingest the stream,
    then move partition 0 to the other member and time the pause the
    engine reports (quiesce + checkpoint + ship + replay + flip)."""

    def setup():
        engine = build(True)
        expected = ingest(engine)
        owners = engine.membership_view()["routing"]["owners"]
        target = "m-b" if owners[0] == "m-a" else "m-a"
        return (engine, target, expected), {}

    def migrate(engine, target, expected):
        pause_s = engine.migrate_partition(0, target)
        assert engine.result("q") == expected
        _reap()
        return pause_s

    pause_s = benchmark.pedantic(migrate, setup=setup, rounds=3)
    benchmark.extra_info["reported_pause_ms"] = round(pause_s * 1e3, 3)
    _reap()


def test_static_membership_overhead_within_bound():
    """The registry must be free when the fleet is static.

    Absolute gate, same reasoning as the router-journal bound: the
    per-batch membership poll is a lock-try plus an empty-deque check
    (well under a microsecond of router CPU per event at batch 256),
    while the bare fig. 12 router pass is itself only a few µs/event
    of pure Python — a relative bound against that denominator would
    measure interpreter noise.  Results must also agree exactly,
    registry attached or not.
    """

    def timed(membership: bool) -> tuple[float, object]:
        best, result = float("inf"), None
        for _ in range(3):
            engine = build(membership)
            engine.process(EVENTS[0])  # spawn workers outside the clock
            started = time.perf_counter()
            result = ingest(engine)
            best = min(best, time.perf_counter() - started)
            _reap()
        return best, result

    bare_s, bare_result = timed(False)
    fleet_s, fleet_result = timed(True)
    assert fleet_result == bare_result
    per_event_us = (fleet_s - bare_s) / N_EVENTS * 1e6
    assert per_event_us < 6.0, (
        f"static membership steady-state cost {per_event_us:.2f} "
        f"us/event (bare {bare_s:.3f}s vs fleet {fleet_s:.3f}s)"
    )


def test_migration_pause_within_bound():
    """ISSUE acceptance: migrating a partition pauses that partition's
    ingest < 250 ms on the fig. 12 shape.  Best of three fresh
    handoffs, each verified exact; skipped where source and
    destination workers would time-slice a single core."""
    import pytest

    if not _multi_core():
        pytest.skip(
            "single-CPU host: the handoff time-slices one core and "
            "the pause measures scheduling, not migration"
        )
    best = float("inf")
    for _ in range(3):
        engine = build(True)
        expected = ingest(engine)
        owners = engine.membership_view()["routing"]["owners"]
        target = "m-b" if owners[0] == "m-a" else "m-a"
        best = min(best, engine.migrate_partition(0, target))
        assert engine.result("q") == expected
        _reap()
    assert best < PAUSE_BUDGET_S, (
        f"partition handoff paused ingest {best * 1e3:.1f} ms "
        f"(budget {PAUSE_BUDGET_S * 1e3:.0f} ms)"
    )


def test_zzz_close_benchmark_engines():
    """Not a benchmark: reap workers the rounds above spawned."""
    _reap()
