"""Admin-server overhead on the fig. 12 len-3 workload.

Four configurations over the same stream and query, all on the
supervised engine (the PR 2 baseline path):

* ``server_off`` — SupervisedStreamEngine, no registry, no server;
* ``server_on_idle`` — same, plus a started AdminServer nobody
  scrapes; the acceptance bound is < 3% over ``server_off`` (the
  server thread sits blocked in ``select`` and the ingest path is
  untouched);
* ``instrumented_idle`` — real registry plus an idle server, the
  cost of the metrics themselves;
* ``instrumented_scraped_1hz`` — real registry plus a scraper thread
  hitting ``/metrics`` and ``/queries`` once a second while the
  ingest runs.

Server start/stop happens in the (untimed) per-round setup —
``shutdown()`` waits out ``serve_forever``'s poll interval, which must
not leak into per-event numbers.
"""

import threading
import urllib.request

import pytest

from conftest import make_stream
from repro.datagen.synthetic import alphabet
from repro.obs.registry import MetricsRegistry
from repro.obs.server import AdminServer
from repro.query import seq
from repro.resilience import SupervisedStreamEngine

TYPES = alphabet(20)
EVENTS = make_stream(20, 20_000, seed=11)


def query_of():
    return seq(*TYPES[:3]).count().within(ms=200).named("q").build()


def supervised_engine(registry=None):
    engine = SupervisedStreamEngine(registry=registry)
    engine.register(query_of())
    return engine


def drive_engine(engine):
    process = engine.process
    for event in EVENTS:
        process(event)
    return engine.result("q")


@pytest.fixture
def admin_pool():
    """Hands out started servers; stops them all after the test."""
    admins = []

    def start(engine, registry=None):
        admin = AdminServer(engine, registry=registry)
        admin.start()
        admins.append(admin)
        return admin

    yield start
    for admin in admins:
        admin.stop()


def scraping(admin, every_s):
    """A daemon scraper hitting /metrics and /queries every ``every_s``."""
    stop = threading.Event()

    def scrape_loop():
        while True:
            for path in ("/metrics", "/queries"):
                with urllib.request.urlopen(
                    admin.url(path), timeout=5
                ) as resp:
                    resp.read()
            if stop.wait(every_s):
                return

    thread = threading.Thread(target=scrape_loop, daemon=True)
    thread.start()

    def finish():
        stop.set()
        thread.join(timeout=5)

    return finish


def test_server_off(benchmark):
    def setup():
        return (supervised_engine(),), {}

    result = benchmark.pedantic(drive_engine, setup=setup, rounds=3)
    benchmark.extra_info["final_count"] = result


def test_server_on_idle(benchmark, admin_pool):
    """Acceptance: within 3% of ``server_off``."""

    def setup():
        engine = supervised_engine()
        admin_pool(engine)
        return (engine,), {}

    result = benchmark.pedantic(drive_engine, setup=setup, rounds=3)
    benchmark.extra_info["final_count"] = result


def test_instrumented_idle(benchmark, admin_pool):
    def setup():
        registry = MetricsRegistry()
        engine = supervised_engine(registry)
        admin_pool(engine, registry)
        return (engine,), {}

    result = benchmark.pedantic(drive_engine, setup=setup, rounds=3)
    benchmark.extra_info["final_count"] = result


def test_instrumented_scraped_1hz(benchmark, admin_pool):
    finishers = []

    def setup():
        while finishers:
            finishers.pop()()
        registry = MetricsRegistry()
        engine = supervised_engine(registry)
        admin = admin_pool(engine, registry)
        finishers.append(scraping(admin, every_s=1.0))
        return (engine,), {}

    result = benchmark.pedantic(drive_engine, setup=setup, rounds=3)
    while finishers:
        finishers.pop()()
    benchmark.extra_info["final_count"] = result


def test_all_configurations_agree():
    """The ops plane never changes answers."""
    expected = drive_engine(supervised_engine())
    registry = MetricsRegistry()
    engine = supervised_engine(registry)
    with AdminServer(engine, registry=registry) as admin:
        finish = scraping(admin, every_s=0.01)
        try:
            observed = drive_engine(engine)
        finally:
            finish()
    assert observed == expected
