"""Ablations of this repo's design choices (beyond the paper's figures).

* **Reference vs columnar SEM** — the structure-of-arrays rewrite is
  purely an interpreter-overhead optimization; its advantage should
  grow with the active-counter count (the window) and vanish for tiny
  windows.
* **HPC partition scaling** — per-event cost should stay flat as the
  key cardinality grows (each event touches one partition).
* **PreTree guard nodes** — negation inside a shared workload costs one
  extra node per negated branch, not a separate tree.
* **Checkpoint cost** — serializing engine state is cheap because the
  state is only counters (the paper's core claim, measured sideways).
"""

import pytest

from conftest import drive, make_stream
from repro.core.checkpoint import checkpoint
from repro.core.executor import ASeqEngine
from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet
from repro.multi.prefix_sharing import PrefixSharedEngine
from repro.query import seq

TYPES = alphabet(12)
EVENTS = make_stream(12, 2_500, seed=77)


@pytest.mark.parametrize("window_ms", (50, 400, 1600))
@pytest.mark.parametrize("runtime", ("reference", "columnar"))
def test_sem_runtime_by_window(benchmark, window_ms, runtime):
    query = seq(*TYPES[:3]).count().within(ms=window_ms).build()
    vectorized = runtime == "columnar"
    benchmark.pedantic(
        drive,
        setup=lambda: ((ASeqEngine(query, vectorized=vectorized), EVENTS), {}),
        rounds=3,
    )


def test_sem_and_columnar_agree_across_windows():
    for window_ms in (50, 400, 1600):
        query = seq(*TYPES[:3]).count().within(ms=window_ms).build()
        assert drive(ASeqEngine(query), EVENTS) == drive(
            ASeqEngine(query, vectorized=True), EVENTS
        )


@pytest.mark.parametrize("keys", (2, 16, 128))
def test_hpc_partition_scaling(benchmark, keys):
    query = (
        seq("K0", "K1").group_by("id").count().within(ms=300).build()
    )

    def keyed_events():
        import random

        rng = random.Random(keys)
        events = SyntheticTypeGenerator(
            ["K0", "K1"], mean_gap_ms=1, seed=5
        ).take(2_500)
        return [
            event.with_attrs(id=rng.randrange(keys)) for event in events
        ]

    events = keyed_events()
    benchmark.pedantic(
        drive,
        setup=lambda: ((ASeqEngine(query), events), {}),
        rounds=3,
    )


@pytest.mark.parametrize("negated", (False, True), ids=("plain", "guarded"))
def test_pretree_guard_overhead(benchmark, negated):
    # T5 instances arrive in the stream, so the guarded variant really
    # pays for resets, not just for the extra node.
    shape = ("T0", "!T5", "T1") if negated else ("T0", "T1")
    queries = [
        seq(*shape, f"T{2 + i}")
        .count()
        .within(ms=200)
        .named(f"q{i}")
        .build()
        for i in range(3)
    ]
    events = make_stream(6, 2_500, seed=78)
    benchmark.pedantic(
        drive,
        setup=lambda: ((PrefixSharedEngine(queries), events), {}),
        rounds=3,
    )


def test_checkpoint_is_cheap(benchmark):
    query = seq(*TYPES[:4]).count().within(ms=800).build()
    engine = ASeqEngine(query)
    drive(engine, EVENTS)
    state = benchmark(checkpoint, engine)
    assert state["runtime"]["kind"] == "sem"
