"""Ingest cost of the match funnel (`--funnel`).

The acceptance number: funnel instrumentation on (six staged counters,
event-time span gauges, sampled stage latencies) should cost < 10%
single-process ingest throughput vs funnel off — the ISSUE 8 gate,
enforced here with a paired estimator so a noisy CI runner cannot
flake the build. Funnel off must be free: engines cache one boolean at
construction and skip every funnel touch when it is False.

Results must be identical either way: the funnel observes the
pipeline, it never participates in it.
"""

from __future__ import annotations

import random
import statistics
import time

from repro.core.executor import ASeqEngine
from repro.events.event import Event
from repro.obs.funnel import FunnelRecorder
from repro.query import parse_query

QUERY = "PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 60 ms GROUP BY g"
N_EVENTS = 24_000


def keyed_stream(count: int = N_EVENTS, seed: int = 47) -> list[Event]:
    rng = random.Random(seed)
    events, ts = [], 0
    for _ in range(count):
        ts += rng.randint(1, 3)
        events.append(
            Event(
                rng.choice("AB"),
                ts,
                {"g": rng.randrange(32), "v": rng.randrange(1000)},
            )
        )
    return events


EVENTS = keyed_stream()


def build(funnel_on: bool) -> ASeqEngine:
    return ASeqEngine(
        parse_query(QUERY, name="q"),
        funnel=FunnelRecorder() if funnel_on else None,
    )


def ingest(engine: ASeqEngine):
    process = engine.process
    for event in EVENTS:
        process(event)
    return engine.result()


def test_ingest_funnel_off(benchmark):
    benchmark.pedantic(ingest, setup=lambda: ((build(False),), {}), rounds=3)


def test_ingest_funnel_on(benchmark):
    benchmark.pedantic(ingest, setup=lambda: ((build(True),), {}), rounds=3)


def test_funnel_overhead_within_bound():
    """Funnel-on ingest must stay within 10% of funnel-off.

    Paired estimator: each off/on pair runs back to back under the
    same machine conditions; the median pairwise ratio discards the
    pairs a load spike disturbed.
    """

    def one_round(funnel_on: bool) -> tuple[float, object]:
        engine = build(funnel_on)
        engine.process(EVENTS[0])  # warm the compiled runtime
        started = time.perf_counter()
        result = ingest(engine)
        elapsed = time.perf_counter() - started
        return elapsed, result

    ratios = []
    for _ in range(5):
        off_s, off_result = one_round(False)
        on_s, on_result = one_round(True)
        assert on_result == off_result
        ratios.append(on_s / off_s)

    overhead = statistics.median(ratios) - 1.0
    assert overhead < 0.10, (
        f"funnel overhead {overhead:.1%} (median of "
        f"{[f'{r - 1.0:+.1%}' for r in ratios]})"
    )


def test_funnel_counts_complete_after_bench():
    """Sanity: the funnel-on rounds actually recorded the stream."""
    engine = build(True)
    ingest(engine)
    counts = engine.funnel_counts()
    assert counts["events_routed"] == N_EVENTS
    assert counts["runs_extended"] > 0
    assert counts["matches_emitted"] > 0
