"""Fig. 14 — (a) A-Seq scalability at lengths 6..10, (b) negation cost.

(a) runs the regime where the stack-based engine is infeasible; A-Seq
per-event time stays roughly flat. (b) compares the negation pushdown
(Recounting Rule) against post-filtering on the stock queries
q1 = (DELL, IPIX, AMAT) and q2 = (DELL, IPIX, !QQQ, AMAT).
"""

import pytest

from conftest import drive, make_stream
from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.datagen.synthetic import alphabet
from repro.query import parse_query, seq

TYPES = alphabet(20)
EVENTS = make_stream(20, 2_500, seed=14)
SCALABILITY_WINDOW_MS = 800


@pytest.mark.parametrize("length", (6, 8, 10))
def test_aseq_scalability(benchmark, length):
    query = (
        seq(*TYPES[:length]).count().within(ms=SCALABILITY_WINDOW_MS).build()
    )
    benchmark.pedantic(
        drive,
        setup=lambda: ((ASeqEngine(query), EVENTS), {}),
        rounds=3,
    )


@pytest.mark.parametrize("length", (6, 8, 10))
def test_vectorized_scalability(benchmark, length):
    query = (
        seq(*TYPES[:length]).count().within(ms=SCALABILITY_WINDOW_MS).build()
    )
    benchmark.pedantic(
        drive,
        setup=lambda: ((ASeqEngine(query, vectorized=True), EVENTS), {}),
        rounds=3,
    )


Q1 = "PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN 300 ms"
Q2 = "PATTERN SEQ(DELL, IPIX, !QQQ, AMAT) AGG COUNT WITHIN 300 ms"


@pytest.mark.parametrize("text", (Q1, Q2), ids=("q1", "q2-negation"))
def test_aseq_negation(benchmark, text, stock_stream):
    query = parse_query(text)
    benchmark.pedantic(
        drive,
        setup=lambda: ((ASeqEngine(query), stock_stream), {}),
        rounds=3,
    )


@pytest.mark.parametrize("text", (Q1, Q2), ids=("q1", "q2-negation"))
def test_stack_negation(benchmark, text, stock_stream):
    """The paper's later-filter-step baseline for the negation query."""
    query = parse_query(text)
    benchmark.pedantic(
        drive,
        setup=lambda: (
            (TwoStepEngine(query, negation_mode="deferred"), stock_stream),
            {},
        ),
        rounds=3,
    )


def test_negation_results_agree(stock_stream):
    for text in (Q1, Q2):
        query = parse_query(text)
        expected = drive(ASeqEngine(query), stock_stream)
        assert expected == drive(TwoStepEngine(query), stock_stream)
        assert expected == drive(
            TwoStepEngine(query, negation_mode="deferred"), stock_stream
        )
