"""Resilience overhead on the fig. 12 len-3 workload.

Three configurations over the same stream and query:

* ``bare`` — plain StreamEngine, the PR 1 baseline path;
* ``supervised`` — SupervisedStreamEngine with journaling disabled
  (the default); the acceptance bound is < 5% over ``bare``;
* ``journaled`` — journal + checkpoint-every-500, the durability tax
  recorded in CHANGES.md.
"""

import pytest

from conftest import make_stream
from repro.datagen.synthetic import alphabet
from repro.engine.engine import StreamEngine
from repro.query import seq
from repro.resilience import Checkpointer, EventJournal, SupervisedStreamEngine

TYPES = alphabet(20)
EVENTS = make_stream(20, 2_000, seed=11)
QUERY_TEXT_TYPES = TYPES[:3]


def query_of():
    return seq(*QUERY_TEXT_TYPES).count().within(ms=200).named("q").build()


def drive_engine(engine):
    process = engine.process
    for event in EVENTS:
        process(event)
    return engine.result("q")


def test_bare_engine(benchmark):
    def setup():
        engine = StreamEngine()
        engine.register(query_of())
        return (engine,), {}

    result = benchmark.pedantic(drive_engine, setup=setup, rounds=3)
    benchmark.extra_info["final_count"] = result


def test_supervised_no_journal(benchmark):
    """The default path: supervision on, durability off."""

    def setup():
        engine = SupervisedStreamEngine()
        engine.register(query_of())
        return (engine,), {}

    result = benchmark.pedantic(drive_engine, setup=setup, rounds=3)
    benchmark.extra_info["final_count"] = result


def test_supervised_journaled(benchmark, tmp_path_factory):
    def setup():
        directory = tmp_path_factory.mktemp("journal")
        engine = SupervisedStreamEngine()
        journal = EventJournal(directory, fsync="never")
        engine.attach_journal(journal)
        engine.attach_checkpointer(
            Checkpointer(directory, engine, journal=journal, every_events=500)
        )
        engine.register(query_of())
        return (engine,), {}

    result = benchmark.pedantic(drive_engine, setup=setup, rounds=3)
    benchmark.extra_info["final_count"] = result


@pytest.mark.parametrize("fsync", ["never", "interval"])
def test_journaled_results_agree(tmp_path, fsync):
    """The durability tax buys identical answers."""
    bare = StreamEngine()
    bare.register(query_of())
    journaled = SupervisedStreamEngine()
    journal = EventJournal(tmp_path / fsync, fsync=fsync)
    journaled.attach_journal(journal)
    journaled.register(query_of())
    assert drive_engine(journaled) == drive_engine(bare)
