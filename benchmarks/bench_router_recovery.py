"""Router-journaling cost and router-recovery latency.

Two questions with acceptance numbers attached:

* **WAL overhead** — appending every ingested event to the partitioned
  lane journal (plus periodic router checkpoints) should cost < 10%
  throughput vs the unjournaled sharded path on the fig. 12 workload
  shape (SEQ length 3, 200 ms window); the in-suite gate is looser to
  absorb CI noise.
* **Recovery latency** — how long ``recover_router`` takes to bring a
  cleanly-closed run back: load the checkpoint, respawn workers, replay
  the lane suffix, reconcile per-shard watermarks.  Recovered results
  must equal the uninterrupted run's, bit for bit.
"""

from __future__ import annotations

import random
import shutil
import tempfile
import time
from pathlib import Path

from repro.datagen.synthetic import alphabet
from repro.engine.sharded import ShardedStreamEngine
from repro.events.event import Event
from repro.query import parse_query
from repro.resilience import RouterLog, recover_router

TYPES = alphabet(20)
QUERY = (
    f"PATTERN SEQ({TYPES[0]}, {TYPES[1]}, {TYPES[2]}) "
    "AGG COUNT WITHIN 200 ms GROUP BY g"
)
N_EVENTS = 4_000

_OPEN: list[ShardedStreamEngine] = []
_DIRS: list[Path] = []


def keyed_stream(count: int = N_EVENTS, seed: int = 11) -> list[Event]:
    """Fig. 12's stream shape (20 uniform types, ~1 ms gaps) plus a
    group key so the sharded engine can partition it."""
    rng = random.Random(seed)
    events, ts = [], 0
    for _ in range(count):
        ts += rng.randint(1, 2)
        events.append(
            Event(rng.choice(TYPES), ts, {"g": rng.randrange(32)})
        )
    return events


EVENTS = keyed_stream()


def build(journal: bool, checkpoint_every: int = 2_000,
          **overrides) -> ShardedStreamEngine:
    """Default sharded path (supervised, in-memory shard journals) vs
    the same run with ``--router-journal`` turned on: disk shard
    journals, a 2-lane router WAL, and a checkpoint every 2k events."""
    settings = dict(shards=2, batch_size=256)
    if journal:
        directory = Path(tempfile.mkdtemp(prefix="bench-router-"))
        _DIRS.append(directory)
        settings["journal_dir"] = directory / "shards"
        settings["router_checkpoint_every"] = checkpoint_every
    settings.update(overrides)
    engine = ShardedStreamEngine(**settings)
    engine.register(parse_query(QUERY), name="q")
    if journal:
        engine.attach_router_log(RouterLog(directory, lanes=2))
    _OPEN.append(engine)
    return engine


def ingest(engine: ShardedStreamEngine):
    process = engine.process
    for event in EVENTS:
        process(event)
    return engine.result("q")


def _reap() -> None:
    """Close engines between tests: a dozen idle worker processes'
    heartbeat churn is enough to skew the later timings."""
    while _OPEN:
        _OPEN.pop().close()


def test_sharded_ingest_unjournaled(benchmark):
    benchmark.pedantic(
        ingest, setup=lambda: ((build(False),), {}), rounds=3
    )
    _reap()


def test_sharded_ingest_router_journaled(benchmark):
    """Lane WAL append per event + checkpoint cadence, no faults."""
    benchmark.pedantic(
        ingest, setup=lambda: ((build(True),), {}), rounds=3
    )
    _reap()


def test_router_recovery_latency(benchmark):
    """One full router recovery from a closed journaled run: load the
    checkpoint, respawn + re-seed workers, replay the lane suffix."""

    def setup():
        engine = build(True)
        expected = ingest(engine)
        directory = _DIRS[-1]
        engine.close()
        return (directory, expected), {}

    def recover(directory, expected):
        engine = recover_router(
            directory, shards=2, batch_size=256, reattach_log=False
        )
        _OPEN.append(engine)
        assert engine.result("q") == expected
        return engine.metrics.events

    events = benchmark.pedantic(recover, setup=setup, rounds=3)
    benchmark.extra_info["events_recovered"] = events
    _reap()


def test_router_journal_overhead_within_bound():
    """Steady-state WAL discipline must stay a small absolute tax.

    Steady state means the per-event cost with checkpoints factored
    out: a router checkpoint serializes the whole local-lane state, so
    its cost is O(live matches) and is amortized by cadence (seconds
    apart in production; every 2k events — ~6 ms of work — in the
    pedantic pair above, which is why those published numbers carry
    checkpoint cost on top of what is gated here).

    The gate is absolute, not relative: the group-committed WAL costs
    ~2-3 µs/event of router CPU (stage into a lane list; one json batch
    record per lane per flush plus one commit marker).  On fig. 12 the
    unjournaled router pass is itself only ~2-3 µs/event of pure
    Python, so a relative bound against that denominator measures
    interpreter overhead, not journaling; the ISSUE's 10% target
    emerges once per-event routing and worker matching dominate.
    Results must also agree exactly, journaled or not.
    """

    def timed(journal: bool) -> tuple[float, object]:
        best, result = float("inf"), None
        for _ in range(3):
            engine = build(journal, checkpoint_every=0)
            engine.process(EVENTS[0])  # spawn workers outside the clock
            started = time.perf_counter()
            result = ingest(engine)
            best = min(best, time.perf_counter() - started)
            _reap()
        return best, result

    bare_s, bare_result = timed(False)
    journaled_s, journaled_result = timed(True)
    assert journaled_result == bare_result
    per_event_us = (journaled_s - bare_s) / N_EVENTS * 1e6
    assert per_event_us < 6.0, (
        f"router-journal steady-state cost {per_event_us:.2f} us/event "
        f"(bare {bare_s:.3f}s vs journaled {journaled_s:.3f}s)"
    )


def test_zzz_close_benchmark_engines():
    """Not a benchmark: reap workers and journal dirs the rounds above
    spawned."""
    _reap()
    while _DIRS:
        shutil.rmtree(_DIRS.pop(), ignore_errors=True)
