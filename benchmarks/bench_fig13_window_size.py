"""Fig. 13 — execution time and memory vs window size (length 3).

Both engines slow with window growth; the stack-based engine degrades
polynomially, A-Seq linearly in the active START count.
"""

import pytest

from conftest import drive, make_stream
from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.datagen.synthetic import alphabet
from repro.query import seq

TYPES = alphabet(20)
EVENTS = make_stream(20, 2_000, seed=13)
WINDOWS = (100, 200, 400, 800)


def query_of(window_ms: int):
    return seq(*TYPES[:3]).count().within(ms=window_ms).build()


@pytest.mark.parametrize("window_ms", WINDOWS)
def test_aseq_by_window(benchmark, window_ms):
    query = query_of(window_ms)
    benchmark.pedantic(
        drive,
        setup=lambda: ((ASeqEngine(query), EVENTS), {}),
        rounds=3,
    )


@pytest.mark.parametrize("window_ms", WINDOWS)
def test_stack_by_window(benchmark, window_ms):
    query = query_of(window_ms)
    benchmark.pedantic(
        drive,
        setup=lambda: ((TwoStepEngine(query), EVENTS), {}),
        rounds=3,
    )


@pytest.mark.parametrize("window_ms", WINDOWS)
def test_results_agree(window_ms):
    query = query_of(window_ms)
    assert drive(ASeqEngine(query), EVENTS) == drive(
        TwoStepEngine(query), EVENTS
    )


def test_memory_gap_grows_with_window():
    """Fig. 13(b): the baseline's object count scales with the window."""
    ratios = []
    for window_ms in WINDOWS:
        query = query_of(window_ms)
        aseq = ASeqEngine(query)
        stack = TwoStepEngine(query)
        drive(aseq, EVENTS)
        drive(stack, EVENTS)
        ratios.append(stack.peak_objects / max(1, aseq.peak_objects))
    assert ratios[-1] > ratios[0]
