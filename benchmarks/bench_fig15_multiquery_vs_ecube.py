"""Fig. 15 — a 3-query workload four ways: SASE / ECube / A-Seq / CC.

Expected ordering (paper): SASE slowest; ECube 2-3x faster (shared
sequence construction); per-query A-Seq and Chop-Connect orders of
magnitude faster still (no match materialization at all).
"""

import pytest

from conftest import drive, make_stream
from repro.baseline.twostep import TwoStepEngine
from repro.multi.chop_connect import ChopConnectEngine
from repro.multi.ecube import ECubeEngine
from repro.multi.planner import plan_workload
from repro.multi.unshared import UnsharedEngine
from repro.query import seq

SHARED = ("T1", "T2", "T3")
WINDOW_MS = 80
EVENTS = make_stream(
    6, 3_000, seed=15,
    weights={"T0": 0.05, "T4": 0.05, "T5": 0.05},
)


def workload():
    def build(name, head):
        return (
            seq(head, *SHARED).count().within(ms=WINDOW_MS).named(name).build()
        )

    return [build("Q1", "T0"), build("Q2", "T4"), build("Q3", "T5")]


QUERIES = workload()
PLANS, _BEST = plan_workload(QUERIES)

SYSTEMS = {
    "sase": lambda: UnsharedEngine(QUERIES, engine_factory=TwoStepEngine),
    "ecube": lambda: ECubeEngine(QUERIES, shared_types=SHARED),
    "aseq": lambda: UnsharedEngine(QUERIES),
    "cc": lambda: ChopConnectEngine(PLANS),
}


@pytest.mark.parametrize("system", list(SYSTEMS), ids=list(SYSTEMS))
def test_multiquery_system(benchmark, system):
    factory = SYSTEMS[system]
    benchmark.pedantic(
        drive,
        setup=lambda: ((factory(), EVENTS), {}),
        rounds=3,
    )


def test_all_systems_agree():
    results = {name: drive(f(), EVENTS) for name, f in SYSTEMS.items()}
    reference = results["aseq"]
    assert all(result == reference for result in results.values()), results
