"""Fig. 16 — sharing sweeps: prefix sharing and Chop-Connect vs NonShare.

Four panels: gains should grow with workload size (a, d) and with the
shared prefix/substring length (b, c).
"""

import pytest

from conftest import drive, make_stream
from repro.multi.chop_connect import ChopConnectEngine
from repro.multi.planner import plan_workload
from repro.multi.prefix_sharing import PrefixSharedEngine
from repro.multi.unshared import UnsharedEngine
from repro.query import seq

WINDOW_MS = 120
EVENT_COUNT = 3_000


def prefix_workload(query_count: int, prefix_length: int):
    prefix = [f"T{i}" for i in range(prefix_length)]
    queries = [
        seq(*prefix, f"T{prefix_length + i}")
        .count()
        .within(ms=WINDOW_MS)
        .named(f"q{i}")
        .build()
        for i in range(query_count)
    ]
    events = make_stream(
        prefix_length + query_count, EVENT_COUNT,
        seed=100 + query_count * 10 + prefix_length,
    )
    return queries, events


def cc_workload(query_count: int, substring_length: int):
    sub = [f"T{i}" for i in range(substring_length)]
    queries = [
        seq(f"T{substring_length + i}", *sub)
        .count()
        .within(ms=WINDOW_MS)
        .named(f"q{i}")
        .build()
        for i in range(query_count)
    ]
    events = make_stream(
        substring_length + query_count, EVENT_COUNT,
        seed=200 + query_count * 10 + substring_length,
    )
    return queries, events


# ----- Fig 16(a): prefix sharing vs #queries ---------------------------------


@pytest.mark.parametrize("query_count", (2, 4, 6))
def test_prefix_shared_by_queries(benchmark, query_count):
    queries, events = prefix_workload(query_count, 3)
    benchmark.pedantic(
        drive,
        setup=lambda: ((PrefixSharedEngine(queries), events), {}),
        rounds=3,
    )


@pytest.mark.parametrize("query_count", (2, 4, 6))
def test_prefix_nonshare_by_queries(benchmark, query_count):
    queries, events = prefix_workload(query_count, 3)
    benchmark.pedantic(
        drive,
        setup=lambda: ((UnsharedEngine(queries), events), {}),
        rounds=3,
    )


# ----- Fig 16(b): prefix sharing vs prefix length ------------------------------


@pytest.mark.parametrize("prefix_length", (2, 4, 6))
def test_prefix_shared_by_length(benchmark, prefix_length):
    queries, events = prefix_workload(3, prefix_length)
    benchmark.pedantic(
        drive,
        setup=lambda: ((PrefixSharedEngine(queries), events), {}),
        rounds=3,
    )


@pytest.mark.parametrize("prefix_length", (2, 4, 6))
def test_prefix_nonshare_by_length(benchmark, prefix_length):
    queries, events = prefix_workload(3, prefix_length)
    benchmark.pedantic(
        drive,
        setup=lambda: ((UnsharedEngine(queries), events), {}),
        rounds=3,
    )


# ----- Fig 16(c): Chop-Connect vs substring length ------------------------------


@pytest.mark.parametrize("substring_length", (2, 4, 6))
def test_cc_shared_by_length(benchmark, substring_length):
    queries, events = cc_workload(3, substring_length)
    plans, _ = plan_workload(queries)
    benchmark.pedantic(
        drive,
        setup=lambda: ((ChopConnectEngine(plans), events), {}),
        rounds=3,
    )


@pytest.mark.parametrize("substring_length", (2, 4, 6))
def test_cc_nonshare_by_length(benchmark, substring_length):
    queries, events = cc_workload(3, substring_length)
    benchmark.pedantic(
        drive,
        setup=lambda: ((UnsharedEngine(queries), events), {}),
        rounds=3,
    )


# ----- Fig 16(d): Chop-Connect vs #queries -----------------------------------------


@pytest.mark.parametrize("query_count", (2, 4, 6))
def test_cc_shared_by_queries(benchmark, query_count):
    queries, events = cc_workload(query_count, 3)
    plans, _ = plan_workload(queries)
    benchmark.pedantic(
        drive,
        setup=lambda: ((ChopConnectEngine(plans), events), {}),
        rounds=3,
    )


@pytest.mark.parametrize("query_count", (2, 4, 6))
def test_cc_nonshare_by_queries(benchmark, query_count):
    queries, events = cc_workload(query_count, 3)
    benchmark.pedantic(
        drive,
        setup=lambda: ((UnsharedEngine(queries), events), {}),
        rounds=3,
    )


# ----- correctness pins -----------------------------------------------------------


def test_shared_engines_agree_with_nonshare():
    queries, events = prefix_workload(4, 3)
    assert drive(PrefixSharedEngine(queries), events) == drive(
        UnsharedEngine(queries), events
    )
    queries, events = cc_workload(3, 3)
    plans, _ = plan_workload(queries)
    assert drive(ChopConnectEngine(plans), events) == drive(
        UnsharedEngine(queries), events
    )
