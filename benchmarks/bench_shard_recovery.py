"""Supervision cost of the sharded engine, and shard-restart latency.

Two questions with acceptance numbers attached:

* **Heartbeat/journal overhead** — with supervision on but no faults,
  sharded ingest should cost < 3% throughput vs ``supervise=False``
  (measured on an idle machine; the in-suite gate is looser to absorb
  CI noise).
* **Restart latency** — how long a full revive takes: kill the worker,
  respawn, re-seed from the checkpoint, replay the journal suffix.
"""

from __future__ import annotations

import random
import time

from repro.engine.sharded import ShardedStreamEngine
from repro.events.event import Event
from repro.query import parse_query

QUERY = "PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 60 ms GROUP BY g"
N_EVENTS = 4_000

_OPEN: list[ShardedStreamEngine] = []


def keyed_stream(count: int = N_EVENTS, seed: int = 23) -> list[Event]:
    rng = random.Random(seed)
    events, ts = [], 0
    for _ in range(count):
        ts += rng.randint(1, 3)
        events.append(
            Event(
                rng.choice("AB"),
                ts,
                {"g": rng.randrange(32), "v": rng.randrange(1000)},
            )
        )
    return events


EVENTS = keyed_stream()


def build(supervise: bool, **overrides) -> ShardedStreamEngine:
    settings = dict(shards=2, batch_size=256, supervise=supervise)
    settings.update(overrides)
    engine = ShardedStreamEngine(**settings)
    engine.register(parse_query(QUERY), name="q")
    _OPEN.append(engine)
    return engine


def ingest(engine: ShardedStreamEngine):
    process = engine.process
    for event in EVENTS:
        process(event)
    return engine.result("q")


def test_sharded_ingest_unsupervised(benchmark):
    benchmark.pedantic(
        ingest, setup=lambda: ((build(False),), {}), rounds=3
    )


def test_sharded_ingest_supervised(benchmark):
    """Heartbeats + in-memory journal + checkpoint cadence, no faults."""
    benchmark.pedantic(
        ingest, setup=lambda: ((build(True),), {}), rounds=3
    )


def test_restart_latency(benchmark):
    """One full revive: destroy, respawn, re-seed, replay the suffix."""

    def setup():
        engine = build(True, checkpoint_every_batches=4)
        ingest(engine)
        return (engine,), {}

    def revive(engine):
        worker = engine._workers[0]
        with worker.lock:
            engine._revive_locked(worker, "benchmark: forced restart")
        return engine.shard_health()[0]["restarts"]

    restarts = benchmark.pedantic(revive, setup=setup, rounds=3)
    benchmark.extra_info["restarts"] = restarts


def test_supervision_overhead_within_bound():
    """Supervision (no faults) must not tax ingest measurably.

    Target < 3% on quiet hardware; the in-suite gate is 15% so a noisy
    shared CI runner cannot flake the build. Results must also agree
    exactly, supervised or not.
    """

    def timed(supervise: bool) -> tuple[float, object]:
        best, result = float("inf"), None
        for _ in range(3):
            engine = build(supervise)
            engine.process(EVENTS[0])  # spawn workers outside the clock
            started = time.perf_counter()
            result = ingest(engine)
            best = min(best, time.perf_counter() - started)
        return best, result

    bare_s, bare_result = timed(False)
    supervised_s, supervised_result = timed(True)
    assert supervised_result == bare_result
    overhead = supervised_s / bare_s - 1.0
    assert overhead < 0.15, (
        f"supervision overhead {overhead:.1%} "
        f"(bare {bare_s:.3f}s vs supervised {supervised_s:.3f}s)"
    )


def test_zzz_close_benchmark_engines():
    """Not a benchmark: reap every worker the rounds above spawned."""
    while _OPEN:
        _OPEN.pop().close()
