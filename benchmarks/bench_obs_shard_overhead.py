"""Ingest cost of the distributed observability plane.

The acceptance number: with per-shard metrics collection on (worker
registries, snapshots shipping with every pong and collect, the
router merging at scrape time) but profiling **off**, sharded ingest
should cost < 3% throughput vs collection off — measured on an idle
machine; the in-suite gate is 15% so a noisy shared CI runner cannot
flake the build. Both variants keep the router's own registry live:
local instrumentation predates the distributed plane and is priced
separately by ``bench_throughput_batch_shard``.

Collection is scrape-time work by design: the hot routing path only
pays the same ``registry.enabled`` boolean every engine already
checks, and snapshots ride on pipe round-trips that happen anyway.
"""

from __future__ import annotations

import random
import statistics
import time

from repro.engine.sharded import ShardedStreamEngine
from repro.events.event import Event
from repro.obs.registry import MetricsRegistry
from repro.query import parse_query

QUERY = "PATTERN SEQ(A, B) AGG SUM(B.v) WITHIN 60 ms GROUP BY g"
# Big enough that ingest dominates the timed window: snapshot shipping
# is a fixed per-collect cost, so a short stream overstates the ratio.
N_EVENTS = 24_000

_OPEN: list[ShardedStreamEngine] = []


def keyed_stream(count: int = N_EVENTS, seed: int = 31) -> list[Event]:
    rng = random.Random(seed)
    events, ts = [], 0
    for _ in range(count):
        ts += rng.randint(1, 3)
        events.append(
            Event(
                rng.choice("AB"),
                ts,
                {"g": rng.randrange(32), "v": rng.randrange(1000)},
            )
        )
    return events


EVENTS = keyed_stream()


def build(collect: bool, **overrides) -> ShardedStreamEngine:
    # Both variants carry a live router registry: local instrumentation
    # is a pre-existing cost. ``collect_obs`` alone toggles the
    # distributed plane — worker registries, snapshot shipping, merge.
    settings = dict(
        shards=2,
        batch_size=256,
        supervise=True,
        registry=MetricsRegistry(),
        collect_obs=collect,
    )
    settings.update(overrides)
    engine = ShardedStreamEngine(**settings)
    engine.register(parse_query(QUERY), name="q")
    _OPEN.append(engine)
    return engine


def ingest(engine: ShardedStreamEngine):
    process = engine.process
    for event in EVENTS:
        process(event)
    return engine.result("q")


def test_sharded_ingest_collection_off(benchmark):
    benchmark.pedantic(
        ingest, setup=lambda: ((build(False),), {}), rounds=3
    )


def test_sharded_ingest_collection_on(benchmark):
    """Workers ship registry snapshots with every pong and collect."""
    benchmark.pedantic(
        ingest, setup=lambda: ((build(True),), {}), rounds=3
    )


def test_scrape_merges_whole_fleet(benchmark):
    """One refresh_cost_metrics(): pull + merge every shard snapshot."""

    def setup():
        engine = build(True)
        ingest(engine)
        return (engine,), {}

    def scrape(engine):
        engine.refresh_cost_metrics()
        return len(list(engine.obs_registry.metrics()))

    series = benchmark.pedantic(scrape, setup=setup, rounds=3)
    benchmark.extra_info["series"] = series


def test_collection_overhead_within_bound():
    """Per-shard collection must not tax ingest measurably.

    Target < 3% on quiet hardware; the in-suite gate is 15% to absorb
    CI noise. Results must also agree exactly, collection on or off.
    """
    # Reap the benchmark rounds' leftover fleets first: a dozen idle
    # worker processes and their heartbeat threads skew the comparison.
    test_zzz_close_benchmark_engines()

    def one_round(collect: bool) -> tuple[float, object]:
        engine = build(collect)
        engine.process(EVENTS[0])  # spawn workers outside the clock
        started = time.perf_counter()
        result = ingest(engine)
        elapsed = time.perf_counter() - started
        _OPEN.remove(engine)
        engine.close()
        return elapsed, result

    # Paired estimator: each off/on pair runs back to back so both see
    # the same machine conditions, then the median of the pairwise
    # ratios discards the pairs a noisy runner disturbed. A sequential
    # best-of-N is at the mercy of load shifts between the two windows.
    ratios = []
    for _ in range(5):
        off_s, off_result = one_round(False)
        on_s, on_result = one_round(True)
        assert on_result == off_result
        ratios.append(on_s / off_s)

    overhead = statistics.median(ratios) - 1.0
    assert overhead < 0.15, (
        f"obs collection overhead {overhead:.1%} (median of "
        f"{[f'{r - 1.0:+.1%}' for r in ratios]})"
    )


def test_zzz_close_benchmark_engines():
    """Not a benchmark: reap every worker the rounds above spawned."""
    while _OPEN:
        _OPEN.pop().close()
