#!/usr/bin/env python3
"""Multi-query sharing (paper Sec. 4): Example 6's five funnel queries.

Builds the paper's Q1-Q5 workload over the storefront catalog, lets the
planner find the shared substring (VKindle, BKindle), and runs the
workload three ways: per-query A-Seq (NonShare), prefix-shared PreTree
for the four common-prefix queries, and Chop-Connect across all five.
All three produce identical counts; the shared engines do less work.

Run:  python examples/multi_query_sharing.py
"""

import time

from repro.datagen import ClickStreamGenerator
from repro.multi import (
    ChopConnectEngine,
    PrefixSharedEngine,
    UnsharedEngine,
    plan_workload,
)
from repro.query import seq

WINDOW_MINUTES = 30


def build_workload():
    """The paper's Example 6 queries (V = view, B = buy)."""

    def q(name, *pattern):
        return (
            seq(*pattern)
            .count()
            .within(minutes=WINDOW_MINUTES)
            .named(name)
            .build()
        )

    return [
        q("Q1", "VKindle", "BKindle", "VCase", "BCase"),
        q("Q2", "VKindle", "BKindle", "VKindleFire"),
        q("Q3", "VKindle", "BKindle", "VCase", "BCase", "VeBook", "BeBook"),
        q("Q4", "VKindle", "BKindle", "VCase", "BCase", "VLight", "BLight"),
        q("Q5", "ViPad", "VKindleFire", "VKindle", "BKindle"),
    ]


def main() -> None:
    queries = build_workload()
    plans, shared = plan_workload(queries)
    print("Workload:")
    for query in queries:
        print(f"  {query.name}: {query.pattern}")
    print()
    print(f"Planner's shared substring: {shared.types} "
          f"(in {len(shared.query_names)} queries)")
    print("Chop plans:")
    for plan in plans:
        print(f"  {plan}")
    print()

    clicks = ClickStreamGenerator(
        users=60, buy_rate=0.55, rec_rate=0.1, mean_gap_ms=400, seed=41
    ).take(40_000)

    runs = {}
    engines = {
        "NonShare (per-query A-Seq)": UnsharedEngine(queries),
        "Prefix-shared (Q1-Q4 PreTree)": PrefixSharedEngine(queries[:4]),
        "Chop-Connect (all five)": ChopConnectEngine(plans),
    }
    for label, engine in engines.items():
        started = time.perf_counter()
        for click in clicks:
            engine.process(click)
        runs[label] = (time.perf_counter() - started, engine.result())

    print(f"{'system':<32} {'time':>8}   counts")
    reference = runs["NonShare (per-query A-Seq)"][1]
    for label, (elapsed, result) in runs.items():
        counts = {name: result[name] for name in sorted(result)}
        print(f"{label:<32} {elapsed * 1000:6.0f}ms   {counts}")
        for name, value in result.items():
            assert reference[name] == value, (label, name)
    print()
    print("All three agree; the PreTree shares the (VKindle, BKindle, "
          "VCase, BCase) path across Q1/Q3/Q4 for free, and Chop-Connect "
          "extends the sharing to Q5's tail occurrence.")
    tree_engine = engines["Prefix-shared (Q1-Q4 PreTree)"]
    print()
    print(tree_engine.describe())


if __name__ == "__main__":
    main()
