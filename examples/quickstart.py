#!/usr/bin/env python3
"""Quickstart: count a stock sequence pattern online with A-Seq.

Runs the paper's running example — counting SEQ(DELL, IPIX, AMAT)
matches over a sliding window of trades — with the match-free A-Seq
engine, then replays the same stream through the state-of-the-art
two-step engine to show both the identical answers and the gulf in
work performed.

Run:  python examples/quickstart.py
"""

import time

from repro import ASeqEngine, TwoStepEngine, parse_query
from repro.datagen import StockTradeGenerator

QUERY_TEXT = """
    PATTERN SEQ(DELL, IPIX, AMAT)
    AGG COUNT
    WITHIN 500 ms
"""


def main() -> None:
    query = parse_query(QUERY_TEXT)
    print("Query:")
    print(f"  {query}".replace("\n", "\n  "))
    print()

    trades = StockTradeGenerator(mean_gap_ms=1, seed=7).take(20_000)
    print(f"Stream: {len(trades):,} trades, {trades[-1].ts / 1000:.1f}s of market time")
    print()

    # --- A-Seq: aggregation pushed into detection, no matches built ----
    aseq = ASeqEngine(query)
    started = time.perf_counter()
    last_output = None
    outputs = 0
    for trade in trades:
        fresh = aseq.process(trade)
        if fresh is not None:
            last_output = fresh
            outputs += 1
    aseq_elapsed = time.perf_counter() - started
    print("A-Seq (this paper):")
    print(f"  final count        : {last_output}")
    print(f"  outputs emitted    : {outputs}")
    print(f"  elapsed            : {aseq_elapsed * 1000:.1f} ms")
    print(f"  peak state         : {aseq.peak_objects} prefix counters")
    print()

    # --- Two-step baseline: construct every match, then count ----------
    baseline = TwoStepEngine(query)
    started = time.perf_counter()
    for trade in trades:
        baseline.process(trade)
    baseline_elapsed = time.perf_counter() - started
    print("Two-step baseline (SASE-style):")
    print(f"  final count        : {baseline.result()}")
    print(f"  matches built      : {baseline.matches_materialized:,}")
    print(f"  elapsed            : {baseline_elapsed * 1000:.1f} ms")
    print(f"  peak state         : {baseline.peak_objects:,} objects")
    print()

    assert baseline.result() == aseq.result(), "engines disagree!"
    print(
        f"Same answer, {baseline_elapsed / aseq_elapsed:.0f}x less time and "
        f"{baseline.peak_objects / max(1, aseq.peak_objects):.0f}x less state "
        f"for A-Seq."
    )


if __name__ == "__main__":
    main()
