#!/usr/bin/env python3
"""Application I (paper Sec. 1): brute-force login detection per IP.

Counts the wrong-password login sequence
``SEQ(TypeUsername, TypePassword, ClickSubmit)`` grouped by source IP
over a 10-second window, and raises an alert the moment any IP's count
crosses the attack threshold — the paper's motivating network-security
scenario, end to end on a simulated login stream with two embedded
brute-force attackers.

Run:  python examples/network_security.py
"""

from repro import parse_query
from repro.datagen import LoginStreamGenerator
from repro.engine import StreamEngine, ThresholdAlertSink

QUERY_TEXT = """
    PATTERN <SEQ(TypeUsername, TypePassword, ClickSubmit)>
    WHERE <TypePassword.wrong = TRUE>
    GROUP BY <ip>
    AGG COUNT
    WITHIN 10s
"""

ATTACK_THRESHOLD = 10


def main() -> None:
    query = parse_query(QUERY_TEXT, name="brute-force")
    generator = LoginStreamGenerator(
        normal_ips=40, attacker_ips=2, mean_gap_ms=40, seed=31
    )
    print("Watching for IPs exceeding "
          f"{ATTACK_THRESHOLD} wrong-password sequences per 10s window...")
    print(f"(ground truth attackers: {', '.join(generator.attacker_ips)})")
    print()

    flagged: dict[str, int] = {}

    def on_alert(alert) -> None:
        ((ip, count),) = alert.value.items()
        if ip not in flagged:
            print(
                f"  ALERT t={alert.ts / 1000:7.1f}s  ip={ip:<12} "
                f"count={count} -> blocking"
            )
        flagged[ip] = max(flagged.get(ip, 0), count)

    engine = StreamEngine()
    engine.register(
        query, ThresholdAlertSink(ATTACK_THRESHOLD, on_alert)
    )
    processed = engine.run(generator.stream(30_000))

    print()
    print(f"Processed {processed:,} click events.")
    print(f"Flagged IPs: {sorted(flagged)}")
    missed = set(generator.attacker_ips) - set(flagged)
    false_alarms = set(flagged) - set(generator.attacker_ips)
    print(f"Missed attackers : {sorted(missed) or 'none'}")
    print(f"False alarms     : {sorted(false_alarms) or 'none'}")


if __name__ == "__main__":
    main()
