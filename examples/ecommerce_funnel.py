#!/usr/bin/env python3
"""Application II (paper Sec. 1): shopping-funnel analytics.

Two funnel queries over a simulated storefront clickstream, both
correlated per user with an equivalence predicate:

1. How many users view a Kindle, buy it, then view and buy a case
   within the hour? (the bundle-promotion signal)
2. The same funnel, but *without* clicking the recommendation link in
   between — the paper's negation pattern (VK, BK, !REC, VC, BC) that
   measures organic case purchases (Sec. 3.3).

The gap between the two counts is exactly the recommendation-driven
traffic, computed online without ever materializing a funnel instance.

Run:  python examples/ecommerce_funnel.py
"""

from repro import ASeqEngine
from repro.datagen import ClickStreamGenerator
from repro.query import seq


def main() -> None:
    window_minutes = 60
    base = (
        seq("VKindle", "BKindle", "VCase", "BCase")
        .where_equal("userId")
        .count()
        .within(minutes=window_minutes)
        .named("funnel")
        .build()
    )
    organic = (
        seq("VKindle", "BKindle", "!REC", "VCase", "BCase")
        .where_equal("userId")
        .count()
        .within(minutes=window_minutes)
        .named("organic-funnel")
        .build()
    )
    print("Funnel query:")
    print(f"  {base}".replace("\n", "\n  "))
    print()

    clicks = ClickStreamGenerator(
        users=120, buy_rate=0.5, rec_rate=0.2, mean_gap_ms=250, seed=23
    ).take(60_000)
    print(
        f"Clickstream: {len(clicks):,} clicks over "
        f"{clicks[-1].ts / 60_000:.0f} minutes, 120 users"
    )
    print()

    funnel_engine = ASeqEngine(base)
    organic_engine = ASeqEngine(organic)
    for click in clicks:
        funnel_engine.process(click)
        organic_engine.process(click)

    total = funnel_engine.result()
    without_rec = organic_engine.result()
    print(f"Funnels completed in the last hour          : {total}")
    print(f"  ... without a recommendation click between: {without_rec}")
    print(f"  ... recommendation-assisted               : {total - without_rec}")
    if total:
        share = 100 * (total - without_rec) / total
        print(f"Recommendation-assisted share: {share:.0f}%")
    print()
    print(
        f"State held: {funnel_engine.current_objects()} prefix counters "
        f"across {funnel_engine.runtime.partition_count} user partitions "
        f"(no funnel instance was ever constructed)."
    )


if __name__ == "__main__":
    main()
