#!/usr/bin/env python3
"""Production plumbing around A-Seq: disorder, restarts, trace files.

This example exercises the extensions this library adds beyond the
paper's core algorithm:

1. the stream is persisted to and replayed from a **trace file** (the
   format of the paper's original stock dataset);
2. arrivals are **mildly out of order** (network jitter); a
   ReorderBuffer with a slack bound restores order before the engine —
   the paper's stated future work;
3. halfway through, the process "crashes": engine state is
   **checkpointed** (a tiny JSON document, because A-Seq state is just
   counters) and a fresh engine resumes from it;
4. the pattern uses a **disjunctive position** — ``SEQ(DELL, INTC|AMAT,
   MSFT)`` — another extension of the dialect.

The resumed, reordered, file-replayed pipeline must agree exactly with
a straight in-memory run.

Run:  python examples/resilient_pipeline.py
"""

import json
import random
import tempfile
from pathlib import Path

from repro import ASeqEngine, parse_query
from repro.core.checkpoint import checkpoint, restore
from repro.datagen import StockTradeGenerator
from repro.datagen.tracefile import read_trace, write_trace
from repro.events.reorder import reordered

QUERY_TEXT = "PATTERN SEQ(DELL, INTC|AMAT, MSFT) AGG COUNT WITHIN 400 ms"
SLACK_MS = 25


def jitter(events, rng):
    """Deliver events up to SLACK_MS of stream time out of order."""
    keyed = [(e.ts + rng.uniform(0, SLACK_MS * 0.9), e) for e in events]
    keyed.sort(key=lambda pair: pair[0])
    return [e for _, e in keyed]


def main() -> None:
    query = parse_query(QUERY_TEXT)
    events = StockTradeGenerator(mean_gap_ms=1, seed=19).take(30_000)
    rng = random.Random(19)

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trades.txt"
        write_trace(events, trace_path)
        print(f"Persisted {len(events):,} trades to {trace_path.name} "
              f"({trace_path.stat().st_size / 1024:.0f} KiB)")

        # --- reference: straight in-memory run --------------------------
        reference = ASeqEngine(query)
        for event in events:
            reference.process(event)

        # --- resilient run: file -> jitter -> reorder -> crash+resume ---
        replay = list(read_trace(trace_path))
        noisy = jitter(replay, rng)
        restored_order = list(reordered(noisy, slack_ms=SLACK_MS))
        crash_at = len(restored_order) // 2

        engine = ASeqEngine(query)
        for event in restored_order[:crash_at]:
            engine.process(event)

        state_json = json.dumps(checkpoint(engine))
        print(f"Checkpoint after {crash_at:,} events: "
              f"{len(state_json)} bytes of JSON")

        resumed = restore(query, json.loads(state_json))
        for event in restored_order[crash_at:]:
            resumed.process(event)

        print()
        print(f"Straight in-memory count : {reference.result()}")
        print(f"Resilient pipeline count : {resumed.result()}")
        assert resumed.result() == reference.result()
        print("Identical — disorder, the restart and the file round trip "
              "were all invisible to the aggregate.")


if __name__ == "__main__":
    main()
