#!/usr/bin/env python3
"""Application III (paper Sec. 1): credit-card fraud detection.

Watches for a suspicious purchase pattern per card — an online
authorization followed by two rapid purchases — and keeps the SUM of
the purchase amounts over a 10-minute window, per card. When a card's
in-window pattern total exceeds $10,000, the sink raises a block alert.
This exercises the SUM aggregate pushdown of paper Sec. 5 together with
GROUP BY partitioning.

Run:  python examples/fraud_detection.py
"""

import random

from repro import parse_query
from repro.engine import StreamEngine, ThresholdAlertSink
from repro.events import Event

QUERY_TEXT = """
    PATTERN SEQ(Authorize, Purchase, Purchase2)
    GROUP BY card
    AGG SUM(Purchase2.amount)
    WITHIN 10 minutes
"""

FRAUD_THRESHOLD = 10_000.0


def transactions(count: int, seed: int = 99):
    """A card-transaction stream with one embedded runaway card."""
    rng = random.Random(seed)
    cards = [f"card-{i:03}" for i in range(150)]
    hot_card = "card-007"
    ts = 0
    for _ in range(count):
        ts += rng.randint(200, 2_000)
        card = hot_card if rng.random() < 0.12 else rng.choice(cards)
        kind = rng.choice(["Authorize", "Purchase", "Purchase2"])
        if card == hot_card:
            amount = rng.uniform(1_500, 4_000)
        else:
            amount = rng.uniform(5, 220)
        yield Event(kind, ts, {"card": card, "amount": round(amount, 2)})


def main() -> None:
    query = parse_query(QUERY_TEXT, name="fraud")
    print("Blocking any card whose in-window pattern SUM exceeds "
          f"${FRAUD_THRESHOLD:,.0f}")
    print()

    blocked: set[str] = set()

    def on_alert(alert) -> None:
        ((card, total),) = alert.value.items()
        if card not in blocked:
            blocked.add(card)
            print(
                f"  BLOCK t={alert.ts / 60_000:5.1f}min  {card}  "
                f"in-window total ${total:,.0f}"
            )

    engine = StreamEngine()
    executor = engine.register(
        query, ThresholdAlertSink(FRAUD_THRESHOLD, on_alert)
    )
    processed = engine.run(transactions(20_000))

    print()
    print(f"Processed {processed:,} transactions.")
    print(f"Blocked cards: {sorted(blocked)}")
    final = {
        card: total
        for card, total in executor.result().items()
        if total and total > 0
    }
    top = sorted(final.items(), key=lambda kv: kv[1], reverse=True)[:3]
    print("Top in-window totals at end of stream:")
    for card, total in top:
        print(f"  {card}: ${total:,.0f}")


if __name__ == "__main__":
    main()
