"""``python -m repro`` — run a query over a trace or generated stream."""

from repro.cli import main

raise SystemExit(main())
