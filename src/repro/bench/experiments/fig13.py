"""Fig. 13 — A-Seq vs stack-based, varying window size.

Paper setting: pattern length fixed at 3, window varied 100..1000 ms.
Both engines slow down with window growth, but the stack-based engine
degrades polynomially (more active events -> more join work per
trigger) while A-Seq stays linear in the active START count. Memory
(Fig. 13(b)) behaves like CPU.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentTable, Scale, speedup, time_engines
from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet
from repro.query import seq

TYPE_COUNT = 20
LENGTH = 3


def windows_for(scale: Scale) -> tuple[int, ...]:
    if scale.name == "full":
        return (100, 250, 500, 750, 1000)
    return (100, 200, 400)


def run(scale: Scale) -> list[ExperimentTable]:
    types = alphabet(TYPE_COUNT)
    events = SyntheticTypeGenerator(types, mean_gap_ms=1, seed=13).take(
        scale.events_for(0.6)
    )
    time_table = ExperimentTable(
        "fig13a",
        f"Fig 13(a) — exec time per window slide vs window size "
        f"(length={LENGTH})",
        ["window ms", "stack ms/slide", "A-Seq ms/slide", "speedup"],
        notes=(
            "Paper: both methods grow with window size; the stack-based "
            "approach degrades significantly faster (polynomial vs "
            "linear in active events)."
        ),
    )
    memory_table = ExperimentTable(
        "fig13b",
        f"Fig 13(b) — peak memory (object count) vs window size "
        f"(length={LENGTH})",
        ["window ms", "stack objects", "A-Seq objects", "ratio"],
    )
    for window_ms in windows_for(scale):
        query = seq(*types[:LENGTH]).count().within(ms=window_ms).build()
        stats = time_engines(
            [
                ("stack", lambda q=query: TwoStepEngine(q)),
                ("aseq", lambda q=query: ASeqEngine(q)),
            ],
            events,
        )
        stack, aseq = stats["stack"], stats["aseq"]
        assert stack.final_result == aseq.final_result
        time_table.add_row(
            window_ms,
            stack.per_slide_ms,
            aseq.per_slide_ms,
            speedup(stack, aseq),
        )
        memory_table.add_row(
            window_ms,
            stack.peak_objects,
            aseq.peak_objects,
            stack.peak_objects / max(1, aseq.peak_objects),
        )
    return [time_table, memory_table]
