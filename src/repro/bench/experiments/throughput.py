"""Supplementary: absolute throughput of every engine (not a paper figure).

The paper reports per-window-slide latencies on a 2004 Java testbed;
absolute throughput is the least transferable number in a Python
reproduction, so it gets its own table with that caveat attached rather
than silently colouring the per-figure comparisons. Useful for sizing:
"how many events/second can this library actually sustain?"
"""

from __future__ import annotations

from repro.bench.harness import ExperimentTable, Scale, time_engines
from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet
from repro.query import seq

TYPE_COUNT = 20


def run(scale: Scale) -> list[ExperimentTable]:
    types = alphabet(TYPE_COUNT)
    events = SyntheticTypeGenerator(types, mean_gap_ms=1, seed=99).take(
        scale.events_for(1.0)
    )
    window_ms = 500 if scale.name == "full" else 200

    configs = {
        "DPC (unwindowed, len 3)": (
            seq(*types[:3]).count().build(),
            "aseq",
        ),
        "SEM reference (len 3)": (
            seq(*types[:3]).count().within(ms=window_ms).build(),
            "aseq",
        ),
        "SEM columnar (len 3)": (
            seq(*types[:3]).count().within(ms=window_ms).build(),
            "vectorized",
        ),
        "SEM + negation": (
            seq(types[0], f"!{types[4]}", types[1], types[2])
            .count()
            .within(ms=window_ms)
            .build(),
            "aseq",
        ),
        "SEM + SUM aggregate": (
            seq(*types[:3])
            .sum(types[1], "n")
            .within(ms=window_ms)
            .build(),
            "aseq",
        ),
        "SEM + Kleene (A, B+, C)": (
            seq(types[0], f"{types[1]}+", types[2])
            .count()
            .within(ms=window_ms)
            .build(),
            "aseq",
        ),
        "two-step baseline (len 3)": (
            seq(*types[:3]).count().within(ms=window_ms).build(),
            "twostep",
        ),
    }

    def factory_for(query, flavour):
        if flavour == "twostep":
            return lambda: TwoStepEngine(query)
        if flavour == "vectorized":
            return lambda: ASeqEngine(query, vectorized=True)
        return lambda: ASeqEngine(query)

    table = ExperimentTable(
        "throughput",
        f"Supplementary — sustained throughput "
        f"(window={window_ms}ms, {len(events):,} events)",
        ["configuration", "events/s", "ms/event", "peak objects"],
        notes=(
            "Not a paper figure: absolute rates are host- and "
            "interpreter-specific and do not transfer from the paper's "
            "Java/2004 testbed. Relative rows are meaningful."
        ),
    )
    stats = time_engines(
        [
            (label, factory_for(query, flavour))
            for label, (query, flavour) in configs.items()
        ],
        events,
    )
    for label in configs:
        run_stats = stats[label]
        table.add_row(
            label,
            run_stats.events_per_s,
            run_stats.per_event_us / 1000,
            run_stats.peak_objects,
        )
    return [table]
