"""Fig. 12 — A-Seq vs stack-based, varying pattern length (2..5).

Paper setting: window fixed at 1000 ms, lengths 2-5; the stack-based
execution time grows exponentially with length while A-Seq stays flat
(16,736x at length 5); memory behaves the same way (Fig. 12(b)).

This reproduction fixes the window at 500 ms (full scale) so the
length-5 baseline run stays within minutes on CPython — the growth
*shape* is what is being reproduced, and the analytical Eq. 3 column
shows the measured baseline tracking its predicted exponential.
Stream sizes shrink with pattern length for the same reason; both
engines always run the same stream.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentTable, Scale, speedup, time_engines
from repro.baseline.cost_model import stack_based_cost, uniform_counts
from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet
from repro.query import seq

TYPE_COUNT = 20
LENGTHS = (2, 3, 4, 5)

#: Fraction of the scale's stream used per pattern length (the
#: baseline is exponential in length; A-Seq runs the same stream).
_STREAM_FRACTION = {2: 1.0, 3: 0.6, 4: 0.3, 5: 0.12}


def parameters(scale: Scale) -> dict:
    window_ms = 500 if scale.name == "full" else 200
    return {"window_ms": window_ms, "types": alphabet(TYPE_COUNT)}


def run(scale: Scale) -> list[ExperimentTable]:
    params = parameters(scale)
    window_ms = params["window_ms"]
    types = params["types"]
    per_type_rate = window_ms / TYPE_COUNT  # instances per window

    time_table = ExperimentTable(
        "fig12a",
        f"Fig 12(a) — exec time per window slide vs pattern length "
        f"(window={window_ms}ms)",
        [
            "len", "events", "stack ms/slide", "A-Seq ms/slide",
            "speedup", "Eq.3 pred. growth",
        ],
        notes=(
            "Paper: stack-based grows exponentially with length, A-Seq "
            "stays ~flat; 16,736x at length 5 (their testbed). The Eq.3 "
            "column is the analytical baseline cost normalized to len 2."
        ),
    )
    memory_table = ExperimentTable(
        "fig12b",
        f"Fig 12(b) — peak memory (object count) vs pattern length "
        f"(window={window_ms}ms)",
        ["len", "stack objects", "A-Seq objects", "ratio"],
        notes=(
            "Paper metric: active objects — stack entries + pointers + "
            "materialized matches for the baseline; active PreCntrs for "
            "A-Seq."
        ),
    )

    model_base = stack_based_cost(uniform_counts(per_type_rate, 2), 0.5)
    for length in LENGTHS:
        count = scale.events_for(_STREAM_FRACTION[length])
        events = SyntheticTypeGenerator(
            types, mean_gap_ms=1, seed=11
        ).take(count)
        query = seq(*types[:length]).count().within(ms=window_ms).build()
        stats = time_engines(
            [
                ("stack", lambda q=query: TwoStepEngine(q)),
                ("aseq", lambda q=query: ASeqEngine(q)),
            ],
            events,
        )
        stack, aseq = stats["stack"], stats["aseq"]
        assert stack.final_result == aseq.final_result
        model = stack_based_cost(uniform_counts(per_type_rate, length), 0.5)
        time_table.add_row(
            length,
            count,
            stack.per_slide_ms,
            aseq.per_slide_ms,
            speedup(stack, aseq),
            model / model_base,
        )
        memory_table.add_row(
            length,
            stack.peak_objects,
            aseq.peak_objects,
            stack.peak_objects / max(1, aseq.peak_objects),
        )
    return [time_table, memory_table]
