"""Fig. 16 — sharing gains: prefix sharing and Chop-Connect sweeps.

Four panels (paper Sec. 6.3.1/6.3.2):

* (a) prefix sharing, workload size 2..6 queries, shared prefix len 3;
* (b) prefix sharing, shared prefix length 2..6, 3 queries;
* (c) Chop-Connect, shared substring length 2..6, 3 queries;
* (d) Chop-Connect, workload size 2..6 queries, shared substring len 3.

Each compares the shared engine against per-query A-Seq (NonShare) on
the same stream; the paper reports 2-5x gains that grow with both the
shared length and the workload size.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentTable, Scale, time_engines
from repro.multi.chop_connect import ChopConnectEngine
from repro.multi.planner import plan_workload
from repro.multi.prefix_sharing import PrefixSharedEngine
from repro.multi.unshared import UnsharedEngine
from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet
from repro.query import seq


def _stream(scale: Scale, type_count: int, seed: int):
    return SyntheticTypeGenerator(
        alphabet(type_count), mean_gap_ms=1, seed=seed
    ).take(scale.multi_events)


def _window(scale: Scale) -> int:
    return 300 if scale.name == "full" else 120


def _cc_window(scale: Scale) -> int:
    # Chop-Connect's per-trigger connect product scales with the active
    # START count; the interior-update savings it buys dominate at
    # moderate windows (the regime the paper's Sec. 6.3.2 sweeps).
    return 150 if scale.name == "full" else 120


def run(scale: Scale) -> list[ExperimentTable]:
    return [
        prefix_by_query_count(scale),
        prefix_by_prefix_length(scale),
        cc_by_substring_length(scale),
        cc_by_query_count(scale),
    ]


def _compare(shared_factory, queries, events):
    stats = time_engines(
        [
            ("shared", shared_factory),
            ("nonshare", lambda: UnsharedEngine(queries)),
        ],
        events,
    )
    shared, nonshare = stats["shared"], stats["nonshare"]
    assert shared.final_result == nonshare.final_result
    gain = (
        nonshare.elapsed_s / shared.elapsed_s if shared.elapsed_s else 0.0
    )
    return shared, nonshare, gain


def prefix_by_query_count(scale: Scale) -> ExperimentTable:
    window_ms = _window(scale)
    table = ExperimentTable(
        "fig16a",
        f"Fig 16(a) — prefix sharing vs #queries (prefix len 3, "
        f"window={window_ms}ms)",
        ["queries", "shared ms/event", "nonshare ms/event", "gain"],
        notes="Paper: ~2x with the gap widening as queries are added.",
    )
    counts = (2, 3, 4, 5, 6) if scale.name == "full" else (2, 4, 6)
    for k in counts:
        type_count = 3 + k
        events = _stream(scale, type_count, seed=160 + k)
        queries = [
            seq("T0", "T1", "T2", f"T{3 + i}")
            .count()
            .within(ms=window_ms)
            .named(f"q{i}")
            .build()
            for i in range(k)
        ]
        shared, nonshare, gain = _compare(
            lambda q=queries: PrefixSharedEngine(q), queries, events
        )
        table.add_row(
            k,
            shared.per_event_us / 1000,
            nonshare.per_event_us / 1000,
            gain,
        )
    return table


def prefix_by_prefix_length(scale: Scale) -> ExperimentTable:
    window_ms = _window(scale)
    table = ExperimentTable(
        "fig16b",
        f"Fig 16(b) — prefix sharing vs shared prefix length "
        f"(3 queries, window={window_ms}ms)",
        ["prefix len", "shared ms/event", "nonshare ms/event", "gain"],
        notes="Paper: 3x at prefix length 2, rising to ~5x at length 6.",
    )
    lengths = (2, 3, 4, 5, 6) if scale.name == "full" else (2, 4, 6)
    for p in lengths:
        type_count = p + 3
        events = _stream(scale, type_count, seed=260 + p)
        prefix = [f"T{i}" for i in range(p)]
        queries = [
            seq(*prefix, f"T{p + i}")
            .count()
            .within(ms=window_ms)
            .named(f"q{i}")
            .build()
            for i in range(3)
        ]
        shared, nonshare, gain = _compare(
            lambda q=queries: PrefixSharedEngine(q), queries, events
        )
        table.add_row(
            p,
            shared.per_event_us / 1000,
            nonshare.per_event_us / 1000,
            gain,
        )
    return table


def cc_by_substring_length(scale: Scale) -> ExperimentTable:
    window_ms = _cc_window(scale)
    table = ExperimentTable(
        "fig16c",
        f"Fig 16(c) — Chop-Connect vs shared substring length "
        f"(3 queries, window={window_ms}ms)",
        ["substring len", "CC ms/event", "nonshare ms/event", "gain"],
        notes="Paper: gain grows from 1.3x to 2.6x with substring length.",
    )
    lengths = (2, 3, 4, 5, 6) if scale.name == "full" else (2, 4, 6)
    for s in lengths:
        type_count = s + 3
        events = _stream(scale, type_count, seed=360 + s)
        sub = [f"T{i}" for i in range(s)]
        # Three queries sharing the substring at their tails (the chop
        # shape of the paper's Q5 in Example 6), distinct heads.
        queries = [
            seq(f"T{s + i}", *sub)
            .count()
            .within(ms=window_ms)
            .named(f"q{i}")
            .build()
            for i in range(3)
        ]
        plans, best = plan_workload(queries)
        assert best is not None and len(best.types) >= s
        shared, nonshare, gain = _compare(
            lambda p=plans: ChopConnectEngine(p), queries, events
        )
        table.add_row(
            s,
            shared.per_event_us / 1000,
            nonshare.per_event_us / 1000,
            gain,
        )
    return table


def cc_by_query_count(scale: Scale) -> ExperimentTable:
    window_ms = _cc_window(scale)
    table = ExperimentTable(
        "fig16d",
        f"Fig 16(d) — Chop-Connect vs #queries (substring len 3, "
        f"window={window_ms}ms)",
        ["queries", "CC ms/event", "nonshare ms/event", "gain"],
        notes="Paper: the shared/unshared gap widens with workload size.",
    )
    counts = (2, 3, 4, 5, 6) if scale.name == "full" else (2, 4, 6)
    sub = ["T0", "T1", "T2"]
    for k in counts:
        type_count = 3 + k
        events = _stream(scale, type_count, seed=460 + k)
        # k queries sharing the substring at their tails, distinct heads.
        queries = [
            seq(f"T{3 + i}", *sub)
            .count()
            .within(ms=window_ms)
            .named(f"q{i}")
            .build()
            for i in range(k)
        ]
        plans, best = plan_workload(queries)
        assert best is not None and best.types == tuple(sub)
        shared, nonshare, gain = _compare(
            lambda p=plans: ChopConnectEngine(p), queries, events
        )
        table.add_row(
            k,
            shared.per_event_us / 1000,
            nonshare.per_event_us / 1000,
            gain,
        )
    return table
