"""One module per figure of the paper's evaluation (Sec. 6), plus a
supplementary absolute-throughput table specific to this reproduction."""

from repro.bench.experiments import (
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    kleene,
    throughput,
)

ALL = {
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "throughput": throughput,
    "kleene": kleene,
}

__all__ = [
    "ALL", "fig12", "fig13", "fig14", "fig15", "fig16", "kleene",
    "throughput",
]
