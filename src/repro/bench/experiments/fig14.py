"""Fig. 14 — (a) A-Seq scalability, (b) negation cost.

(a) Paper setting: lengths 6-10 with a 2000 ms window — the regime
where the stack-based method fails outright (memory overflow). Only
A-Seq runs; its per-event time should stay roughly flat as length
grows (the paper measures 0.0219 ms/event at the length-10 extreme,
comparable to the baseline's best case). The columnar engine is
reported alongside as an ablation of the same algorithm.

(b) Paper setting: q1 = (DELL, IPIX, AMAT) vs q2 = (DELL, IPIX, !QQQ,
AMAT). A-Seq pays ~nothing for negation (one counter reset per QQQ);
the two-step engine pays for post-filtering its materialized matches.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentTable, Scale, time_engines
from repro.baseline.twostep import TwoStepEngine
from repro.core.executor import ASeqEngine
from repro.datagen.stock import StockTradeGenerator
from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet
from repro.query import parse_query, seq

TYPE_COUNT = 20


def lengths_for(scale: Scale) -> tuple[int, ...]:
    if scale.name == "full":
        return (6, 7, 8, 9, 10)
    return (6, 8, 10)


def run(scale: Scale) -> list[ExperimentTable]:
    return [scalability_table(scale), negation_table(scale)]


def scalability_table(scale: Scale) -> ExperimentTable:
    window_ms = 2000 if scale.name == "full" else 500
    types = alphabet(TYPE_COUNT)
    events = SyntheticTypeGenerator(types, mean_gap_ms=1, seed=14).take(
        scale.events_for(1.0)
    )
    table = ExperimentTable(
        "fig14a",
        f"Fig 14(a) — A-Seq scalability (window={window_ms}ms; "
        f"stack-based infeasible here)",
        [
            "len", "A-Seq ms/event", "A-Seq peak cntrs",
            "columnar ms/event",
        ],
        notes=(
            "Paper: no significant degradation up to length 10 / window "
            "2000; their extreme case ran at 0.0219 ms/event. The "
            "columnar engine is this repo's structure-of-arrays "
            "ablation of the same algorithm."
        ),
    )
    for length in lengths_for(scale):
        query = seq(*types[:length]).count().within(ms=window_ms).build()
        stats = time_engines(
            [
                ("aseq", lambda q=query: ASeqEngine(q)),
                ("vec", lambda q=query: ASeqEngine(q, vectorized=True)),
            ],
            events,
        )
        aseq, vec = stats["aseq"], stats["vec"]
        assert aseq.final_result == vec.final_result
        table.add_row(
            length,
            aseq.per_event_us / 1000,
            aseq.peak_objects,
            vec.per_event_us / 1000,
        )
    return table


def negation_table(scale: Scale) -> ExperimentTable:
    window_ms = 500 if scale.name == "full" else 200
    generator = StockTradeGenerator(mean_gap_ms=1, seed=14)
    events = generator.take(scale.events_for(0.6))
    q1 = parse_query(
        f"PATTERN SEQ(DELL, IPIX, AMAT) AGG COUNT WITHIN {window_ms} ms",
        name="q1",
    )
    q2 = parse_query(
        f"PATTERN SEQ(DELL, IPIX, !QQQ, AMAT) AGG COUNT "
        f"WITHIN {window_ms} ms",
        name="q2",
    )
    table = ExperimentTable(
        "fig14b",
        f"Fig 14(b) — negation: A-Seq pushdown vs post-filtering "
        f"(window={window_ms}ms)",
        ["query", "A-Seq ms/event", "stack ms/event", "negation overhead"],
        notes=(
            "Rows: the positive query q1 and its negation q2. The stack "
            "engine runs the paper's later-filter-step for q2 (retained "
            "matches re-filtered at every output). The last column is "
            "each engine's q2/q1 time ratio — ~1.0 for A-Seq "
            "(constant-time Recounting Rule), >1 for the post-filter."
        ),
    )
    results = {}
    for query in (q1, q2):
        stats = time_engines(
            [
                ("aseq", lambda q=query: ASeqEngine(q)),
                (
                    "stack",
                    lambda q=query: TwoStepEngine(
                        q, negation_mode="deferred"
                    ),
                ),
            ],
            events,
        )
        assert stats["aseq"].final_result == stats["stack"].final_result
        results[query.name] = stats
    for name in ("q1", "q2"):
        stats = results[name]
        if name == "q1":
            overhead = "-"
        else:
            aseq_ratio = (
                results["q2"]["aseq"].elapsed_s
                / results["q1"]["aseq"].elapsed_s
            )
            stack_ratio = (
                results["q2"]["stack"].elapsed_s
                / results["q1"]["stack"].elapsed_s
            )
            overhead = f"aseq x{aseq_ratio:.2f} / stack x{stack_ratio:.2f}"
        table.add_row(
            name,
            stats["aseq"].per_event_us / 1000,
            stats["stack"].per_event_us / 1000,
            overhead,
        )
    return table
