"""Fig. 15 — multi-query: SASE vs ECube vs per-query A-Seq vs CC.

Paper setting: a 3-query workload with a common substring, evaluated
four ways: (1) SASE (stack-based) per query, (2) ECube — shared
sequence construction, independent counting, (3) A-Seq per query,
(4) multi-query A-Seq with Chop-Connect. ECube beats SASE 2-3x but
stays far behind A-Seq/CC, which never materialize matches.

The workload shares the substring (T1, T2, T3) at the tail of all
three patterns behind query-specific rare head types — the regime
where construction sharing pays (the shared DFS dominates, per-query
joins are cheap), matching ECube's published 2-3x over SASE.
"""

from __future__ import annotations

from repro.bench.harness import ExperimentTable, Scale, time_engines
from repro.baseline.twostep import TwoStepEngine
from repro.multi.chop_connect import ChopConnectEngine
from repro.multi.ecube import ECubeEngine
from repro.multi.planner import plan_workload
from repro.multi.unshared import UnsharedEngine
from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet
from repro.query import seq

SHARED = ("T1", "T2", "T3")
HEAD_WEIGHT = 0.05


def workload(window_ms: int):
    def build(name, head):
        return (
            seq(head, *SHARED)
            .count()
            .within(ms=window_ms)
            .named(name)
            .build()
        )

    return [build("Q1", "T0"), build("Q2", "T4"), build("Q3", "T5")]


def run(scale: Scale) -> list[ExperimentTable]:
    window_ms = 100 if scale.name == "full" else 60
    queries = workload(window_ms)
    plans, best = plan_workload(queries)
    assert best is not None and best.types == SHARED
    count = scale.multi_events if scale.name == "full" else scale.multi_events // 2
    events = SyntheticTypeGenerator(
        alphabet(6),
        weights={"T0": HEAD_WEIGHT, "T4": HEAD_WEIGHT, "T5": HEAD_WEIGHT},
        mean_gap_ms=1,
        seed=15,
    ).take(count)

    stats = time_engines(
        [
            (
                "SASE",
                lambda: UnsharedEngine(queries, engine_factory=TwoStepEngine),
            ),
            ("ECube", lambda: ECubeEngine(queries, shared_types=SHARED)),
            ("A-Seq", lambda: UnsharedEngine(queries)),
            ("CC", lambda: ChopConnectEngine(plans)),
        ],
        events,
    )
    final = {label: s.final_result for label, s in stats.items()}
    reference = final["A-Seq"]
    for label, result in final.items():
        assert result == reference, f"{label} diverged: {result}"

    table = ExperimentTable(
        "fig15",
        f"Fig 15 — 3-query workload, shared substring {SHARED} "
        f"(window={window_ms}ms)",
        ["system", "ms/event", "vs SASE", "peak objects"],
        notes=(
            "Paper: ECube outperforms SASE 2-3x by sharing construction "
            "but remains >=100x slower than A-Seq and CC, which overlap."
        ),
    )
    base = stats["SASE"].elapsed_s
    for label in ("SASE", "ECube", "A-Seq", "CC"):
        run_stats = stats[label]
        table.add_row(
            label,
            run_stats.per_event_us / 1000,
            base / run_stats.elapsed_s if run_stats.elapsed_s else 0.0,
            run_stats.peak_objects,
        )
    return [table]
