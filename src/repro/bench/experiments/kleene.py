"""Supplementary: Kleene-plus counting at flat per-event cost.

Not a paper figure — ``SEQ(A, B+, C)`` is this repo's extension in the
direction of the paper's follow-on work (GRETA). It is also the
starkest demonstration of match-free aggregation: the number of matches
is exponential in the instances per window (every non-empty subsequence
of B's), so *any* match-materializing engine is hopeless, yet the
prefix-counter recurrence ``count' = 2*count + prev`` keeps A-Seq's
per-event work constant. The table sweeps the window so the in-window
match count climbs from thousands to astronomically large while the
measured ms/event stays flat.
"""

from __future__ import annotations

import math

from repro.bench.harness import ExperimentTable, Scale, time_engines
from repro.core.executor import ASeqEngine
from repro.datagen.synthetic import SyntheticTypeGenerator, alphabet
from repro.query import seq

TYPE_COUNT = 12


def run(scale: Scale) -> list[ExperimentTable]:
    types = alphabet(TYPE_COUNT)
    events = SyntheticTypeGenerator(types, mean_gap_ms=1, seed=88).take(
        scale.events_for(0.6)
    )
    query_of = (
        lambda window_ms: seq(types[0], f"{types[1]}+", types[2])
        .count()
        .within(ms=window_ms)
        .build()
    )
    windows = (
        (60, 120, 300, 600, 1200)
        if scale.name == "full"
        else (60, 150, 300)
    )
    table = ExperimentTable(
        "kleene",
        "Supplementary — Kleene-plus: exponential matches, flat cost",
        [
            "window ms", "~B per window", "final count",
            "count magnitude", "A-Seq ms/event",
        ],
        notes=(
            "SEQ(A, B+, C): the match count grows ~2^(B per window); a "
            "match-materializing engine cannot run any row past the "
            "first. A-Seq's per-event time stays flat (one counter "
            "doubling per B). Not a paper figure; see DESIGN.md ext. 19."
        ),
    )
    for window_ms in windows:
        query = query_of(window_ms)
        stats = time_engines(
            [("aseq", lambda q=query: ASeqEngine(q))], events
        )["aseq"]
        count = stats.final_result
        magnitude = (
            f"10^{int(math.log10(count))}" if count > 0 else "0"
        )
        table.add_row(
            window_ms,
            window_ms / TYPE_COUNT,
            count if count < 10**9 else float(count),
            magnitude,
            stats.per_event_us / 1000,
        )
    return [table]
