"""Regenerate the paper's evaluation tables.

Usage::

    python -m repro.bench                 # all figures, full scale
    python -m repro.bench --quick         # all figures, reduced sizes
    python -m repro.bench fig12 fig14     # specific figures
    python -m repro.bench --markdown      # emit markdown tables
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL
from repro.bench.harness import scale_named
from repro.bench.report import render_tables


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the A-Seq paper's evaluation (Sec. 6).",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[[], *ALL] if sys.version_info < (3, 12) else list(ALL),
        help="figures to run (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced stream sizes (seconds instead of minutes)",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit GitHub-flavoured markdown tables",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="additionally write all results as machine-readable JSON",
    )
    args = parser.parse_args(argv)
    scale = scale_named("quick" if args.quick else "full")
    chosen = args.figures or list(ALL)

    print(f"A-Seq reproduction benchmarks — scale: {scale.name}")
    print()
    collected = []
    for name in chosen:
        module = ALL[name]
        started = time.perf_counter()
        tables = module.run(scale)
        elapsed = time.perf_counter() - started
        print(render_tables(tables, markdown=args.markdown))
        print()
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
        for table in tables:
            collected.append(
                {
                    "experiment": table.experiment_id,
                    "title": table.title,
                    "columns": table.columns,
                    "rows": table.rows,
                    "notes": table.notes,
                    "scale": scale.name,
                    "elapsed_s": elapsed,
                }
            )
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, default=str)
        print(f"[wrote {len(collected)} tables to {args.json}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
