"""Plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        if abs(value) >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: str = "",
) -> str:
    """Render one fixed-width table with a title rule."""
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(column)), *(len(row[i]) for row in formatted), 1)
        if formatted
        else len(str(column))
        for i, column in enumerate(columns)
    ]
    lines = [title, "=" * len(title)]
    header = "  ".join(
        str(column).rjust(width) for column, width in zip(columns, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in formatted:
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


def render_markdown(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    notes: str = "",
) -> str:
    """Render one table as GitHub-flavoured markdown."""
    lines = [f"### {title}", ""]
    lines.append("| " + " | ".join(str(c) for c in columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_cell(cell) for cell in row) + " |"
        )
    if notes:
        lines.append("")
        lines.append(notes)
    return "\n".join(lines)


def render_tables(tables, markdown: bool = False) -> str:
    """Render a sequence of ExperimentTable-like objects."""
    renderer = render_markdown if markdown else render_table
    return "\n\n".join(
        renderer(t.title, t.columns, t.rows, t.notes) for t in tables
    )
