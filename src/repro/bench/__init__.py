"""Benchmark harness: regenerates every table and figure of Sec. 6.

``python -m repro.bench`` runs all experiments and prints the tables
recorded in EXPERIMENTS.md; ``python -m repro.bench --quick`` runs
reduced sizes, ``python -m repro.bench fig12`` runs one figure.
"""

from repro.bench.harness import ExperimentTable, Scale
from repro.bench.report import render_table, render_tables

__all__ = ["ExperimentTable", "Scale", "render_table", "render_tables"]
