"""Shared experiment plumbing: scales, tables, and timing wrappers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.engine.metrics import RunStats, measure_run
from repro.events.event import Event
from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class Scale:
    """How big an experiment run is.

    ``quick`` keeps every benchmark interactive (seconds); ``full``
    approaches the paper's stream sizes where Python can afford it.
    The baseline's exponential blow-up is the whole point of the paper,
    so full-scale runs of the longest patterns take minutes by design —
    ``events_for`` lets an experiment shrink the stream for the worst
    baseline configurations without touching A-Seq's.
    """

    name: str
    events: int
    multi_events: int

    def events_for(self, fraction: float = 1.0) -> int:
        return max(200, int(self.events * fraction))


QUICK = Scale("quick", events=3_000, multi_events=4_000)
FULL = Scale("full", events=20_000, multi_events=30_000)


def scale_named(name: str) -> Scale:
    if name == "quick":
        return QUICK
    if name == "full":
        return FULL
    raise ValueError(f"unknown scale {name!r}; use 'quick' or 'full'")


@dataclass
class ExperimentTable:
    """One table/figure reproduction: rows of measured values."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        self.rows.append(list(values))


def time_engines(
    label_factories: Sequence[tuple[str, Callable[..., Any]]],
    events: Sequence[Event],
    sample_memory_every: int = 16,
    instrument: bool = False,
) -> dict[str, RunStats]:
    """Run each (label, engine factory) over the same event list.

    With ``instrument=True`` each engine gets its own fresh
    :class:`~repro.obs.registry.MetricsRegistry`, passed to the factory
    as a ``registry=`` keyword; the registry's counters land in that
    run's ``RunStats.extras``. Timings taken this way include the
    instrumentation overhead — use them for explanations, not for
    headline figures.
    """
    results: dict[str, RunStats] = {}
    for label, factory in label_factories:
        if instrument:
            registry = MetricsRegistry()
            engine = factory(registry=registry)
            results[label] = measure_run(
                label, engine, events,
                sample_memory_every=sample_memory_every,
                registry=registry,
            )
        else:
            results[label] = measure_run(
                label, factory(), events,
                sample_memory_every=sample_memory_every,
            )
    return results


def speedup(baseline: RunStats, contender: RunStats) -> float:
    """How many times faster the contender ran."""
    if contender.elapsed_s == 0:
        return float("inf")
    return baseline.elapsed_s / contender.elapsed_s
