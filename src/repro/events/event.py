"""The event instance model.

An event is an occurrence of interest: it has an *event type* (a string
such as ``"DELL"`` or ``"TypePassword"``), an integer *timestamp* in
milliseconds, and an optional bag of named attributes (price, user id,
IP address, ...). Events are immutable once created; every engine in
this library assumes it may hold a reference to an event without the
event changing underneath it.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

_EMPTY_ATTRS: dict[str, Any] = {}


class Event:
    """A single immutable event instance.

    Parameters
    ----------
    event_type:
        Name of the event type (``e.type`` in the paper).
    ts:
        Occurrence timestamp in integer milliseconds. Streams deliver
        events in non-decreasing ``ts`` order.
    attrs:
        Optional mapping of attribute names to values, used by WHERE
        predicates, GROUP BY, and value aggregates (SUM/AVG/MAX/MIN).
    seq:
        Optional arrival sequence number assigned by the stream. Used
        only for diagnostics and stable tie-breaking in reports.
    """

    __slots__ = ("event_type", "ts", "attrs", "seq", "_hash")

    def __init__(
        self,
        event_type: str,
        ts: int,
        attrs: Mapping[str, Any] | None = None,
        seq: int = -1,
    ):
        self.event_type = event_type
        self.ts = ts
        self.attrs = dict(attrs) if attrs else _EMPTY_ATTRS
        self.seq = seq
        self._hash = -1

    def __getitem__(self, name: str) -> Any:
        """Return attribute ``name``; raises ``KeyError`` if absent."""
        return self.attrs[name]

    def get(self, name: str, default: Any = None) -> Any:
        """Return attribute ``name`` or ``default`` if absent."""
        return self.attrs.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.attrs

    def __iter__(self) -> Iterator[str]:
        return iter(self.attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.attrs:
            return f"Event({self.event_type!r}, ts={self.ts}, attrs={self.attrs!r})"
        return f"Event({self.event_type!r}, ts={self.ts})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return (
            self.event_type == other.event_type
            and self.ts == other.ts
            and self.attrs == other.attrs
        )

    def __hash__(self) -> int:
        # Cached and independent of the mutable ``seq`` so an event's
        # hash is stable from construction (hot path: snapshot tables).
        cached = self._hash
        if cached == -1:
            cached = hash((self.event_type, self.ts))
            self._hash = cached
        return cached

    def with_attrs(self, **updates: Any) -> "Event":
        """Return a copy of this event with some attributes replaced."""
        merged = dict(self.attrs)
        merged.update(updates)
        return Event(self.event_type, self.ts, merged, self.seq)
