"""Event model and stream substrate.

Everything in the library consumes :class:`~repro.events.event.Event`
instances delivered in timestamp order through
:class:`~repro.events.stream.EventStream`.
"""

from repro.events.batch import BatchSchema, EventBatch, batches_from_events
from repro.events.event import Event
from repro.events.reorder import ReorderBuffer, reordered
from repro.events.schema import AttributeSpec, EventSchema, StreamSchema
from repro.events.stream import EventStream, merge_streams

__all__ = [
    "BatchSchema",
    "Event",
    "EventBatch",
    "EventSchema",
    "AttributeSpec",
    "ReorderBuffer",
    "StreamSchema",
    "EventStream",
    "batches_from_events",
    "merge_streams",
    "reordered",
]
