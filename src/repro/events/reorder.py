"""Bounded reordering for slightly out-of-order streams.

The paper assumes in-order arrival and names out-of-order handling as
future work (Sec. 8). This module provides the standard streaming
answer: a :class:`ReorderBuffer` with a *slack* bound — events are
held back until the watermark (max timestamp seen minus the slack)
passes them, then released in timestamp order. Any engine in this
library can then consume a disordered feed::

    buffer = ReorderBuffer(slack_ms=50)
    for event in noisy_feed:
        for ready in buffer.push(event):
            engine.process(ready)
    for ready in buffer.flush():
        engine.process(ready)

An event arriving *later* than its slack allows (its timestamp is
already below the watermark) is a contract violation: by default it
raises :class:`~repro.errors.OutOfOrderError`; with ``drop_late=True``
it is counted and discarded, which matches the at-most-slack semantics
of watermark-based stream processors.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.errors import OutOfOrderError
from repro.events.event import Event
from repro.obs.registry import MetricsRegistry, resolve_registry


class ReorderBuffer:
    """Restores timestamp order within a bounded disorder window.

    Parameters
    ----------
    slack_ms:
        Maximum disorder the producer guarantees: an event may arrive
        at most ``slack_ms`` of stream time after a later-stamped one.
    drop_late:
        Discard events that violate the slack instead of raising.
    registry:
        Optional metrics registry; late drops are exported as
        ``late_events_dropped_total`` so silent loss stays visible.
    """

    def __init__(
        self,
        slack_ms: int,
        drop_late: bool = False,
        registry: MetricsRegistry | None = None,
    ):
        if slack_ms < 0:
            raise ValueError("slack must be non-negative")
        self._slack_ms = slack_ms
        self._drop_late = drop_late
        self._heap: list[tuple[int, int, Event]] = []
        self._serial = 0
        self._watermark = float("-inf")
        self._released_ts = float("-inf")
        self.events_dropped = 0
        self._m_dropped = resolve_registry(registry).counter(
            "late_events_dropped_total",
            "events discarded for arriving beyond the reorder slack",
        )

    @property
    def pending(self) -> int:
        """Events currently held back."""
        return len(self._heap)

    @property
    def watermark(self) -> float:
        """Releases are complete up to (watermark - slack)."""
        return self._watermark

    def push(self, event: Event) -> list[Event]:
        """Accept one event; returns the events now safe to release."""
        if event.ts < self._released_ts:
            if self._drop_late:
                self.events_dropped += 1
                self._m_dropped.inc()
                return []
            raise OutOfOrderError(int(self._released_ts), event.ts)
        self._serial += 1
        heapq.heappush(self._heap, (event.ts, self._serial, event))
        if event.ts > self._watermark:
            self._watermark = event.ts
        return self._drain(self._watermark - self._slack_ms)

    def flush(self) -> list[Event]:
        """Release everything still held (end of stream)."""
        return self._drain(float("inf"))

    def _drain(self, up_to: float) -> list[Event]:
        released: list[Event] = []
        heap = self._heap
        while heap and heap[0][0] <= up_to:
            ts, _, event = heapq.heappop(heap)
            self._released_ts = ts
            released.append(event)
        return released


def reordered(
    events: Iterable[Event],
    slack_ms: int,
    drop_late: bool = False,
    registry: MetricsRegistry | None = None,
) -> Iterator[Event]:
    """Wrap an event iterable, yielding it in restored timestamp order."""
    buffer = ReorderBuffer(slack_ms, drop_late=drop_late, registry=registry)
    for event in events:
        yield from buffer.push(event)
    yield from buffer.flush()
