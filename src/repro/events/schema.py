"""Optional schemas for event streams.

A schema is never required — the engines work on schemaless events —
but workload generators and the validating stream wrapper use schemas
to catch typos in attribute names early, the same role the catalog
plays in a database system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import StreamError
from repro.events.event import Event


@dataclass(frozen=True)
class AttributeSpec:
    """Declares one attribute of an event type.

    ``kind`` is a plain Python type used for isinstance validation
    (``int``, ``float``, ``str``, ...). ``required`` attributes must be
    present on every instance of the type.
    """

    name: str
    kind: type = object
    required: bool = True

    def validate(self, event: Event) -> None:
        """Raise :class:`StreamError` if ``event`` violates this spec."""
        if self.name not in event.attrs:
            if self.required:
                raise StreamError(
                    f"event of type {event.event_type!r} is missing required "
                    f"attribute {self.name!r}"
                )
            return
        value = event.attrs[self.name]
        if self.kind is not object and not isinstance(value, self.kind):
            raise StreamError(
                f"attribute {self.name!r} of event type {event.event_type!r} "
                f"expected {self.kind.__name__}, got {type(value).__name__}"
            )


@dataclass(frozen=True)
class EventSchema:
    """Declares the attributes of one event type."""

    event_type: str
    attributes: tuple[AttributeSpec, ...] = ()

    def validate(self, event: Event) -> None:
        """Raise :class:`StreamError` if ``event`` violates the schema."""
        if event.event_type != self.event_type:
            raise StreamError(
                f"schema for {self.event_type!r} cannot validate an event of "
                f"type {event.event_type!r}"
            )
        for spec in self.attributes:
            spec.validate(event)

    def make(self, ts: int, **attrs: Any) -> Event:
        """Build and validate an event of this type."""
        event = Event(self.event_type, ts, attrs)
        self.validate(event)
        return event


@dataclass
class StreamSchema:
    """The set of event types a stream may carry."""

    event_types: dict[str, EventSchema] = field(default_factory=dict)
    strict: bool = False

    @classmethod
    def of(cls, *schemas: EventSchema, strict: bool = False) -> "StreamSchema":
        """Build a stream schema from individual event schemas."""
        return cls({s.event_type: s for s in schemas}, strict=strict)

    def add(self, schema: EventSchema) -> None:
        """Register one more event type."""
        self.event_types[schema.event_type] = schema

    def validate(self, event: Event) -> None:
        """Validate one event against the stream schema.

        Unknown event types are rejected only in ``strict`` mode; this
        mirrors how CEP engines typically ignore irrelevant types.
        """
        schema = self.event_types.get(event.event_type)
        if schema is None:
            if self.strict:
                raise StreamError(
                    f"unknown event type {event.event_type!r} on a strict stream"
                )
            return
        schema.validate(event)


def schema_from_example(event_type: str, attrs: Mapping[str, Any]) -> EventSchema:
    """Infer an :class:`EventSchema` from a sample attribute mapping."""
    specs = tuple(
        AttributeSpec(name, type(value)) for name, value in sorted(attrs.items())
    )
    return EventSchema(event_type, specs)
