"""Event stream abstractions.

An :class:`EventStream` is an iterable of :class:`~repro.events.event.Event`
instances in non-decreasing timestamp order. The class wraps any event
iterable and enforces the in-order contract the paper assumes (Sec. 8 of
the paper leaves out-of-order handling to future work, so this library
rejects it loudly instead of silently producing wrong counts).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import OutOfOrderError
from repro.events.event import Event
from repro.events.schema import StreamSchema


class EventStream:
    """An in-order stream of events.

    The stream is single-pass: like a network feed, once consumed it is
    exhausted. Use :meth:`from_list` with a reusable list when tests need
    to replay the same events into several engines.

    Parameters
    ----------
    source:
        Any iterable of events, already in non-decreasing ``ts`` order.
    schema:
        Optional :class:`StreamSchema` validated against every event.
    enforce_order:
        When true (default), raise :class:`OutOfOrderError` on a
        timestamp regression instead of delivering the event.
    """

    def __init__(
        self,
        source: Iterable[Event],
        schema: StreamSchema | None = None,
        enforce_order: bool = True,
    ):
        self._source = iter(source)
        self._schema = schema
        self._enforce_order = enforce_order
        self._last_ts: int | None = None
        self._count = 0

    @classmethod
    def from_list(cls, events: Sequence[Event], **kwargs) -> "EventStream":
        """Build a stream over an in-memory event list."""
        return cls(iter(events), **kwargs)

    @property
    def events_delivered(self) -> int:
        """Number of events handed out so far."""
        return self._count

    def __iter__(self) -> Iterator[Event]:
        return self

    def __next__(self) -> Event:
        event = next(self._source)
        if self._enforce_order and self._last_ts is not None:
            if event.ts < self._last_ts:
                raise OutOfOrderError(self._last_ts, event.ts)
        if self._schema is not None:
            self._schema.validate(event)
        self._last_ts = event.ts
        if event.seq < 0:
            event.seq = self._count
        self._count += 1
        return event

    def filtered(self, predicate: Callable[[Event], bool]) -> "EventStream":
        """Return a derived stream keeping only events satisfying ``predicate``."""
        return EventStream(
            (e for e in self if predicate(e)), enforce_order=False
        )

    def limited(self, max_events: int) -> "EventStream":
        """Return a derived stream truncated to ``max_events`` events."""

        def take() -> Iterator[Event]:
            for i, event in enumerate(self):
                if i >= max_events:
                    return
                yield event

        return EventStream(take(), enforce_order=False)


def merge_streams(*streams: Iterable[Event]) -> EventStream:
    """Merge several in-order streams into one in-order stream.

    Ties are broken by the order the streams were passed in, which keeps
    merges deterministic for seeded workload generators.
    """
    merged = heapq.merge(*streams, key=lambda e: e.ts)
    return EventStream(merged)


def collect(stream: Iterable[Event]) -> list[Event]:
    """Drain a stream into a list (testing convenience)."""
    return list(stream)
