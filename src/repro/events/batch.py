"""Struct-of-arrays event batches — the zero-object columnar format.

An :class:`EventBatch` carries a micro-batch of events as parallel
numpy arrays (one ``int32`` type-code array, one ``int64`` timestamp
array, one column per attribute) plus a :class:`BatchSchema` mapping
type codes back to type names. Batches flow from the data generators
through :meth:`StreamEngine.process_event_batch` and across the shard
wire without ever constructing :class:`~repro.events.event.Event`
objects, which is what lifts the measured throughput ceiling from
"Python object dispatch" to "counter arithmetic" (see
docs/PERFORMANCE.md, "Columnar path").

Exactness contract: :meth:`EventBatch.from_events` followed by
:meth:`EventBatch.to_events` reproduces events that compare equal to
the originals (type, timestamp, attributes), and every engine path
consuming batches is differentially pinned against the per-event
reference engine. Columns preserve Python value types: all-``int``
columns stay ``int64``, all-``float`` columns ``float64``, all-``str``
columns fixed-width unicode; anything mixed (bools included, so they
stay ``bool``) falls back to an ``object`` column.

Wire format (:meth:`to_wire` / :meth:`from_wire`)::

    u32 header_len | header JSON (utf-8) | segment bytes...

The header describes the schema (type names, column names) and one
``[kind, name, dtype, nbytes]`` entry per segment, in order: the code
array, the timestamp array, then per column the optional presence
mask followed by the data. Numeric and unicode columns travel as raw
``tobytes`` buffers decoded with ``np.frombuffer``; ``object`` columns
are pickled (the documented fallback for heterogeneous attributes).
"""

from __future__ import annotations

import json
import pickle
import struct
from itertools import islice
from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import OutOfOrderError, StreamError
from repro.events.event import Event

_ABSENT = object()

_HEADER = struct.Struct("<I")

#: Wire format version (bump on incompatible layout changes).
WIRE_VERSION = 1


class BatchSchema:
    """Type-code and column dictionary shared by a run of batches.

    Immutable: :meth:`extended` returns a new schema whose type codes
    are a superset *prefix-compatible* with this one (existing codes
    never change meaning), so per-schema caches keyed on object
    identity are invalidated exactly when the dictionary grows.
    """

    __slots__ = ("types", "columns", "code_of")

    def __init__(
        self, types: Sequence[str], columns: Sequence[str] = ()
    ) -> None:
        self.types: tuple[str, ...] = tuple(types)
        self.columns: tuple[str, ...] = tuple(columns)
        self.code_of: dict[str, int] = {
            name: code for code, name in enumerate(self.types)
        }
        if len(self.code_of) != len(self.types):
            raise StreamError("batch schema has duplicate type names")

    def extended(
        self, types: Iterable[str], columns: Iterable[str] = ()
    ) -> "BatchSchema":
        """This schema, grown to cover ``types``/``columns`` (self when
        it already does)."""
        code_of = self.code_of
        new_types = [t for t in types if t not in code_of]
        seen = set(self.columns)
        new_columns = [c for c in columns if c not in seen and not seen.add(c)]
        if not new_types and not new_columns:
            return self
        return BatchSchema(
            self.types + tuple(dict.fromkeys(new_types)),
            self.columns + tuple(new_columns),
        )

    def __repr__(self) -> str:
        return (
            f"BatchSchema(types={len(self.types)}, "
            f"columns={list(self.columns)!r})"
        )


def _column_array(
    values: list[Any], n: int
) -> tuple[np.ndarray, np.ndarray | None]:
    """Build one attribute column (+ presence mask) preserving values.

    ``values`` uses the ``_ABSENT`` sentinel for rows lacking the
    attribute. Column dtype is chosen so ``tolist()`` round-trips the
    original Python values exactly; mixed or exotic columns fall back
    to ``object`` dtype rather than coercing.
    """
    present = None
    if any(v is _ABSENT for v in values):
        present = np.fromiter(
            (v is not _ABSENT for v in values), dtype=bool, count=n
        )
    kinds = {type(v) for v in values if v is not _ABSENT}
    if kinds == {int}:
        try:
            return (
                np.fromiter(
                    (0 if v is _ABSENT else v for v in values),
                    dtype=np.int64,
                    count=n,
                ),
                present,
            )
        except OverflowError:
            pass  # ints beyond int64: keep them exact as objects
    elif kinds == {float}:
        return (
            np.fromiter(
                (0.0 if v is _ABSENT else v for v in values),
                dtype=np.float64,
                count=n,
            ),
            present,
        )
    elif kinds == {str}:
        return (
            np.asarray(
                ["" if v is _ABSENT else v for v in values], dtype=np.str_
            ),
            present,
        )
    column = np.empty(n, dtype=object)
    for i, v in enumerate(values):
        column[i] = None if v is _ABSENT else v
    return column, present


class EventBatch:
    """One micro-batch of events in struct-of-arrays form.

    Arrays are parallel: row ``i`` is the event
    ``(schema.types[codes[i]], ts[i], {attributes present at i})``.
    Timestamps are expected non-decreasing (the same in-order contract
    :class:`~repro.events.stream.EventStream` enforces);
    :meth:`first_regression` locates violations so engine lanes can
    reject them identically to the per-event path.
    """

    __slots__ = ("schema", "codes", "ts", "cols", "present", "_events")

    def __init__(
        self,
        schema: BatchSchema,
        codes: np.ndarray,
        ts: np.ndarray,
        cols: dict[str, np.ndarray] | None = None,
        present: dict[str, np.ndarray] | None = None,
    ) -> None:
        self.schema = schema
        self.codes = np.asarray(codes, dtype=np.int32)
        self.ts = np.asarray(ts, dtype=np.int64)
        if len(self.codes) != len(self.ts):
            raise StreamError("code and timestamp arrays disagree on length")
        self.cols = cols or {}
        self.present = present or {}
        self._events: list[Event] | None = None

    # ----- construction -----------------------------------------------------

    @classmethod
    def from_events(
        cls,
        events: Sequence[Event],
        schema: BatchSchema | None = None,
    ) -> "EventBatch":
        """Columnarize a list of events (batch→object inverse of
        :meth:`to_events`).

        A supplied ``schema`` is extended as needed (never mutated);
        reusing the returned batch's schema across consecutive calls
        keeps type codes stable and per-schema engine caches warm.
        """
        n = len(events)
        column_names: dict[str, None] = {}
        for event in events:
            for name in event.attrs:
                column_names.setdefault(name)
        types = dict.fromkeys(event.event_type for event in events)
        if schema is None:
            schema = BatchSchema(types, column_names)
        else:
            schema = schema.extended(types, column_names)
        code_of = schema.code_of
        codes = np.fromiter(
            (code_of[event.event_type] for event in events),
            dtype=np.int32,
            count=n,
        )
        ts = np.fromiter(
            (event.ts for event in events), dtype=np.int64, count=n
        )
        cols: dict[str, np.ndarray] = {}
        present: dict[str, np.ndarray] = {}
        for name in column_names:
            values = [event.attrs.get(name, _ABSENT) for event in events]
            column, mask = _column_array(values, n)
            cols[name] = column
            if mask is not None:
                present[name] = mask
        return cls(schema, codes, ts, cols, present)

    @classmethod
    def empty(cls, schema: BatchSchema | None = None) -> "EventBatch":
        schema = schema or BatchSchema(())
        return cls(
            schema,
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int64),
        )

    # ----- basics -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.codes)

    def first_ts(self) -> int:
        return int(self.ts[0])

    def last_ts(self) -> int:
        return int(self.ts[-1])

    def first_regression(
        self, previous_ts: int | None = None
    ) -> tuple[int, int] | None:
        """The first in-batch (or cross-batch) timestamp regression as
        ``(previous, offending)``, or None for an in-order batch."""
        ts = self.ts
        n = len(ts)
        if n == 0:
            return None
        if previous_ts is not None and int(ts[0]) < previous_ts:
            return (int(previous_ts), int(ts[0]))
        if n > 1:
            bad = np.nonzero(ts[1:] < ts[:-1])[0]
            if bad.size:
                i = int(bad[0])
                return (int(ts[i]), int(ts[i + 1]))
        return None

    def ensure_in_order(self, previous_ts: int | None = None) -> None:
        """Raise :class:`OutOfOrderError` exactly where the per-event
        :class:`~repro.events.stream.EventStream` would."""
        regression = self.first_regression(previous_ts)
        if regression is not None:
            raise OutOfOrderError(*regression)

    # ----- derivation -------------------------------------------------------

    def take(self, indices: np.ndarray) -> "EventBatch":
        """Row subset by (ascending) index array; shares the schema."""
        indices = np.asarray(indices, dtype=np.int64)
        cols = {name: col[indices] for name, col in self.cols.items()}
        present = {
            name: mask[indices] for name, mask in self.present.items()
        }
        return EventBatch(
            self.schema, self.codes[indices], self.ts[indices], cols, present
        )

    def islice(self, start: int, stop: int) -> "EventBatch":
        cols = {name: col[start:stop] for name, col in self.cols.items()}
        present = {
            name: mask[start:stop] for name, mask in self.present.items()
        }
        return EventBatch(
            self.schema,
            self.codes[start:stop],
            self.ts[start:stop],
            cols,
            present,
        )

    # ----- materialization --------------------------------------------------

    def to_events(self) -> list[Event]:
        """Materialize :class:`Event` objects (memoized).

        The safety valve for every non-vectorizable consumer: the list
        is built once and shared, so several fallback registrations in
        one engine pay the object cost a single time per batch.
        """
        if self._events is None:
            types = self.schema.types
            codes = self.codes.tolist()
            ts = self.ts.tolist()
            cols = {
                name: col.tolist() for name, col in self.cols.items()
            }
            present = {
                name: mask.tolist() for name, mask in self.present.items()
            }
            events = []
            for i in range(len(codes)):
                attrs: dict[str, Any] | None = None
                for name, values in cols.items():
                    mask = present.get(name)
                    if mask is None or mask[i]:
                        if attrs is None:
                            attrs = {}
                        attrs[name] = values[i]
                events.append(Event(types[codes[i]], ts[i], attrs))
            self._events = events
        return self._events

    def to_records(self) -> list[tuple[str, int, dict | None]]:
        """Shard-journal records ``(type, ts, attrs|None)`` — the same
        tuples the per-event sharded router journals, so replay and
        recovery code never sees a new record shape."""
        if self._events is not None:
            return [
                (event.event_type, event.ts, event.attrs or None)
                for event in self._events
            ]
        types = self.schema.types
        codes = self.codes.tolist()
        ts = self.ts.tolist()
        cols = {name: col.tolist() for name, col in self.cols.items()}
        present = {
            name: mask.tolist() for name, mask in self.present.items()
        }
        records: list[tuple[str, int, dict | None]] = []
        for i in range(len(codes)):
            attrs: dict[str, Any] | None = None
            for name, values in cols.items():
                mask = present.get(name)
                if mask is None or mask[i]:
                    if attrs is None:
                        attrs = {}
                    attrs[name] = values[i]
            records.append((types[codes[i]], ts[i], attrs))
        return records

    # ----- flat-buffer wire -------------------------------------------------

    def to_wire(self) -> bytes:
        """Serialize as a flat buffer: JSON header + raw column bytes."""
        segments: list[list[Any]] = []
        parts: list[bytes] = []

        def add(kind: str, name: str, array: np.ndarray) -> None:
            if array.dtype == object:
                data = pickle.dumps(
                    array.tolist(), protocol=pickle.HIGHEST_PROTOCOL
                )
                segments.append([kind, name, None, len(data)])
            else:
                data = array.tobytes()
                segments.append([kind, name, array.dtype.str, len(data)])
            parts.append(data)

        add("codes", "", self.codes)
        add("ts", "", self.ts)
        for name, col in self.cols.items():
            mask = self.present.get(name)
            if mask is not None:
                add("mask", name, mask)
            add("col", name, col)
        header = json.dumps(
            {
                "v": WIRE_VERSION,
                "n": len(self),
                "types": list(self.schema.types),
                "segs": segments,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        return b"".join([_HEADER.pack(len(header)), header, *parts])

    @classmethod
    def from_wire(cls, data: bytes) -> "EventBatch":
        """Decode :meth:`to_wire` output (arrays may be read-only views
        over the buffer; consumers never mutate batch columns)."""
        if len(data) < _HEADER.size:
            raise StreamError("truncated columnar batch frame")
        (header_len,) = _HEADER.unpack_from(data)
        offset = _HEADER.size
        try:
            header = json.loads(data[offset:offset + header_len])
        except ValueError as error:
            raise StreamError(
                f"corrupt columnar batch header: {error}"
            ) from None
        if header.get("v") != WIRE_VERSION:
            raise StreamError(
                f"unsupported columnar wire version {header.get('v')!r}"
            )
        offset += header_len
        n = int(header["n"])
        codes: np.ndarray | None = None
        ts: np.ndarray | None = None
        cols: dict[str, np.ndarray] = {}
        present: dict[str, np.ndarray] = {}
        for kind, name, dtype, nbytes in header["segs"]:
            raw = data[offset:offset + nbytes]
            if len(raw) != nbytes:
                raise StreamError("truncated columnar batch segment")
            offset += nbytes
            if dtype is None:
                array = np.empty(n, dtype=object)
                values = pickle.loads(raw)
                for i, value in enumerate(values):
                    array[i] = value
            else:
                array = np.frombuffer(raw, dtype=np.dtype(dtype))
            if kind == "codes":
                codes = array
            elif kind == "ts":
                ts = array
            elif kind == "mask":
                present[name] = array
            elif kind == "col":
                cols[name] = array
            else:
                raise StreamError(
                    f"unknown columnar segment kind {kind!r}"
                )
        if codes is None or ts is None:
            raise StreamError("columnar batch frame lacks code/ts arrays")
        schema = BatchSchema(header["types"], tuple(cols))
        return cls(schema, codes, ts, cols, present)

    def __repr__(self) -> str:
        return (
            f"EventBatch(n={len(self)}, types={len(self.schema.types)}, "
            f"columns={list(self.cols)!r})"
        )


def batches_from_events(
    events: Iterable[Event],
    batch_size: int = 1024,
    schema: BatchSchema | None = None,
) -> Iterator[EventBatch]:
    """Chunk any event iterable into :class:`EventBatch` instances.

    The schema grows across batches as new types/attributes appear and
    is shared between consecutive batches otherwise, keeping engine-side
    per-schema routing caches hot.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    iterator = iter(events)
    while True:
        chunk = list(islice(iterator, batch_size))
        if not chunk:
            return
        batch = EventBatch.from_events(chunk, schema=schema)
        schema = batch.schema
        yield batch
