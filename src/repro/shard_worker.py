"""Standalone networked shard worker: ``python -m repro.shard_worker``.

One process, one listener, any number of concurrent **sessions**. The
router's ``SocketTransport`` connects two framed-TCP channels (data +
control) per shard, ships a configure document — query *texts*,
vectorized flag, obs config, orphan budget — and from then on speaks
exactly the same wire protocol as a forked pipe worker: each session
runs :func:`repro.engine.sharded._worker_loop` unchanged in its own
thread. Channel pairs are matched by the ``session`` id the router
puts in its hello frames, so one worker process can own several shard
partitions at once — the unit of placement for the elastic membership
layer (:mod:`repro.resilience.membership`).

Lifecycle:

* a **session** is one (data, control) channel pair plus a fresh
  engine built from its configure document. When the session ends with
  ``"eof"`` (router died or is reconnecting) or ``"stop"`` (router
  shut down, re-seeded elsewhere, or migrated the partition away), the
  session thread exits and the listener keeps accepting — a revive or
  migration on the router side is just a fresh session here, seeded
  through the normal ``seed`` + journal-replay protocol;
* **orphan protection**: inside a session the worker loop exits after
  the orphan budget of total silence — this is the idle-connection
  deadline that catches a router that vanished *without* FIN (host
  died, network partitioned), where a parent-pid watch means nothing
  for a remote worker. Between sessions the listener itself times out
  after the same budget with no live session and no inbound
  connection. Either way the process ends instead of leaking forever.
  A worker spawned by a local ``SocketTransport`` additionally exits
  as soon as its parent process disappears (re-parenting check) once
  its sessions have drained;
* ``--advertise HOST:PORT`` self-registers with a router's
  :class:`~repro.resilience.membership.WorkerRegistry` join listener
  at startup (and best-effort de-registers on orphan exit), so a fleet
  can grow without editing the workers file;
* ``--serve-once`` exits after the first session (CI smoke runs).

Security note: the wire format is pickle over a trusted network, the
same trust model as ``multiprocessing``'s own listeners. The hello
token (``REPRO_TRANSPORT_TOKEN`` on both sides) rejects accidental
cross-talk, not adversaries.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
from typing import Any

from repro.engine.sharded import (
    _build_worker_engine,
    _worker_loop,
    _worker_obs_setup,
)
from repro.obs.funnel import NULL_FUNNEL, FunnelRecorder
from repro.engine.transport import (
    CHANNEL_ERRORS,
    FramedChannel,
    connect_with_backoff,
    parse_hostport,
    transport_token,
)
from repro.obs.logging import get_logger

_log = get_logger("shard_worker")

#: How long ``accept`` blocks per wait before re-checking the orphan
#: conditions (parent death, budget exhaustion, finished sessions).
_ACCEPT_TICK_S = 0.25

#: Half-open channel pairs (hello arrived, partner did not) are
#: dropped after this long so they cannot pin the process open.
_PENDING_TTL_S = 30.0


def _read_hello(channel: FramedChannel, timeout_s: float = 10.0) -> dict:
    """One hello frame, validated; raises ValueError on a bad peer."""
    if not channel.poll(timeout_s):
        raise ValueError("no hello frame before the handshake timeout")
    message = channel.recv()
    if (
        not isinstance(message, tuple)
        or len(message) != 2
        or message[0] != "hello"
        or not isinstance(message[1], dict)
    ):
        raise ValueError(f"expected a hello frame, got {message!r}")
    hello = message[1]
    expected = transport_token()
    if expected and hello.get("token") != expected:
        raise ValueError("hello token mismatch")
    if hello.get("role") not in ("data", "control"):
        raise ValueError(f"unknown hello role {hello.get('role')!r}")
    return hello


def _run_session(
    data: FramedChannel,
    control: FramedChannel,
    default_orphan_timeout_s: float | None,
) -> str:
    """One configure → worker-loop session; returns the loop's verdict
    (``"stop"`` / ``"eof"`` / ``"orphan"``) or ``"reject"`` when the
    configure document never arrived or failed to build an engine."""
    try:
        if not data.poll(10.0):
            return "reject"
        message = data.recv()
    except CHANNEL_ERRORS:
        return "reject"
    if (
        not isinstance(message, tuple)
        or len(message) != 2
        or message[0] != "configure"
        or not isinstance(message[1], dict)
    ):
        return "reject"
    config: dict[str, Any] = message[1]
    index = int(config.get("index", 0))
    # The router's resolved orphan budget wins when it sent one; the
    # worker-local --orphan-timeout is the floor either way, so a
    # router that vanishes without FIN (no budget negotiated) still
    # cannot strand this process forever.
    orphan_timeout_s = config.get("orphan_timeout_s")
    if orphan_timeout_s is None:
        orphan_timeout_s = default_orphan_timeout_s
    obs = config.get("obs") or {}
    registry, tracer, profiler = _worker_obs_setup(obs)
    funnel = FunnelRecorder(registry) if obs.get("funnel") else NULL_FUNNEL
    try:
        engine, executors = _build_worker_engine(
            list(config.get("specs") or []),
            bool(config.get("vectorized")),
            index,
            registry,
            tracer,
            funnel=funnel,
        )
    except Exception as error:
        if profiler is not None:
            profiler.stop()
        try:
            data.send(("error", f"{type(error).__name__}: {error}"))
        except CHANNEL_ERRORS:
            pass
        return "reject"
    try:
        data.send(("ok", {"pid": os.getpid()}))
    except CHANNEL_ERRORS:
        if profiler is not None:
            profiler.stop()
        return "eof"
    try:
        return _worker_loop(
            data, control, engine, executors, registry, tracer,
            profiler, index=index, orphan_timeout_s=orphan_timeout_s,
        )
    finally:
        if profiler is not None:
            profiler.stop()


class _Session(threading.Thread):
    """One worker session on its own thread; owns both channels."""

    def __init__(
        self,
        data: FramedChannel,
        control: FramedChannel,
        orphan_timeout_s: float | None,
    ):
        super().__init__(daemon=True, name="shard-session")
        self._data = data
        self._control = control
        self._orphan = orphan_timeout_s
        self.reason: str | None = None

    def run(self) -> None:
        try:
            self.reason = _run_session(self._data, self._control,
                                        self._orphan)
        finally:
            self._data.close()
            self._control.close()


def _advertise(
    registry_address: tuple[str, int],
    listen_address: tuple[str, int],
    action: str = "join",
) -> bool:
    """Tell a router's WorkerRegistry listener about this worker.

    Returns True when the registry acknowledged. ``leave`` failures
    are non-fatal (the router's liveness tracking converges anyway).
    """
    try:
        sock = connect_with_backoff(registry_address, attempts=6)
    except CHANNEL_ERRORS:
        return False
    channel = FramedChannel(sock)
    try:
        channel.send((
            action,
            {
                "address": f"{listen_address[0]}:{listen_address[1]}",
                "token": transport_token(),
                "pid": os.getpid(),
            },
        ))
        if not channel.poll(10.0):
            return False
        status, _detail = channel.recv()
        return status == "ok"
    except CHANNEL_ERRORS:
        return False
    finally:
        channel.close()


def serve_socket(
    listener: socket.socket,
    orphan_timeout_s: float | None = None,
    serve_once: bool = False,
    spawned: bool = True,
    on_orphan: Any = None,
) -> None:
    """Serve worker sessions on an already-listening socket.

    This is both the ``SocketTransport`` local-spawn process target
    (``spawned=True``: the worker also dies when its parent process
    does) and the body of the CLI entrypoint (``spawned=False``: only
    the orphan budget and transport EOF end it). Sessions run
    concurrently, one thread per (data, control) pair, matched by the
    hello ``session`` id; hellos without one fall back to pairing by
    arrival order, which preserves the one-session-at-a-time protocol
    older routers speak.
    """
    parent_pid = os.getppid() if spawned else None
    pending: dict[str, dict[str, Any]] = {}
    sessions: list[_Session] = []
    completed = 0
    idle_deadline = (
        time.monotonic() + orphan_timeout_s if orphan_timeout_s else None
    )

    def _orphan_exit(why: str) -> None:
        _log.info("worker_orphaned", message=why)
        if on_orphan is not None:
            try:
                on_orphan()
            except Exception:  # pragma: no cover - best-effort hook
                pass

    with listener:
        listener.settimeout(_ACCEPT_TICK_S)
        while True:
            # Reap finished session threads.
            finished_orphan = False
            still: list[_Session] = []
            for session in sessions:
                if session.is_alive():
                    still.append(session)
                    continue
                if session.reason != "reject":
                    completed += 1
                if session.reason == "orphan":
                    finished_orphan = True
            sessions = still
            if finished_orphan and not sessions:
                _orphan_exit(
                    "router went silent past the orphan budget; exiting"
                )
                return
            if completed and serve_once and not sessions:
                return
            if sessions:
                idle_deadline = (
                    time.monotonic() + orphan_timeout_s
                    if orphan_timeout_s else None
                )
            else:
                if (
                    spawned
                    and parent_pid is not None
                    and os.getppid() != parent_pid
                ):
                    return  # sessions drained and the router is gone
                if (
                    idle_deadline is not None
                    and time.monotonic() >= idle_deadline
                ):
                    _orphan_exit(
                        "no router within the orphan budget; exiting"
                    )
                    return
            # Drop half-open pairs that never completed.
            now = time.monotonic()
            for key in list(pending):
                if now - pending[key]["at"] > _PENDING_TTL_S:
                    for chan in pending[key]["roles"].values():
                        chan.close()
                    del pending[key]
            try:
                sock, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            channel = FramedChannel(sock)
            try:
                hello = _read_hello(channel)
            except (ValueError, *CHANNEL_ERRORS) as error:
                _log.warning(
                    "bad_hello",
                    message=f"rejected a connection: {error}",
                )
                channel.close()
                continue
            key = str(hello.get("session") or "legacy")
            entry = pending.setdefault(key, {"roles": {}, "at": now})
            entry["at"] = now
            role = hello["role"]
            stale = entry["roles"].pop(role, None)
            if stale is not None:
                stale.close()
            entry["roles"][role] = channel
            idle_deadline = (
                time.monotonic() + orphan_timeout_s
                if orphan_timeout_s else None
            )
            if "data" in entry["roles"] and "control" in entry["roles"]:
                del pending[key]
                session = _Session(
                    entry["roles"]["data"], entry["roles"]["control"],
                    orphan_timeout_s,
                )
                session.start()
                sessions.append(session)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard_worker",
        description=(
            "Networked shard worker for ShardedStreamEngine's tcp "
            "transport: listens for a router, then executes one or "
            "more hash-partitions of the stream."
        ),
    )
    parser.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="address to listen on (port 0 picks a free port)",
    )
    parser.add_argument(
        "--orphan-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "idle-connection deadline: exit after this many seconds "
            "without any router traffic, in or between sessions — the "
            "guard that catches a router that vanished without FIN "
            "(default: wait forever)"
        ),
    )
    parser.add_argument(
        "--advertise",
        default=None,
        metavar="HOST:PORT",
        help=(
            "self-register with the router's worker-registry listener "
            "at this address (elastic membership join)"
        ),
    )
    parser.add_argument(
        "--serve-once",
        action="store_true",
        help="exit after the first completed session",
    )
    args = parser.parse_args(argv)
    host, port = parse_hostport(args.listen)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(16)
    bound = listener.getsockname()
    # The chosen port on stdout lets scripts use --listen HOST:0.
    print(f"listening on {bound[0]}:{bound[1]}", flush=True)
    advertise_to: tuple[str, int] | None = None
    if args.advertise:
        advertise_to = parse_hostport(args.advertise)
        if _advertise(advertise_to, bound, "join"):
            _log.info(
                "advertised",
                message=(
                    f"registered {bound[0]}:{bound[1]} with the worker "
                    f"registry at {advertise_to[0]}:{advertise_to[1]}"
                ),
            )
        else:
            print(
                f"warning: could not register with the worker registry "
                f"at {args.advertise}",
                file=sys.stderr,
                flush=True,
            )
    on_orphan = None
    if advertise_to is not None:
        registry_address = advertise_to

        def on_orphan() -> None:
            _advertise(registry_address, bound, "leave")

    serve_socket(
        listener,
        orphan_timeout_s=args.orphan_timeout,
        serve_once=args.serve_once,
        spawned=False,
        on_orphan=on_orphan,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
