"""Standalone networked shard worker: ``python -m repro.shard_worker``.

One process, one listener, one shard at a time. The router's
``SocketTransport`` connects two framed-TCP channels (data + control),
ships a configure document — query *texts*, vectorized flag, obs
config, orphan budget — and from then on speaks exactly the same wire
protocol as a forked pipe worker: the session runs
:func:`repro.engine.sharded._worker_loop` unchanged.

Lifecycle:

* a **session** is one (data, control) channel pair plus a fresh
  engine built from its configure document. When the session ends with
  ``"eof"`` (router died or is reconnecting) or ``"stop"`` (router
  shut down / is about to re-seed), the worker loops back to accept —
  a revive on the router side is just a reconnect here, and the
  router re-seeds state through the normal ``seed`` + journal-replay
  protocol;
* **orphan protection**: the listener itself times out after the
  orphan budget with no inbound connection, and inside a session the
  worker loop exits after the same budget of total silence — either
  way the process ends instead of lingering as a zombie. A worker
  spawned by a local ``SocketTransport`` additionally exits as soon
  as its parent process disappears (re-parenting check), so a
  SIGKILL'd router leaks nothing even before the timeout;
* ``--serve-once`` exits after the first session (CI smoke runs).

Security note: the wire format is pickle over a trusted network, the
same trust model as ``multiprocessing``'s own listeners. The hello
token (``REPRO_TRANSPORT_TOKEN`` on both sides) rejects accidental
cross-talk, not adversaries.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
from typing import Any

from repro.engine.sharded import (
    _build_worker_engine,
    _worker_loop,
    _worker_obs_setup,
)
from repro.obs.funnel import NULL_FUNNEL, FunnelRecorder
from repro.engine.transport import (
    FramedChannel,
    parse_hostport,
    transport_token,
)
from repro.obs.logging import get_logger

_log = get_logger("shard_worker")

#: How long ``accept`` blocks per wait before re-checking the orphan
#: conditions (parent death, budget exhaustion).
_ACCEPT_TICK_S = 1.0


def _read_hello(channel: FramedChannel, timeout_s: float = 10.0) -> dict:
    """One hello frame, validated; raises ValueError on a bad peer."""
    if not channel.poll(timeout_s):
        raise ValueError("no hello frame before the handshake timeout")
    message = channel.recv()
    if (
        not isinstance(message, tuple)
        or len(message) != 2
        or message[0] != "hello"
        or not isinstance(message[1], dict)
    ):
        raise ValueError(f"expected a hello frame, got {message!r}")
    hello = message[1]
    expected = transport_token()
    if expected and hello.get("token") != expected:
        raise ValueError("hello token mismatch")
    if hello.get("role") not in ("data", "control"):
        raise ValueError(f"unknown hello role {hello.get('role')!r}")
    return hello


def _accept_pair(
    listener: socket.socket,
    deadline_budget_s: float | None,
    parent_pid: int | None,
) -> tuple[FramedChannel, FramedChannel] | None:
    """Accept connections until one data + one control channel pair up.

    Returns ``None`` when the worker should exit instead: the orphan
    budget elapsed with no inbound connection, or the spawning parent
    process is gone (its pid was re-parented away).
    """
    import time

    channels: dict[str, FramedChannel] = {}
    deadline = (
        time.monotonic() + deadline_budget_s
        if deadline_budget_s
        else None
    )
    listener.settimeout(_ACCEPT_TICK_S)
    try:
        while "data" not in channels or "control" not in channels:
            if parent_pid is not None and os.getppid() != parent_pid:
                return None  # spawning router is gone
            if deadline is not None and time.monotonic() >= deadline:
                return None  # orphan: nobody connected in the budget
            try:
                sock, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return None
            channel = FramedChannel(sock)
            try:
                hello = _read_hello(channel)
            except (ValueError, EOFError, OSError) as error:
                _log.warning(
                    "bad_hello",
                    message=f"rejected a connection: {error}",
                )
                channel.close()
                continue
            role = hello["role"]
            stale = channels.pop(role, None)
            if stale is not None:
                stale.close()
            channels[role] = channel
            # Both channels must belong to the same router attempt;
            # a fresh pair supersedes a half-open stale one, so reset
            # the patience window.
            deadline = (
                time.monotonic() + deadline_budget_s
                if deadline_budget_s
                else None
            )
    finally:
        listener.settimeout(None)
    return channels["data"], channels["control"]


def _run_session(
    data: FramedChannel,
    control: FramedChannel,
    default_orphan_timeout_s: float | None,
) -> str:
    """One configure → worker-loop session; returns the loop's verdict
    (``"stop"`` / ``"eof"`` / ``"orphan"``) or ``"reject"`` when the
    configure document never arrived or failed to build an engine."""
    try:
        if not data.poll(10.0):
            return "reject"
        message = data.recv()
    except (EOFError, OSError):
        return "reject"
    if (
        not isinstance(message, tuple)
        or len(message) != 2
        or message[0] != "configure"
        or not isinstance(message[1], dict)
    ):
        return "reject"
    config: dict[str, Any] = message[1]
    index = int(config.get("index", 0))
    orphan_timeout_s = config.get("orphan_timeout_s")
    if orphan_timeout_s is None:
        orphan_timeout_s = default_orphan_timeout_s
    obs = config.get("obs") or {}
    registry, tracer, profiler = _worker_obs_setup(obs)
    funnel = FunnelRecorder(registry) if obs.get("funnel") else NULL_FUNNEL
    try:
        engine, executors = _build_worker_engine(
            list(config.get("specs") or []),
            bool(config.get("vectorized")),
            index,
            registry,
            tracer,
            funnel=funnel,
        )
    except Exception as error:
        if profiler is not None:
            profiler.stop()
        try:
            data.send(("error", f"{type(error).__name__}: {error}"))
        except OSError:
            pass
        return "reject"
    try:
        data.send(("ok", {"pid": os.getpid()}))
    except OSError:
        if profiler is not None:
            profiler.stop()
        return "eof"
    try:
        return _worker_loop(
            data, control, engine, executors, registry, tracer,
            profiler, index=index, orphan_timeout_s=orphan_timeout_s,
        )
    finally:
        if profiler is not None:
            profiler.stop()


def serve_socket(
    listener: socket.socket,
    orphan_timeout_s: float | None = None,
    serve_once: bool = False,
    spawned: bool = True,
) -> None:
    """Serve worker sessions on an already-listening socket.

    This is both the ``SocketTransport`` local-spawn process target
    (``spawned=True``: the worker also dies when its parent process
    does) and the body of the CLI entrypoint (``spawned=False``: only
    the orphan budget and transport EOF end it).
    """
    parent_pid = os.getppid() if spawned else None
    with listener:
        while True:
            pair = _accept_pair(listener, orphan_timeout_s, parent_pid)
            if pair is None:
                _log.info(
                    "worker_orphaned",
                    message=(
                        "no router within the orphan budget; exiting"
                    ),
                )
                return
            data, control = pair
            try:
                reason = _run_session(data, control, orphan_timeout_s)
            finally:
                data.close()
                control.close()
            if reason == "orphan":
                _log.info(
                    "worker_orphaned",
                    message=(
                        "router went silent past the orphan budget; "
                        "exiting"
                    ),
                )
                return
            if serve_once and reason != "reject":
                return
            if (
                spawned
                and parent_pid is not None
                and os.getppid() != parent_pid
            ):
                return  # session ended and the router process is gone


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shard_worker",
        description=(
            "Networked shard worker for ShardedStreamEngine's tcp "
            "transport: listens for a router, then executes one "
            "hash-partition of the stream."
        ),
    )
    parser.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="address to listen on (port 0 picks a free port)",
    )
    parser.add_argument(
        "--orphan-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "exit after this many seconds without any router traffic "
            "(default: wait forever)"
        ),
    )
    parser.add_argument(
        "--serve-once",
        action="store_true",
        help="exit after the first completed session",
    )
    args = parser.parse_args(argv)
    host, port = parse_hostport(args.listen)
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(4)
    bound = listener.getsockname()
    # The chosen port on stdout lets scripts use --listen HOST:0.
    print(f"listening on {bound[0]}:{bound[1]}", flush=True)
    serve_socket(
        listener,
        orphan_timeout_s=args.orphan_timeout,
        serve_once=args.serve_once,
        spawned=False,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
