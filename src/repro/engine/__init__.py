"""Streaming runtime: query registration, dispatch, sinks and metrics."""

from repro.engine.engine import StreamEngine
from repro.engine.metrics import EngineMetrics, RunStats, measure_run
from repro.engine.sharded import ShardedStreamEngine
from repro.engine.sinks import (
    CallbackSink,
    CollectSink,
    LatestSink,
    Output,
    ResultSink,
    ThresholdAlertSink,
)
from repro.engine.tumbling import TumblingAggregator, WindowResult, tumbling

__all__ = [
    "CallbackSink",
    "CollectSink",
    "EngineMetrics",
    "LatestSink",
    "Output",
    "ResultSink",
    "RunStats",
    "ShardedStreamEngine",
    "StreamEngine",
    "ThresholdAlertSink",
    "TumblingAggregator",
    "WindowResult",
    "measure_run",
    "tumbling",
]
