"""The stream engine: many queries, one event loop.

:class:`StreamEngine` owns a set of registered query executors (A-Seq
by default; any object with the ``process``/``result`` surface works,
including the baseline and the shared multi-query engines) and pumps an
event stream through all of them, delivering fresh aggregates to the
sinks attached at registration time.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro.errors import EngineError
from repro.events.event import Event
from repro.core.executor import ASeqEngine
from repro.engine.metrics import EngineMetrics
from repro.engine.sinks import Output, ResultSink
from repro.obs.registry import Counter, MetricsRegistry, resolve_registry
from repro.obs.tracing import Stage, TraceRecorder, resolve_tracer
from repro.query.ast import Query


class _Registration:
    __slots__ = ("name", "executor", "sinks", "m_events", "m_outputs")

    def __init__(
        self,
        name: str,
        executor: Any,
        sinks: list[ResultSink],
        m_events: Counter,
        m_outputs: Counter,
    ):
        self.name = name
        self.executor = executor
        self.sinks = sinks
        self.m_events = m_events
        self.m_outputs = m_outputs


class StreamEngine:
    """Multi-query streaming runtime.

    >>> from repro.query import seq
    >>> from repro.engine.sinks import CollectSink
    >>> engine = StreamEngine()
    >>> sink = CollectSink()
    >>> _ = engine.register(
    ...     seq("A", "B").count().within(ms=10).named("ab").build(),
    ...     sink)
    >>> engine.run([Event("A", 1), Event("B", 2)])
    2
    >>> sink.values()
    [1]
    """

    def __init__(
        self,
        vectorized: bool = False,
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ):
        self._registrations: dict[str, _Registration] = {}
        self._vectorized = vectorized
        self.metrics = EngineMetrics()
        registry = resolve_registry(registry)
        self.obs_registry = registry
        self._obs_on = registry.enabled
        self._m_events = registry.counter(
            "events_ingested_total", "events pumped through the stream engine"
        )
        self._m_outputs = registry.counter(
            "outputs_emitted_total", "fresh aggregates delivered to sinks"
        )
        self._m_sink_errors = registry.counter(
            "sink_errors_total", "sink emit() calls that raised"
        )
        self._m_latency = registry.histogram(
            "event_latency_us",
            "per-event processing latency across all registrations (µs)",
        )
        tracer = resolve_tracer(trace)
        self._trace = tracer
        self._trace_on = tracer.enabled

    # ----- registration ------------------------------------------------------

    def register(
        self,
        query: Query,
        *sinks: ResultSink,
        name: str | None = None,
    ) -> ASeqEngine:
        """Register a query on a fresh A-Seq executor; returns the executor."""
        executor = ASeqEngine(
            query,
            vectorized=self._vectorized,
            registry=self.obs_registry,
            trace=self._trace,
        )
        self.register_executor(
            name or query.name or f"q{len(self._registrations)}",
            executor,
            *sinks,
        )
        return executor

    def register_executor(
        self, name: str, executor: Any, *sinks: ResultSink
    ) -> None:
        """Register any engine exposing ``process``/``result``."""
        if name in self._registrations:
            raise EngineError(f"duplicate query name {name!r}")
        registry = self.obs_registry
        self._registrations[name] = _Registration(
            name,
            executor,
            list(sinks),
            registry.counter(
                "query_events_total", "events offered to one registration",
                query=name,
            ),
            registry.counter(
                "query_outputs_total", "fresh aggregates from one registration",
                query=name,
            ),
        )

    def deregister(self, name: str) -> None:
        if name not in self._registrations:
            raise EngineError(f"unknown query {name!r}")
        del self._registrations[name]

    # ----- event loop -------------------------------------------------------

    def process(self, event: Event) -> None:
        """Push one event through every registered executor.

        A sink that raises does not abort the loop: the error is counted
        (``sink_errors_total``) and the remaining sinks and registrations
        keep receiving the event.
        """
        obs_on = self._obs_on
        if obs_on:
            started = time.perf_counter()
            self._m_events.inc()
        self.metrics.events += 1
        for registration in self._registrations.values():
            if obs_on:
                registration.m_events.inc()
            fresh = registration.executor.process(event)
            if fresh is None:
                continue
            self.metrics.outputs += 1
            if obs_on:
                self._m_outputs.inc()
                registration.m_outputs.inc()
            if self._trace_on:
                self._trace.record(
                    Stage.EMIT, event.ts, event.event_type,
                    f"query={registration.name} value={fresh!r}",
                )
            if registration.sinks:
                output = Output(registration.name, event.ts, fresh)
                for sink in registration.sinks:
                    try:
                        sink.emit(output)
                    except Exception:
                        self.metrics.sink_errors += 1
                        self._m_sink_errors.inc()
        if obs_on:
            self._m_latency.observe(
                (time.perf_counter() - started) * 1e6
            )

    def run(self, stream: Iterable[Event]) -> int:
        """Drain a stream; returns the number of events processed."""
        started = time.perf_counter()
        processed = 0
        for event in stream:
            self.process(event)
            processed += 1
        self.metrics.elapsed_s += time.perf_counter() - started
        self.metrics.note_objects(self.current_objects())
        return processed

    # ----- results ---------------------------------------------------------------

    def result(self, name: str) -> Any:
        """Current aggregate of one registered query."""
        registration = self._registrations.get(name)
        if registration is None:
            raise EngineError(f"unknown query {name!r}")
        return registration.executor.result()

    def results(self) -> dict[str, Any]:
        """Current aggregates of every registered query."""
        return {
            name: registration.executor.result()
            for name, registration in self._registrations.items()
        }

    def current_objects(self) -> int:
        total = 0
        for registration in self._registrations.values():
            probe = getattr(registration.executor, "current_objects", None)
            if probe is not None:
                total += probe()
        return total

    @property
    def query_names(self) -> list[str]:
        return list(self._registrations)
