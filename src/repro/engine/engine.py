"""The stream engine: many queries, one event loop.

:class:`StreamEngine` owns a set of registered query executors (A-Seq
by default; any object with the ``process``/``result`` surface works,
including the baseline and the shared multi-query engines) and pumps an
event stream through all of them, delivering fresh aggregates to the
sinks attached at registration time.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro.errors import EngineError
from repro.events.event import Event
from repro.core.executor import ASeqEngine
from repro.engine.metrics import EngineMetrics
from repro.engine.sinks import Output, ResultSink
from repro.obs.inspect import cost_summary
from repro.obs.registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    resolve_registry,
)
from repro.obs.tracing import Stage, TraceRecorder, resolve_tracer
from repro.query.ast import Query


class _Registration:
    __slots__ = (
        "name", "executor", "sinks", "m_events", "m_outputs", "m_latency",
    )

    def __init__(
        self,
        name: str,
        executor: Any,
        sinks: list[ResultSink],
        m_events: Counter,
        m_outputs: Counter,
        m_latency: Histogram,
    ):
        self.name = name
        self.executor = executor
        self.sinks = sinks
        self.m_events = m_events
        self.m_outputs = m_outputs
        self.m_latency = m_latency


class StreamEngine:
    """Multi-query streaming runtime.

    >>> from repro.query import seq
    >>> from repro.engine.sinks import CollectSink
    >>> engine = StreamEngine()
    >>> sink = CollectSink()
    >>> _ = engine.register(
    ...     seq("A", "B").count().within(ms=10).named("ab").build(),
    ...     sink)
    >>> engine.run([Event("A", 1), Event("B", 2)])
    2
    >>> sink.values()
    [1]
    """

    def __init__(
        self,
        vectorized: bool = False,
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
        stream_name: str = "default",
        cost_sample_every: int = 64,
    ):
        if cost_sample_every < 0:
            raise ValueError("cost_sample_every must be >= 0")
        self._registrations: dict[str, _Registration] = {}
        self._vectorized = vectorized
        self.metrics = EngineMetrics()
        self.stream_name = stream_name
        registry = resolve_registry(registry)
        self.obs_registry = registry
        self._obs_on = registry.enabled
        self._m_events = registry.counter(
            "events_ingested_total", "events pumped through the stream engine"
        )
        self._m_outputs = registry.counter(
            "outputs_emitted_total", "fresh aggregates delivered to sinks"
        )
        self._m_sink_errors = registry.counter(
            "sink_errors_total", "sink emit() calls that raised"
        )
        self._m_latency = registry.histogram(
            "event_latency_us",
            "per-event processing latency across all registrations (µs)",
        )
        # Event-time watermark tracking: the max event timestamp seen,
        # and how far wall-clock progress lags event-time progress since
        # the first arrival (negative = faster-than-real-time replay).
        self._g_watermark = registry.gauge(
            "repro_event_time_watermark_ms",
            "max event timestamp observed on this stream (ms)",
            stream=stream_name,
        )
        self._g_lag = registry.gauge(
            "repro_event_time_lag_seconds",
            "wall-clock seconds behind event time, anchored at the "
            "first arrival (negative when replaying faster than "
            "real time)",
            stream=stream_name,
        )
        self._watermark_ms = float("-inf")
        self._time_anchor: tuple[float, int] | None = None
        #: Sample per-registration latency every Nth event (0 disables);
        #: sampling keeps the two extra clock reads per registration off
        #: the common hot path.
        self._cost_sample_every = cost_sample_every
        tracer = resolve_tracer(trace)
        self._trace = tracer
        self._trace_on = tracer.enabled

    # ----- registration ------------------------------------------------------

    def register(
        self,
        query: Query,
        *sinks: ResultSink,
        name: str | None = None,
    ) -> ASeqEngine:
        """Register a query on a fresh A-Seq executor; returns the executor."""
        executor = ASeqEngine(
            query,
            vectorized=self._vectorized,
            registry=self.obs_registry,
            trace=self._trace,
        )
        self.register_executor(
            name or query.name or f"q{len(self._registrations)}",
            executor,
            *sinks,
        )
        return executor

    def register_executor(
        self, name: str, executor: Any, *sinks: ResultSink
    ) -> None:
        """Register any engine exposing ``process``/``result``."""
        if name in self._registrations:
            raise EngineError(f"duplicate query name {name!r}")
        registry = self.obs_registry
        self._registrations[name] = _Registration(
            name,
            executor,
            list(sinks),
            registry.counter(
                "query_events_total", "events offered to one registration",
                query=name,
            ),
            registry.counter(
                "query_outputs_total", "fresh aggregates from one registration",
                query=name,
            ),
            registry.histogram(
                "query_latency_us",
                "sampled per-event executor latency of one registration (µs)",
                query=name,
            ),
        )

    def deregister(self, name: str) -> None:
        if name not in self._registrations:
            raise EngineError(f"unknown query {name!r}")
        del self._registrations[name]

    # ----- event loop -------------------------------------------------------

    def process(self, event: Event) -> None:
        """Push one event through every registered executor.

        A sink that raises does not abort the loop: the error is counted
        (``sink_errors_total``) and the remaining sinks and registrations
        keep receiving the event.
        """
        obs_on = self._obs_on
        if obs_on:
            started = time.perf_counter()
            self._m_events.inc()
        self.metrics.events += 1
        sample = self._cost_sample_every
        timed = obs_on and sample and self.metrics.events % sample == 0
        for registration in self._registrations.values():
            if obs_on:
                registration.m_events.inc()
            if timed:
                t0 = time.perf_counter()
                fresh = registration.executor.process(event)
                registration.m_latency.observe(
                    (time.perf_counter() - t0) * 1e6
                )
            else:
                fresh = registration.executor.process(event)
            if fresh is None:
                continue
            self.metrics.outputs += 1
            if obs_on:
                self._m_outputs.inc()
                registration.m_outputs.inc()
            if self._trace_on:
                self._trace.record(
                    Stage.EMIT, event.ts, event.event_type,
                    f"query={registration.name} value={fresh!r}",
                )
            if registration.sinks:
                output = Output(registration.name, event.ts, fresh)
                for sink in registration.sinks:
                    try:
                        sink.emit(output)
                    except Exception:
                        self.metrics.sink_errors += 1
                        self._m_sink_errors.inc()
        if obs_on:
            finished = time.perf_counter()
            self._m_latency.observe((finished - started) * 1e6)
            self._note_event_time(event.ts, finished)

    def _note_event_time(self, ts: int, now_perf: float) -> None:
        """Advance the event-time watermark and the lag gauge.

        Lag is anchored at the first arrival: it compares wall-clock
        progress since then against event-time progress, so both epoch
        streams and synthetic (zero-based) streams report a meaningful
        number. See docs/OBSERVABILITY.md for the full semantics.
        """
        if ts > self._watermark_ms:
            self._watermark_ms = ts
            self._g_watermark.value = float(ts)
        anchor = self._time_anchor
        if anchor is None:
            self._time_anchor = (now_perf, ts)
        else:
            self._g_lag.value = (
                (now_perf - anchor[0])
                - (self._watermark_ms - anchor[1]) / 1000.0
            )

    def run(self, stream: Iterable[Event]) -> int:
        """Drain a stream; returns the number of events processed."""
        started = time.perf_counter()
        processed = 0
        for event in stream:
            self.process(event)
            processed += 1
        self.metrics.elapsed_s += time.perf_counter() - started
        self.metrics.note_objects(self.current_objects())
        return processed

    # ----- results ---------------------------------------------------------------

    def result(self, name: str) -> Any:
        """Current aggregate of one registered query."""
        registration = self._registrations.get(name)
        if registration is None:
            raise EngineError(f"unknown query {name!r}")
        return registration.executor.result()

    def results(self) -> dict[str, Any]:
        """Current aggregates of every registered query."""
        return {
            name: registration.executor.result()
            for name, registration in self._registrations.items()
        }

    def current_objects(self) -> int:
        total = 0
        for registration in self._registrations.values():
            probe = getattr(registration.executor, "current_objects", None)
            if probe is not None:
                total += probe()
        return total

    @property
    def query_names(self) -> list[str]:
        return list(self._registrations)

    def executor_of(self, name: str) -> Any:
        """The executor behind one registration."""
        registration = self._registrations.get(name)
        if registration is None:
            raise EngineError(f"unknown query {name!r}")
        return registration.executor

    @property
    def watermark_ms(self) -> float | None:
        """Max event timestamp observed (None before the first event)."""
        mark = self._watermark_ms
        return None if mark == float("-inf") else mark

    def query_rows(self) -> list[dict[str, Any]]:
        """One cost-accounting row per registration (``/queries``).

        Safe to call from a scrape thread: the registration table is
        snapshotted before iteration and every probe reads live state
        without mutating it.
        """
        rows = []
        for registration in list(self._registrations.values()):
            row: dict[str, Any] = {
                "query": registration.name,
                "events_routed": int(registration.m_events.value),
                "outputs": int(registration.m_outputs.value),
            }
            row.update(cost_summary(registration.executor))
            latency = registration.m_latency
            if latency.count:
                row["latency_us_p50"] = latency.p50
                row["latency_us_p99"] = latency.p99
            rows.append(row)
        return rows

    def refresh_cost_metrics(self) -> None:
        """Publish pull-based per-query cost gauges into the registry.

        Live-object counts, HPC partition counts, CC snapshot rows and
        counter-update totals are expensive to maintain per event, so
        they are computed here — on scrape (the admin server calls this
        before rendering ``/metrics``) rather than on ingest.
        """
        registry = self.obs_registry
        if not registry.enabled:
            return
        for row in self.query_rows():
            name = row["query"]
            registry.gauge(
                "query_live_objects",
                "live counting state held by one registration",
                query=name,
            ).set(float(row.get("live_objects") or 0))
            registry.gauge(
                "query_counter_updates",
                "prefix-counter slot updates performed by one registration",
                query=name,
            ).set(float(row.get("counter_updates") or 0))
            if row.get("hpc_partitions") is not None:
                registry.gauge(
                    "query_hpc_partitions",
                    "live HPC partition engines of one registration",
                    query=name,
                ).set(float(row["hpc_partitions"]))
            if row.get("cc_snapshot_rows") is not None:
                registry.gauge(
                    "query_cc_snapshot_rows",
                    "live Chop-Connect SnapShot rows of one registration",
                    query=name,
                ).set(float(row["cc_snapshot_rows"]))

    def inspect(self) -> dict[str, Any]:
        """JSON-serializable engine-wide state summary."""
        queries = {}
        for registration in list(self._registrations.values()):
            executor = registration.executor
            probe = getattr(executor, "inspect", None)
            queries[registration.name] = (
                probe() if probe is not None
                else {"kind": type(executor).__name__}
            )
        return {
            "kind": type(self).__name__,
            "stream": self.stream_name,
            "events": self.metrics.events,
            "outputs": self.metrics.outputs,
            "sink_errors": self.metrics.sink_errors,
            "watermark_ms": self.watermark_ms,
            "registrations": len(queries),
            "queries": queries,
        }
