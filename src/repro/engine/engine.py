"""The stream engine: many queries, one event loop.

:class:`StreamEngine` owns a set of registered query executors (A-Seq
by default; any object with the ``process``/``result`` surface works,
including the baseline and the shared multi-query engines) and pumps an
event stream through all of them, delivering fresh aggregates to the
sinks attached at registration time.
"""

from __future__ import annotations

import time
from typing import Any, Iterable

from repro.errors import EngineError
from repro.events.event import Event
from repro.core.executor import ASeqEngine
from repro.engine.metrics import EngineMetrics
from repro.engine.sinks import Output, ResultSink
from repro.query.ast import Query


class _Registration:
    __slots__ = ("name", "executor", "sinks")

    def __init__(self, name: str, executor: Any, sinks: list[ResultSink]):
        self.name = name
        self.executor = executor
        self.sinks = sinks


class StreamEngine:
    """Multi-query streaming runtime.

    >>> from repro.query import seq
    >>> from repro.engine.sinks import CollectSink
    >>> engine = StreamEngine()
    >>> sink = CollectSink()
    >>> _ = engine.register(
    ...     seq("A", "B").count().within(ms=10).named("ab").build(),
    ...     sink)
    >>> engine.run([Event("A", 1), Event("B", 2)])
    2
    >>> sink.values()
    [1]
    """

    def __init__(self, vectorized: bool = False):
        self._registrations: dict[str, _Registration] = {}
        self._vectorized = vectorized
        self.metrics = EngineMetrics()

    # ----- registration ------------------------------------------------------

    def register(
        self,
        query: Query,
        *sinks: ResultSink,
        name: str | None = None,
    ) -> ASeqEngine:
        """Register a query on a fresh A-Seq executor; returns the executor."""
        executor = ASeqEngine(query, vectorized=self._vectorized)
        self.register_executor(
            name or query.name or f"q{len(self._registrations)}",
            executor,
            *sinks,
        )
        return executor

    def register_executor(
        self, name: str, executor: Any, *sinks: ResultSink
    ) -> None:
        """Register any engine exposing ``process``/``result``."""
        if name in self._registrations:
            raise EngineError(f"duplicate query name {name!r}")
        self._registrations[name] = _Registration(
            name, executor, list(sinks)
        )

    def deregister(self, name: str) -> None:
        if name not in self._registrations:
            raise EngineError(f"unknown query {name!r}")
        del self._registrations[name]

    # ----- event loop -------------------------------------------------------

    def process(self, event: Event) -> None:
        """Push one event through every registered executor."""
        self.metrics.events += 1
        for registration in self._registrations.values():
            fresh = registration.executor.process(event)
            if fresh is None:
                continue
            self.metrics.outputs += 1
            if registration.sinks:
                output = Output(registration.name, event.ts, fresh)
                for sink in registration.sinks:
                    sink.emit(output)

    def run(self, stream: Iterable[Event]) -> int:
        """Drain a stream; returns the number of events processed."""
        started = time.perf_counter()
        processed = 0
        for event in stream:
            self.process(event)
            processed += 1
        self.metrics.elapsed_s += time.perf_counter() - started
        self.metrics.note_objects(self.current_objects())
        return processed

    # ----- results ---------------------------------------------------------------

    def result(self, name: str) -> Any:
        """Current aggregate of one registered query."""
        registration = self._registrations.get(name)
        if registration is None:
            raise EngineError(f"unknown query {name!r}")
        return registration.executor.result()

    def results(self) -> dict[str, Any]:
        """Current aggregates of every registered query."""
        return {
            name: registration.executor.result()
            for name, registration in self._registrations.items()
        }

    def current_objects(self) -> int:
        total = 0
        for registration in self._registrations.values():
            probe = getattr(registration.executor, "current_objects", None)
            if probe is not None:
                total += probe()
        return total

    @property
    def query_names(self) -> list[str]:
        return list(self._registrations)
