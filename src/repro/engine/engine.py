"""The stream engine: many queries, one event loop.

:class:`StreamEngine` owns a set of registered query executors (A-Seq
by default; any object with the ``process``/``result`` surface works,
including the baseline and the shared multi-query engines) and pumps an
event stream through all of them, delivering fresh aggregates to the
sinks attached at registration time.

Two execution paths coexist, selected at construction time:

* the **reference path** (default) offers every event to every
  registration, one event at a time — the correctness oracle every
  other path is differentially pinned against;
* the **fast path** — type-indexed routing (``routed=True``) so an
  arrival only touches registrations whose pattern can react to its
  event type, and micro-batch ingestion (:meth:`process_batch`, or
  ``batch_size=N`` to have :meth:`run` chunk the stream) so per-event
  bookkeeping (metrics, watermarks, traces) is paid once per batch.
"""

from __future__ import annotations

import os
import random
import time
from itertools import chain, islice
from typing import Any, Iterable, Sequence

from repro.errors import EngineError
from repro.events.batch import EventBatch
from repro.events.event import Event
from repro.core.executor import ASeqEngine
from repro.engine.metrics import EngineMetrics
from repro.engine.sinks import Output, ResultSink
from repro.obs.funnel import FunnelRecorder, resolve_funnel
from repro.obs.inspect import cost_summary
from repro.obs.registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    resolve_registry,
)
from repro.obs.tracing import Stage, TraceRecorder, resolve_tracer
from repro.query.ast import Query


def relevant_types_of(executor: Any) -> frozenset[str] | None:
    """The event types ``executor`` can react to, or None when unknown.

    Discovered from the executor's compiled :class:`PatternLayout`
    (update/reset slots cover START/UPD/TRIG and negated types) with the
    query AST's ``relevant_types`` as a fallback. Executors exposing
    neither (e.g. ad-hoc objects registered via
    :meth:`StreamEngine.register_executor`) return None and land in the
    routing index's catch-all bucket: they keep seeing every event.
    """
    layout = getattr(executor, "layout", None)
    if layout is not None:
        update_slots = getattr(layout, "update_slots", None)
        reset_slot = getattr(layout, "reset_slot", None)
        if update_slots is not None and reset_slot is not None:
            return frozenset(update_slots) | frozenset(reset_slot)
    query = getattr(executor, "query", None)
    types = getattr(query, "relevant_types", None)
    if types:
        return frozenset(types)
    return None


class _Registration:
    __slots__ = (
        "name", "executor", "sinks", "types",
        "m_events", "m_outputs", "m_latency", "columnar",
    )

    def __init__(
        self,
        name: str,
        executor: Any,
        sinks: list[ResultSink],
        types: frozenset[str] | None,
        m_events: Counter,
        m_outputs: Counter,
        m_latency: Histogram,
    ):
        self.name = name
        self.executor = executor
        self.sinks = sinks
        #: Event types this registration reacts to (None = catch-all).
        self.types = types
        self.m_events = m_events
        self.m_outputs = m_outputs
        self.m_latency = m_latency
        #: Single-entry columnar-plan cache: (schema, plan-or-None).
        #: Schemas are shared across a generator's batches, so one
        #: entry covers the steady state; None means "materialize".
        self.columnar: tuple[Any, Any] | None = None


class StreamEngine:
    """Multi-query streaming runtime.

    >>> from repro.query import seq
    >>> from repro.engine.sinks import CollectSink
    >>> engine = StreamEngine()
    >>> sink = CollectSink()
    >>> _ = engine.register(
    ...     seq("A", "B").count().within(ms=10).named("ab").build(),
    ...     sink)
    >>> engine.run([Event("A", 1), Event("B", 2)])
    2
    >>> sink.values()
    [1]
    """

    def __init__(
        self,
        vectorized: bool = False,
        registry: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
        stream_name: str = "default",
        cost_sample_every: int = 64,
        routed: bool = False,
        batch_size: int = 0,
        sink_retries: int = 0,
        sink_retry_backoff_s: float = 0.05,
        sink_dlq: Any = None,
        funnel: FunnelRecorder | None = None,
    ):
        if cost_sample_every < 0:
            raise ValueError("cost_sample_every must be >= 0")
        if batch_size < 0:
            raise ValueError("batch_size must be >= 0")
        if sink_retries < 0:
            raise ValueError("sink_retries must be >= 0")
        if sink_retry_backoff_s < 0:
            raise ValueError("sink_retry_backoff_s must be >= 0")
        self._registrations: dict[str, _Registration] = {}
        #: Registration list in insertion order (hot-path iteration).
        self._all: list[_Registration] = []
        #: Type-indexed routing: event type -> registrations that can
        #: react to it (catch-all registrations included in every list).
        self._routed = routed
        self._routes: dict[str, list[_Registration]] = {}
        self._catch_all: list[_Registration] = []
        self._vectorized = vectorized
        self._batch_size = batch_size
        self.metrics = EngineMetrics()
        self.stream_name = stream_name
        registry = resolve_registry(registry)
        self.obs_registry = registry
        self._obs_on = registry.enabled
        self._m_events = registry.counter(
            "events_ingested_total", "events pumped through the stream engine"
        )
        self._m_outputs = registry.counter(
            "outputs_emitted_total", "fresh aggregates delivered to sinks"
        )
        self._m_sink_errors = registry.counter(
            "sink_errors_total", "sink emit() calls that raised"
        )
        self._m_sink_retries = registry.counter(
            "sink_retries_total", "sink emit() calls retried after a failure"
        )
        self._m_sink_dead = registry.counter(
            "sink_dead_letters_total",
            "outputs routed to the dead-letter queue after retry exhaustion",
        )
        #: Bounded sink-delivery retry: 0 keeps the fire-and-forget
        #: behavior (count the error, drop the emission); N retries each
        #: failed emit with exponential backoff + seeded jitter, then
        #: dead-letters the output when ``sink_dlq`` is attached.
        self._sink_retries = sink_retries
        self._sink_backoff_s = sink_retry_backoff_s
        self.sink_dlq = sink_dlq
        self._sink_rng: random.Random | None = None
        self._m_latency = registry.histogram(
            "event_latency_us",
            "per-event processing latency across all registrations (µs)",
        )
        # Event-time watermark tracking: the max event timestamp seen,
        # and how far wall-clock progress lags event-time progress since
        # the first arrival (negative = faster-than-real-time replay).
        self._g_watermark = registry.gauge(
            "repro_event_time_watermark_ms",
            "max event timestamp observed on this stream (ms)",
            stream=stream_name,
        )
        self._g_lag = registry.gauge(
            "repro_event_time_lag_seconds",
            "wall-clock seconds behind event time, anchored at the "
            "first arrival (negative when replaying faster than "
            "real time)",
            stream=stream_name,
        )
        self._watermark_ms = float("-inf")
        self._time_anchor: tuple[float, int] | None = None
        #: Engine clock: max event timestamp routed (routed mode tracks
        #: it so executors skipped for irrelevant arrivals can still be
        #: brought up to date before a result read).
        self._clock_ms: int | None = None
        #: Sample per-registration latency every Nth event (0 disables);
        #: sampling keeps the two extra clock reads per registration off
        #: the common hot path.
        self._cost_sample_every = cost_sample_every
        tracer = resolve_tracer(trace)
        self._trace = tracer
        self._trace_on = tracer.enabled
        funnel = resolve_funnel(funnel)
        self.funnel = funnel
        self._funnel_on = funnel.enabled
        #: Last timestamp delivered through the columnar lane — the
        #: cross-batch analog of EventStream's in-order enforcement.
        self._batch_last_ts: int | None = None
        #: REPRO_FORCE_COLUMNAR=1 reroutes process_batch through the
        #: columnar lane (events → EventBatch → lane), pinning the
        #: batch→Event fallback materializer under every existing
        #: differential suite.
        self._force_columnar = (
            os.environ.get("REPRO_FORCE_COLUMNAR") == "1"
        )

    # ----- registration ------------------------------------------------------

    def register(
        self,
        query: Query,
        *sinks: ResultSink,
        name: str | None = None,
    ) -> ASeqEngine:
        """Register a query on a fresh A-Seq executor; returns the executor."""
        executor = ASeqEngine(
            query,
            vectorized=self._vectorized,
            registry=self.obs_registry,
            trace=self._trace,
            funnel=self.funnel,
        )
        self.register_executor(
            name or query.name or f"q{len(self._registrations)}",
            executor,
            *sinks,
        )
        return executor

    def register_executor(
        self, name: str, executor: Any, *sinks: ResultSink
    ) -> None:
        """Register any engine exposing ``process``/``result``."""
        if name in self._registrations:
            raise EngineError(f"duplicate query name {name!r}")
        registry = self.obs_registry
        self._registrations[name] = _Registration(
            name,
            executor,
            list(sinks),
            relevant_types_of(executor),
            registry.counter(
                "query_events_total", "events offered to one registration",
                query=name,
            ),
            registry.counter(
                "query_outputs_total", "fresh aggregates from one registration",
                query=name,
            ),
            registry.histogram(
                "query_latency_us",
                "sampled per-event executor latency of one registration (µs)",
                query=name,
            ),
        )
        self._rebuild_routes()

    def deregister(self, name: str) -> None:
        if name not in self._registrations:
            raise EngineError(f"unknown query {name!r}")
        del self._registrations[name]
        self._rebuild_routes()

    def _rebuild_routes(self) -> None:
        """Recompute the hot-path dispatch structures.

        The routing index maps every event type any registration reacts
        to onto the registrations that must see it; catch-all
        registrations (no discoverable layout) appear in every list and
        in :attr:`_catch_all`, which also serves arrivals of types no
        pattern mentions.
        """
        registrations = list(self._registrations.values())
        self._all = registrations
        if not self._routed:
            self._routes = {}
            self._catch_all = registrations
            return
        self._catch_all = [r for r in registrations if r.types is None]
        known: set[str] = set()
        for registration in registrations:
            if registration.types is not None:
                known.update(registration.types)
        self._routes = {
            event_type: [
                r
                for r in registrations
                if r.types is None or event_type in r.types
            ]
            for event_type in known
        }

    # ----- event loop -------------------------------------------------------

    def process(self, event: Event) -> None:
        """Push one event through every registered executor.

        A sink that raises does not abort the loop: the error is counted
        (``sink_errors_total``) and the remaining sinks and registrations
        keep receiving the event.
        """
        if self._routed:
            ts = event.ts
            if self._clock_ms is None or ts > self._clock_ms:
                self._clock_ms = ts
            targets = self._routes.get(event.event_type)
            if targets is None:
                targets = self._catch_all
        else:
            targets = self._all
        self.metrics.events += 1
        obs_on = self._obs_on
        if not obs_on and not self._trace_on:
            # Fast path: no clock reads, no counter bumps, no sampling
            # arithmetic — just dispatch.
            for registration in targets:
                fresh = registration.executor.process(event)
                if fresh is None:
                    continue
                self.metrics.outputs += 1
                if registration.sinks:
                    self._deliver(
                        registration.name,
                        registration.sinks,
                        Output(registration.name, event.ts, fresh),
                        event=event,
                    )
            return
        if obs_on:
            started = time.perf_counter()
            self._m_events.inc()
        sample = self._cost_sample_every
        timed = obs_on and sample and self.metrics.events % sample == 0
        for registration in targets:
            if obs_on:
                registration.m_events.inc()
            if timed:
                t0 = time.perf_counter()
                fresh = registration.executor.process(event)
                registration.m_latency.observe(
                    (time.perf_counter() - t0) * 1e6
                )
            else:
                fresh = registration.executor.process(event)
            if fresh is None:
                continue
            self.metrics.outputs += 1
            if obs_on:
                self._m_outputs.inc()
                registration.m_outputs.inc()
            if self._trace_on:
                self._trace.record(
                    Stage.EMIT, event.ts, event.event_type,
                    f"query={registration.name} value={fresh!r}",
                )
            if registration.sinks:
                self._deliver(
                    registration.name,
                    registration.sinks,
                    Output(registration.name, event.ts, fresh),
                    event=event,
                )
        if obs_on:
            finished = time.perf_counter()
            self._m_latency.observe((finished - started) * 1e6)
            self._note_event_time(event.ts, finished)

    def process_batch(self, events: Sequence[Event]) -> int:
        """Push a micro-batch through the registrations; returns its size.

        Semantically equivalent to calling :meth:`process` per event on
        an in-order stream (the differential suite pins this), but the
        engine-level bookkeeping — ingest counters, latency histogram,
        watermark, trace — is flushed once per batch, and each
        registration receives its events through the executor's own
        ``process_batch`` when it has one.
        """
        if not isinstance(events, list):
            events = list(events)
        if not events:
            return 0
        if self._force_columnar:
            return self.process_event_batch(
                EventBatch.from_events(events), enforce_order=False
            )
        count = len(events)
        self.metrics.events += count
        last_ts = events[-1].ts
        if self._clock_ms is None or last_ts > self._clock_ms:
            self._clock_ms = last_ts
        obs_on = self._obs_on
        if obs_on:
            started = time.perf_counter()
            self._m_events.inc(count)
        if self._routed:
            # One pass over the batch splits it per registration through
            # the route index — O(batch x reacting queries), independent
            # of how many registrations the engine carries.
            buckets: dict[int, list[Event]] = {}
            routes = self._routes
            catch_all = self._catch_all
            for event in events:
                for registration in routes.get(event.event_type, catch_all):
                    bucket = buckets.get(id(registration))
                    if bucket is None:
                        buckets[id(registration)] = bucket = []
                    bucket.append(event)
            for registration in self._all:
                sub = buckets.get(id(registration))
                if sub is not None:
                    self._drive_batch(registration, sub, obs_on)
        else:
            for registration in self._all:
                self._drive_batch(registration, events, obs_on)
        if obs_on:
            finished = time.perf_counter()
            self._m_latency.observe((finished - started) * 1e6 / count)
            self._note_event_time(last_ts, finished)
        return count

    def process_event_batch(
        self, batch: EventBatch, enforce_order: bool = True
    ) -> int:
        """Push one columnar batch through the registrations; returns
        its size.

        The zero-object lane: registrations whose executor binds a
        :class:`~repro.core.columnar.ColumnarPlan` to this batch's
        schema consume the column arrays directly (type-code LUT
        routing, boolean predicate masks, the scalar counting kernel);
        everything else — negation, Kleene, HPC/GROUP BY, shared plans,
        ad-hoc executors, or a batch a plan cannot evaluate exactly —
        receives the memoized ``batch.to_events()`` materialization
        through the same ``_drive_batch`` path ``process_batch`` uses,
        so results stay bit-identical to the reference engine either
        way.

        ``enforce_order=True`` rejects in-batch and cross-batch
        timestamp regressions with the same
        :class:`~repro.errors.OutOfOrderError` the per-event
        :class:`~repro.events.stream.EventStream` raises (the batch
        emitters are the stream's columnar analog); the
        ``REPRO_FORCE_COLUMNAR`` hook disables it to match
        ``process_batch``'s trust-the-caller contract.
        """
        count = len(batch)
        if not count:
            return 0
        if enforce_order:
            batch.ensure_in_order(self._batch_last_ts)
        last_ts = batch.last_ts()
        if self._batch_last_ts is None or last_ts > self._batch_last_ts:
            self._batch_last_ts = last_ts
        self.metrics.events += count
        if self._clock_ms is None or last_ts > self._clock_ms:
            self._clock_ms = last_ts
        obs_on = self._obs_on
        if obs_on:
            started = time.perf_counter()
            self._m_events.inc(count)
        routed = self._routed
        materialized: list[Event] | None = None
        for registration in self._all:
            plan = self._bind_columnar(registration, batch.schema)
            outcome = None
            if plan is not None:
                outcome = registration.executor.process_columnar(
                    batch, plan, routed=routed
                )
            if outcome is None:
                # Fallback: identical to the object path, bucketed the
                # way routed process_batch buckets (materialized once,
                # shared across every fallback registration).
                if materialized is None:
                    materialized = batch.to_events()
                if not routed or registration.types is None:
                    bucket = materialized
                else:
                    types = registration.types
                    bucket = [
                        event
                        for event in materialized
                        if event.event_type in types
                    ]
                if bucket:
                    self._drive_batch(registration, bucket, obs_on)
                continue
            emitted, offered = outcome
            if routed and not offered:
                continue  # empty bucket: skipped, like process_batch
            if obs_on:
                registration.m_events.inc(offered)
            emit_count = len(emitted)
            if not emit_count:
                continue
            self.metrics.outputs += emit_count
            if obs_on:
                self._m_outputs.inc(emit_count)
                registration.m_outputs.inc(emit_count)
            if registration.sinks:
                name = registration.name
                for ts, fresh in emitted:
                    self._deliver(
                        name,
                        registration.sinks,
                        Output(name, ts, fresh),
                    )
        if obs_on:
            finished = time.perf_counter()
            self._m_latency.observe((finished - started) * 1e6 / count)
            self._note_event_time(last_ts, finished)
        return count

    def _bind_columnar(
        self, registration: _Registration, schema: Any
    ) -> Any | None:
        """The registration's plan for ``schema`` (cached by schema
        identity; None = use the materialized fallback)."""
        cached = registration.columnar
        if cached is not None and cached[0] is schema:
            return cached[1]
        plan = None
        if not self._trace_on:
            probe = getattr(registration.executor, "columnar_plan", None)
            if probe is not None:
                plan = probe(schema)
        registration.columnar = (schema, plan)
        return plan

    def _drive_batch(
        self,
        registration: _Registration,
        events: list[Event],
        obs_on: bool,
    ) -> None:
        """Feed one registration its slice of a batch and fan out sinks."""
        executor = registration.executor
        batch = getattr(executor, "process_batch", None)
        if batch is not None:
            emitted = batch(events)
        else:
            process = executor.process
            emitted = [
                (event, fresh)
                for event in events
                if (fresh := process(event)) is not None
            ]
        if obs_on:
            registration.m_events.inc(len(events))
        count = len(emitted)
        if not count:
            return
        self.metrics.outputs += count
        if obs_on:
            self._m_outputs.inc(count)
            registration.m_outputs.inc(count)
        if self._trace_on:
            self._trace.record(
                Stage.EMIT, events[-1].ts, events[-1].event_type,
                f"query={registration.name} batch_outputs={count}",
            )
        if registration.sinks:
            name = registration.name
            for event, fresh in emitted:
                self._deliver(
                    name,
                    registration.sinks,
                    Output(name, event.ts, fresh),
                    event=event,
                )

    def _deliver(
        self,
        name: str,
        sinks: list[ResultSink],
        output: Output,
        event: Event | None = None,
        journal_seq: int = -1,
    ) -> None:
        """Emit one output to each sink, with bounded retry + backoff.

        A sink that raises never aborts delivery to its siblings. With
        ``sink_retries == 0`` (the default) a failed emit is counted and
        dropped, exactly the historical behavior. Otherwise each failing
        sink is retried up to N times with exponential backoff and
        deterministic jitter (seeded from ``REPRO_FAULT_SEED`` so chaos
        runs replay identically); when every attempt fails the output is
        pushed to :attr:`sink_dlq` (when attached) as a
        :class:`~repro.resilience.supervisor.DeadLetter` carrying the
        undelivered payload.
        """
        retries = self._sink_retries
        obs_on = self._obs_on
        for sink in sinks:
            try:
                sink.emit(output)
                continue
            except Exception as error:
                self.metrics.sink_errors += 1
                if obs_on:
                    self._m_sink_errors.inc()
                last_error = error
            delivered = False
            for attempt in range(retries):
                delay = self._sink_backoff_s * (2 ** attempt)
                if delay > 0:
                    # Jitter in [0.5, 1.5) de-synchronizes concurrent
                    # retry storms without breaking seeded replay.
                    time.sleep(delay * (0.5 + self._jitter_rng().random()))
                if obs_on:
                    self._m_sink_retries.inc()
                if self._trace_on:
                    self._trace.record(
                        Stage.SINK_RETRY,
                        output.ts,
                        event.event_type if event is not None else "",
                        f"query={name} attempt={attempt + 1}/{retries}",
                    )
                try:
                    sink.emit(output)
                    delivered = True
                    break
                except Exception as error:
                    self.metrics.sink_errors += 1
                    if obs_on:
                        self._m_sink_errors.inc()
                    last_error = error
            if not delivered and self.sink_dlq is not None:
                from repro.resilience.supervisor import DeadLetter

                if obs_on:
                    self._m_sink_dead.inc()
                if self._trace_on:
                    self._trace.record(
                        Stage.SINK_DEAD_LETTER,
                        output.ts,
                        event.event_type if event is not None else "",
                        f"query={name}: {type(last_error).__name__}",
                    )
                self.sink_dlq.push(
                    DeadLetter(
                        name, event, last_error, journal_seq, output=output
                    )
                )

    def _jitter_rng(self) -> random.Random:
        if self._sink_rng is None:
            from repro.resilience.faults import fault_seed

            self._sink_rng = random.Random(fault_seed(0))
        return self._sink_rng

    def _note_event_time(self, ts: int, now_perf: float) -> None:
        """Advance the event-time watermark and the lag gauge.

        Lag is anchored at the first arrival: it compares wall-clock
        progress since then against event-time progress, so both epoch
        streams and synthetic (zero-based) streams report a meaningful
        number. See docs/OBSERVABILITY.md for the full semantics.
        """
        if ts > self._watermark_ms:
            self._watermark_ms = ts
            self._g_watermark.value = float(ts)
        anchor = self._time_anchor
        if anchor is None:
            self._time_anchor = (now_perf, ts)
        else:
            self._g_lag.value = (
                (now_perf - anchor[0])
                - (self._watermark_ms - anchor[1]) / 1000.0
            )

    def advance_clock(self, ts: int) -> None:
        """Move every executor's clock forward without an event.

        Used on idle streams and by the sharded runtime, whose workers
        see only a hash-partition of the stream: the coordinator pushes
        the global watermark down before collecting partial results so
        window expiry agrees with the single-process engine.
        """
        if self._clock_ms is None or ts > self._clock_ms:
            self._clock_ms = ts
        for registration in self._all:
            advance = getattr(registration.executor, "advance_time", None)
            if advance is not None:
                advance(ts)

    def _sync_executor_clock(self, executor: Any) -> None:
        """Routed mode: bring one executor up to the engine clock.

        Routing skips executors for irrelevant arrivals, so an executor
        asked for its result between triggers may not have seen the
        latest timestamps; windows must still slide on every event
        (paper Sec. 2.1), so the clock is pushed down lazily here.
        """
        clock = self._clock_ms
        if clock is None:
            return
        advance = getattr(executor, "advance_time", None)
        if advance is not None:
            advance(clock)

    def run(
        self, stream: Iterable[Event], batch_size: int | None = None
    ) -> int:
        """Drain a stream; returns the number of events processed.

        With a positive ``batch_size`` (or one set at construction) the
        stream is chunked through :meth:`process_batch`; otherwise every
        event takes the reference per-event path.
        """
        size = self._batch_size if batch_size is None else batch_size
        started = time.perf_counter()
        processed = 0
        iterator = iter(stream)
        first = next(iterator, None)
        if first is None:
            pass
        elif isinstance(first, EventBatch):
            # A stream of columnar batches (datagen batch emitters,
            # the shard wire): each batch is one ingest unit; the
            # batch_size chunking knob does not re-slice them.
            for batch in chain([first], iterator):
                processed += self.process_event_batch(batch)
        elif size and size > 1:
            iterator = chain([first], iterator)
            while True:
                chunk = list(islice(iterator, size))
                if not chunk:
                    break
                processed += self.process_batch(chunk)
        else:
            for event in chain([first], iterator):
                self.process(event)
                processed += 1
        self.metrics.elapsed_s += time.perf_counter() - started
        self.metrics.note_objects(self.current_objects())
        return processed

    # ----- results ---------------------------------------------------------------

    def result(self, name: str) -> Any:
        """Current aggregate of one registered query."""
        registration = self._registrations.get(name)
        if registration is None:
            raise EngineError(f"unknown query {name!r}")
        if self._routed:
            self._sync_executor_clock(registration.executor)
        return registration.executor.result()

    def results(self) -> dict[str, Any]:
        """Current aggregates of every registered query."""
        if self._routed:
            for registration in self._all:
                self._sync_executor_clock(registration.executor)
        return {
            name: registration.executor.result()
            for name, registration in self._registrations.items()
        }

    def current_objects(self) -> int:
        total = 0
        for registration in self._registrations.values():
            probe = getattr(registration.executor, "current_objects", None)
            if probe is not None:
                total += probe()
        return total

    @property
    def query_names(self) -> list[str]:
        return list(self._registrations)

    @property
    def routed(self) -> bool:
        """Whether the type-indexed routing fast path is active."""
        return self._routed

    def routes(self) -> dict[str, list[str]]:
        """The routing index as query names (diagnostics, tests)."""
        return {
            event_type: [r.name for r in registrations]
            for event_type, registrations in self._routes.items()
        }

    def executor_of(self, name: str) -> Any:
        """The executor behind one registration."""
        registration = self._registrations.get(name)
        if registration is None:
            raise EngineError(f"unknown query {name!r}")
        return registration.executor

    @property
    def watermark_ms(self) -> float | None:
        """Max event timestamp observed (None before the first event)."""
        mark = self._watermark_ms
        if mark == float("-inf"):
            clock = self._clock_ms
            return None if clock is None else float(clock)
        return mark

    def query_rows(self) -> list[dict[str, Any]]:
        """One cost-accounting row per registration (``/queries``).

        Safe to call from a scrape thread: the registration table is
        snapshotted before iteration and every probe reads live state
        without mutating it.
        """
        rows = []
        for registration in list(self._registrations.values()):
            row: dict[str, Any] = {
                "query": registration.name,
                "events_routed": int(registration.m_events.value),
                "outputs": int(registration.m_outputs.value),
            }
            row.update(cost_summary(registration.executor))
            latency = registration.m_latency
            if latency.count:
                row["latency_us_p50"] = latency.p50
                row["latency_us_p99"] = latency.p99
            rows.append(row)
        return rows

    def refresh_cost_metrics(self) -> None:
        """Publish pull-based per-query cost gauges into the registry.

        Live-object counts, HPC partition counts, CC snapshot rows and
        counter-update totals are expensive to maintain per event, so
        they are computed here — on scrape (the admin server calls this
        before rendering ``/metrics``) rather than on ingest.
        """
        registry = self.obs_registry
        if self._funnel_on:
            # Drift gauges live wherever the funnel series live (the
            # shared registry when instrumentation is on, the funnel's
            # private one otherwise).
            self._refresh_drift(self.funnel.registry)
        if not registry.enabled:
            return
        for row in self.query_rows():
            name = row["query"]
            registry.gauge(
                "query_live_objects",
                "live counting state held by one registration",
                query=name,
            ).set(float(row.get("live_objects") or 0))
            registry.gauge(
                "query_counter_updates",
                "prefix-counter slot updates performed by one registration",
                query=name,
            ).set(float(row.get("counter_updates") or 0))
            if row.get("hpc_partitions") is not None:
                registry.gauge(
                    "query_hpc_partitions",
                    "live HPC partition engines of one registration",
                    query=name,
                ).set(float(row["hpc_partitions"]))
            if row.get("cc_snapshot_rows") is not None:
                registry.gauge(
                    "query_cc_snapshot_rows",
                    "live Chop-Connect SnapShot rows of one registration",
                    query=name,
                ).set(float(row["cc_snapshot_rows"]))

    def _refresh_drift(self, registry: MetricsRegistry) -> None:
        """Estimated-vs-observed cost drift per registration.

        Compares the cost model's predicted prefix-counter updates per
        event against what the funnel measured, publishing the ratio as
        ``repro_query_cost_drift_ratio{query=}`` and warning (rate
        limited) when the model is off by more than 5x either way.
        """
        from repro.obs.explain import drift_from_funnel
        from repro.obs.logging import get_logger

        for registration in list(self._registrations.values()):
            executor = registration.executor
            query = getattr(executor, "query", None)
            handle = getattr(executor, "funnel_handle", None)
            if query is None or handle is None:
                continue
            drift = drift_from_funnel(query, handle.snapshot())
            if drift is None:
                continue
            ratio = drift["drift_ratio"]
            registry.gauge(
                "repro_query_cost_drift_ratio",
                "observed / cost-model-estimated per-event update cost",
                query=registration.name,
            ).set(ratio)
            if ratio > 5.0 or ratio < 0.2:
                get_logger("explain").warning(
                    "cost_drift",
                    query=registration.name,
                    drift_ratio=round(ratio, 3),
                    estimated=round(
                        drift["estimated_updates_per_event"], 3
                    ),
                    observed=round(drift["observed_updates_per_event"], 3),
                    message=(
                        f"cost model off by {ratio:.1f}x for "
                        f"{registration.name!r}"
                    ),
                )

    def explain(self) -> dict[str, Any]:
        """Structured plan for every registration (see
        :mod:`repro.obs.explain`)."""
        from repro.obs.explain import explain_engine
        return explain_engine(self)

    def inspect(self) -> dict[str, Any]:
        """JSON-serializable engine-wide state summary."""
        queries = {}
        for registration in list(self._registrations.values()):
            executor = registration.executor
            probe = getattr(executor, "inspect", None)
            queries[registration.name] = (
                probe() if probe is not None
                else {"kind": type(executor).__name__}
            )
        return {
            "kind": type(self).__name__,
            "stream": self.stream_name,
            "events": self.metrics.events,
            "outputs": self.metrics.outputs,
            "sink_errors": self.metrics.sink_errors,
            "watermark_ms": self.watermark_ms,
            "routed": self._routed,
            "batch_size": self._batch_size,
            "registrations": len(queries),
            "queries": queries,
        }
