"""Measurement helpers used by the benchmark harness and the engine.

The paper's two metrics (Sec. 6.1) are reproduced exactly:

* **execution time per window slide** — elapsed wall time divided by
  the number of window slides; the window slides on every arrival, so
  the divisor is the event count;
* **peak memory as an object count** — live engine objects (stack
  entries + pointers + materialized matches for the two-step baseline;
  active PreCntrs for A-Seq), sampled after each arrival.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.events.event import Event
from repro.obs.registry import MetricsRegistry


@dataclass
class EngineMetrics:
    """Running totals a :class:`~repro.engine.engine.StreamEngine` keeps."""

    events: int = 0
    outputs: int = 0
    elapsed_s: float = 0.0
    peak_objects: int = 0
    sink_errors: int = 0

    def note_objects(self, current: int) -> None:
        if current > self.peak_objects:
            self.peak_objects = current

    @property
    def per_event_us(self) -> float:
        if not self.events:
            return 0.0
        return self.elapsed_s * 1e6 / self.events


@dataclass
class RunStats:
    """Result of measuring one engine over one finite stream."""

    label: str
    events: int
    elapsed_s: float
    outputs: int
    peak_objects: int
    final_result: Any = None
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def per_slide_ms(self) -> float:
        """Avg execution time per window slide (ms) — Fig. 12/13 metric."""
        if not self.events:
            return 0.0
        return self.elapsed_s * 1e3 / self.events

    @property
    def per_event_us(self) -> float:
        if not self.events:
            return 0.0
        return self.elapsed_s * 1e6 / self.events

    @property
    def events_per_s(self) -> float:
        if not self.elapsed_s:
            return 0.0
        return self.events / self.elapsed_s


def measure_run(
    label: str,
    engine: Any,
    events: Iterable[Event],
    sample_memory_every: int = 16,
    registry: MetricsRegistry | None = None,
) -> RunStats:
    """Drive ``engine`` over ``events`` and measure the paper's metrics.

    ``engine`` needs ``process(event)`` and ``result()``; the memory
    probe uses ``current_objects()`` when available (sampled every
    ``sample_memory_every`` arrivals — configurable so harnesses can
    trade probe overhead against resolution — plus one final probe
    after the last event so end-of-run peaks and short streams are not
    under-reported) and falls back to a ``peak_objects`` attribute
    maintained by the engine.

    When the engine carries an enabled observability registry (or one
    is passed explicitly), its counters/gauges/histogram quantiles are
    flattened into ``RunStats.extras`` so reports can show counter-level
    explanations next to the timings.
    """
    if sample_memory_every < 1:
        raise ValueError("sample_memory_every must be >= 1")
    event_list = list(events)
    probe: Callable[[], int] | None = getattr(
        engine, "current_objects", None
    )
    peak = 0
    outputs = 0
    process = engine.process
    started = time.perf_counter()
    for index, event in enumerate(event_list):
        if process(event) is not None:
            outputs += 1
        if probe is not None and index % sample_memory_every == 0:
            current = probe()
            if current > peak:
                peak = current
    if probe is not None and event_list:
        current = probe()
        if current > peak:
            peak = current
    elapsed = time.perf_counter() - started
    engine_peak = getattr(engine, "peak_objects", 0) or 0
    peak = max(peak, engine_peak)
    stats = RunStats(
        label=label,
        events=len(event_list),
        elapsed_s=elapsed,
        outputs=outputs,
        peak_objects=peak,
        final_result=engine.result(),
    )
    if registry is None:
        registry = getattr(engine, "obs_registry", None)
    if registry is not None and registry.enabled:
        stats.extras.update(registry.flat())
    return stats
