"""Result sinks: where fresh aggregates go.

Engines emit an aggregate on every TRIG arrival; a sink decides what to
do with it — collect it, forward it, keep only the latest, or raise an
alert when a threshold is crossed (the paper's fraud-detection
motivation, Application III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(frozen=True)
class Output:
    """One emitted aggregate."""

    query_name: str
    ts: int
    value: Any


class ResultSink:
    """Base sink interface."""

    def emit(self, output: Output) -> None:
        raise NotImplementedError


@dataclass
class CollectSink(ResultSink):
    """Keeps every output (tests, examples, benchmarks)."""

    outputs: list[Output] = field(default_factory=list)

    def emit(self, output: Output) -> None:
        self.outputs.append(output)

    def values(self) -> list[Any]:
        return [o.value for o in self.outputs]

    def last(self) -> Output | None:
        return self.outputs[-1] if self.outputs else None

    def __len__(self) -> int:
        return len(self.outputs)


@dataclass
class LatestSink(ResultSink):
    """Keeps only the most recent output per query."""

    latest: dict[str, Output] = field(default_factory=dict)

    def emit(self, output: Output) -> None:
        self.latest[output.query_name] = output

    def value_of(self, query_name: str, default: Any = None) -> Any:
        output = self.latest.get(query_name)
        return output.value if output is not None else default


class CallbackSink(ResultSink):
    """Forwards every output to a user callback."""

    def __init__(self, callback: Callable[[Output], None]):
        self._callback = callback

    def emit(self, output: Output) -> None:
        self._callback(output)


class ThresholdAlertSink(ResultSink):
    """Fires an alert callback when the aggregate crosses a threshold.

    ``direction`` is ``"above"`` (value >= threshold fires) or
    ``"below"``. Alerts are edge-triggered: one alert per crossing, not
    one per output while the condition holds.
    """

    def __init__(
        self,
        threshold: float,
        on_alert: Callable[[Output], None],
        direction: str = "above",
    ):
        if direction not in ("above", "below"):
            raise ValueError("direction must be 'above' or 'below'")
        self._threshold = threshold
        self._on_alert = on_alert
        self._direction = direction
        self._armed: dict[tuple[str, Any], bool] = {}
        self.alerts: list[Output] = []

    def emit(self, output: Output) -> None:
        values = output.value
        if not isinstance(values, dict):
            values = {None: values}
        for key, value in values.items():
            if value is None:
                continue
            fired = (
                value >= self._threshold
                if self._direction == "above"
                else value <= self._threshold
            )
            armed_key = (output.query_name, key)
            if fired and self._armed.get(armed_key, True):
                alert = Output(output.query_name, output.ts, {key: value})
                self.alerts.append(alert)
                self._on_alert(alert)
                self._armed[armed_key] = False
            elif not fired:
                self._armed[armed_key] = True
