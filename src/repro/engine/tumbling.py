"""Tumbling-window aggregation on top of DPC.

The paper's WITHIN clause is a per-event *sliding* window (SEM); many
analytics instead want *tumbling* windows — fixed, non-overlapping
buckets ``[k*W, (k+1)*W)`` with one result each. Because a match must
lie wholly inside its bucket, tumbling aggregation needs no per-START
bookkeeping at all: run plain DPC and reset it at every boundary. This
wrapper does exactly that, emitting one
:class:`~repro.engine.tumbling.WindowResult` per closed bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import QueryError
from repro.events.event import Event
from repro.core.dpc import DPCEngine
from repro.query.ast import Query
from repro.query.predicates import local_filter


@dataclass(frozen=True)
class WindowResult:
    """The aggregate of one closed tumbling bucket."""

    window_start: int
    window_end: int
    value: Any


class TumblingAggregator:
    """Per-bucket CEP aggregation with O(1) state.

    Parameters
    ----------
    query:
        A query *without* a WITHIN clause (the bucket width replaces
        it). GROUP BY / equivalence are not supported here — wrap one
        aggregator per key if needed.
    width_ms:
        Tumbling bucket width. Buckets are aligned at multiples of the
        width: an event at ``ts`` belongs to bucket ``ts // width``.

    >>> from repro.query import seq
    >>> agg = TumblingAggregator(seq("A", "B").count().build(), width_ms=10)
    >>> closed = []
    >>> for event in [Event("A", 1), Event("B", 2), Event("A", 15),
    ...               Event("B", 16), Event("B", 27)]:
    ...     closed.extend(agg.process(event))
    >>> [(r.window_start, r.value) for r in closed]
    [(0, 1), (10, 1)]
    >>> agg.flush().value  # the still-open bucket
    0
    """

    def __init__(self, query: Query, width_ms: int):
        if query.window is not None:
            raise QueryError(
                "tumbling aggregation replaces WITHIN; build the query "
                "without a window and pass width_ms instead"
            )
        if query.group_by is not None:
            raise QueryError(
                "tumbling aggregation does not partition; wrap one "
                "aggregator per key"
            )
        if width_ms <= 0:
            raise QueryError("bucket width must be positive")
        self.query = query
        self.width_ms = width_ms
        self._accepts = local_filter(query.predicates)
        self._relevant = query.relevant_types
        self._engine = DPCEngine(query)
        self._bucket: int | None = None
        self.windows_closed = 0

    # ----- ingestion -------------------------------------------------------

    def process(self, event: Event) -> list[WindowResult]:
        """Ingest one event; returns the buckets this arrival closed.

        Quiet periods may close several buckets at once (their results
        are emitted in order; interior silent buckets report the
        aggregate of an empty match set).
        """
        closed = self._advance_to(event.ts // self.width_ms)
        if event.event_type in self._relevant and self._accepts(event):
            self._engine.process(event)
        return closed

    def _advance_to(self, bucket: int) -> list[WindowResult]:
        if self._bucket is None:
            self._bucket = bucket
            return []
        closed: list[WindowResult] = []
        while self._bucket < bucket:
            closed.append(self._close_current())
        return closed

    def _close_current(self) -> WindowResult:
        assert self._bucket is not None
        result = WindowResult(
            window_start=self._bucket * self.width_ms,
            window_end=(self._bucket + 1) * self.width_ms,
            value=self._engine.result(),
        )
        self._engine = DPCEngine(self.query)
        self._bucket += 1
        self.windows_closed += 1
        return result

    def flush(self) -> WindowResult | None:
        """Close and return the currently open bucket (end of stream)."""
        if self._bucket is None:
            return None
        return self._close_current()

    def current_value(self) -> Any:
        """The running aggregate of the open bucket."""
        return self._engine.result()

    def current_objects(self) -> int:
        return self._engine.current_objects()


def tumbling(
    events: Iterator[Event] | Any, query: Query, width_ms: int
) -> Iterator[WindowResult]:
    """Stream helper: yield one :class:`WindowResult` per closed bucket."""
    aggregator = TumblingAggregator(query, width_ms)
    for event in events:
        yield from aggregator.process(event)
    final = aggregator.flush()
    if final is not None:
        yield final
