"""Multi-core execution: hash-partitioned worker engines, supervised.

:class:`ShardedStreamEngine` runs one full :class:`StreamEngine` per
worker *process*, each owning a hash-partition of the stream keyed by a
partition attribute. The legality argument is the paper's own (HPC,
Sec. 3.4): a query with an equivalence chain or GROUP BY evaluates
independently per key, and because a hash assigns every key to exactly
one shard, per-shard results compose exactly —

* COUNT / SUM add across shards;
* AVG folds ``count_and_wsum()`` pairs (counts and weighted sums add;
  dividing once at the end loses nothing);
* MAX / MIN take the extremum of per-shard extrema;
* GROUP BY is a dict union: group values never straddle shards because
  the shard key *is* (or leads) the group key.

Queries that cannot be partitioned on the chosen attribute — no
equivalence chain or GROUP BY, or one on a different attribute — run on
a **local lane**: an in-process routed :class:`StreamEngine` that sees
every event, so their semantics (including per-TRIG sink emissions) are
exactly those of the single-process engine. Sharded queries deliver
their merged result to sinks once per :meth:`run` (per-TRIG emission
order is undefined across processes, so it is not simulated).

The shard hash must agree across processes, so it is
``zlib.crc32(repr(key))`` — Python's builtin ``hash`` is randomized
per process and would route the same key differently in parent and
tests.

Fault tolerance (``supervise=True``, the default) extends PR 2's
single-process guarantees to this path:

* every worker owns a **control pipe** besides its data pipe and
  answers heartbeat pings on it; a
  :class:`~repro.resilience.shard_supervisor.HeartbeatSupervisor`
  thread revives shards that die, wedge, or report a poisoned engine;
* every batch successfully handed to a worker is recorded in that
  shard's journal (in memory by default, on disk under
  ``journal_dir/shard-NN`` — reusing
  :class:`~repro.resilience.journal.EventJournal`); workers snapshot
  their engine state every ``checkpoint_every_batches`` deliveries, so
  a revive is *exact*: respawn, re-seed from the checkpoint, replay the
  journal suffix. Merged results stay bit-identical to the
  single-process reference even across a ``SIGKILL`` mid-stream;
* data-pipe sends are **timeout-guarded** (a slow shard can no longer
  wedge the router): on a stall the ``overload_policy`` decides —
  ``"block"`` restarts the wedged worker and redelivers (lossless),
  ``"shed_oldest"`` drops the stalled batch and counts it,
  ``"raise"`` raises :class:`~repro.errors.OverloadError` — mirroring
  the DeadLetterQueue policies;
* a shard that exhausts ``restart_limit`` is **degraded**: its
  key-range folds into an in-process lane seeded the same exact way,
  and the engine reports it via ``inspect()``/``shard_health()`` and
  the admin ``/healthz`` (503).

When NOT to shard: workloads dominated by queries without a partition
key (everything lands on the local lane plus IPC overhead), tiny
streams (worker startup costs more than it saves), or single-core
hosts (the workers time-slice one CPU and IPC is pure overhead).
"""

from __future__ import annotations

import multiprocessing as mp
import select
import signal
import threading
import time
import zlib
from multiprocessing.connection import wait as _mp_wait
from pathlib import Path
from typing import Any, Iterable

from repro.errors import EngineError, OverloadError, QueryError
from repro.events.event import Event
from repro.core.checkpoint import restore as _executor_restore
from repro.core.hpc import partition_attributes
from repro.engine.engine import StreamEngine
from repro.engine.metrics import EngineMetrics
from repro.engine.sinks import Output, ResultSink
from repro.obs.logging import get_logger
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.query.ast import AggKind, Query
from repro.resilience.checkpointer import engine_state
from repro.resilience.shard_supervisor import (
    HeartbeatSupervisor,
    ShardHealth,
    open_shard_log,
)

_log = get_logger("sharded")

OVERLOAD_POLICIES = ("block", "shed_oldest", "raise")

#: query_rows() fields that are per-process distributions, not totals —
#: summing them across shards would be meaningless.
_NON_ADDITIVE_ROW_KEYS = frozenset(
    {"query", "runtime_kind", "latency_us_p50", "latency_us_p99"}
)


def shard_of(key: Any, shards: int) -> int:
    """Deterministic cross-process shard assignment for one key."""
    return zlib.crc32(repr(key).encode("utf-8")) % shards


def _apply_seed(engine: StreamEngine, state: dict[str, Any]) -> None:
    """Restore every registration's executor from an engine checkpoint
    document in place (the registrations already exist; routing keeps
    pointing at the registration objects, whose ``executor`` attribute
    is looked up at dispatch time)."""
    for entry in state.get("registrations", []):
        registration = engine._registrations.get(entry["name"])
        if registration is None:
            continue
        registration.executor = _executor_restore(
            registration.executor.query,
            entry["state"],
            vectorized=bool(entry.get("vectorized", False)),
        )


def _shard_worker(
    conn: Any,
    control: Any,
    specs: list[tuple[str, Query]],
    vectorized: bool,
) -> None:
    """Worker loop: a routed StreamEngine over one hash-partition.

    Two duplex pipes, multiplexed with ``multiprocessing.connection
    .wait`` so heartbeats are answered even while data queues up.

    Data-pipe protocol (request, reply):

    * ``("batch", [(type, ts, attrs), ...])`` — ingest; no reply (the
      pipe's buffer provides natural backpressure via ``send``).
    * ``("collect", watermark_ms)`` — advance clocks to the global
      watermark, reply ``("ok", {name: partial})`` with composable
      partial results (see :func:`_partial_of`).
    * ``("seed", engine_checkpoint)`` — restore every executor from a
      checkpoint document (revive path), reply ok.
    * ``("checkpoint", None)`` — reply ``("ok", engine_state(...))``.
    * ``("rows"/"inspect"/"state", ...)`` — ops-plane snapshots.
    * ``("hang", seconds)`` — fault injection: sleep on the data lane
      so the pipe backs up (heartbeats keep flowing).
    * ``("stop", None)`` — reply and exit.

    Control-pipe protocol: ``("ping", None)`` → ``("pong", {"events",
    "failure"})``; ``("stall", s)`` / ``("stall_hard", s)`` — fault
    injection: go fully unresponsive (``stall_hard`` also ignores
    SIGTERM, to exercise the router's kill escalation).

    A batch that raises poisons the engine: the failure string rides
    every subsequent pong and the next collect replies ``("error",
    ...)`` — either way the supervisor restarts this process.
    """
    engine = StreamEngine(routed=True, vectorized=vectorized)
    executors = {
        name: engine.register(query, name=name) for name, query in specs
    }
    failure: str | None = None
    while True:
        try:
            ready = _mp_wait([conn, control])
        except OSError:
            return
        if control in ready:
            try:
                command, payload = control.recv()
            except (EOFError, OSError):
                return
            try:
                if command == "ping":
                    control.send(
                        (
                            "pong",
                            {
                                "events": engine.metrics.events,
                                "failure": failure,
                            },
                        )
                    )
                elif command == "stall":
                    time.sleep(float(payload))
                elif command == "stall_hard":
                    signal.signal(signal.SIGTERM, signal.SIG_IGN)
                    time.sleep(float(payload))
            except (OSError, BrokenPipeError):
                return
            continue
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            return
        if command == "batch":
            if failure is not None:
                continue  # poisoned: drain silently until restarted
            try:
                engine.process_batch(
                    [Event(t, ts, attrs) for t, ts, attrs in payload]
                )
            except Exception as error:  # reported via pong + collect
                failure = f"{type(error).__name__}: {error}"
        elif command == "collect":
            if failure is not None:
                conn.send(("error", failure))
                return
            try:
                engine.advance_clock(int(payload))
                partials = {
                    name: _partial_of(executor)
                    for name, executor in executors.items()
                }
                conn.send(("ok", partials))
            except Exception as error:
                conn.send(("error", f"{type(error).__name__}: {error}"))
                return
        elif command == "seed":
            try:
                _apply_seed(engine, payload)
                executors = {
                    name: engine._registrations[name].executor
                    for name, _ in specs
                }
                failure = None
                conn.send(("ok", None))
            except Exception as error:
                conn.send(("error", f"{type(error).__name__}: {error}"))
                return
        elif command == "checkpoint":
            try:
                conn.send(("ok", engine_state(engine)))
            except Exception as error:
                conn.send(("error", f"{type(error).__name__}: {error}"))
        elif command == "rows":
            conn.send(("ok", engine.query_rows()))
        elif command == "inspect":
            conn.send(("ok", engine.inspect()))
        elif command == "state":
            from repro.obs.inspect import state_of

            conn.send(("ok", state_of(engine, payload)))
        elif command == "hang":
            time.sleep(float(payload))
        elif command == "stop":
            conn.send(("ok", engine.metrics.events))
            return


def _partial_of(executor: Any) -> Any:
    """One shard's composable partial result for one query.

    AVG ships ``(count, wsum)`` pairs — scalar or per-group — because
    per-shard averages do not compose; everything else ships its plain
    result.
    """
    query = executor.query
    if query.aggregate.kind is AggKind.AVG:
        if query.group_by is not None:
            return executor.group_count_and_wsum()
        return executor.count_and_wsum()
    return executor.result()


def _merge_partials(query: Query, partials: list[Any]) -> Any:
    """Fold per-shard partials into the single-process result."""
    kind = query.aggregate.kind
    if query.group_by is not None:
        if kind is AggKind.AVG:
            totals: dict[Any, tuple[int, float]] = {}
            for partial in partials:
                for group, (count, wsum) in partial.items():
                    base_count, base_wsum = totals.get(group, (0, 0.0))
                    totals[group] = (base_count + count, base_wsum + wsum)
            return {
                group: (wsum / count if count else None)
                for group, (count, wsum) in totals.items()
            }
        merged: dict[Any, Any] = {}
        for partial in partials:
            for group, value in partial.items():
                if group not in merged:
                    merged[group] = value
                elif kind in (AggKind.COUNT, AggKind.SUM):
                    # Unreachable when the shard key leads the group key
                    # (groups are disjoint across shards), but merge
                    # soundly anyway.
                    merged[group] += value
                elif value is not None:
                    held = merged[group]
                    if held is None:
                        merged[group] = value
                    elif kind is AggKind.MAX:
                        merged[group] = max(held, value)
                    else:
                        merged[group] = min(held, value)
        return merged
    if kind in (AggKind.COUNT, AggKind.SUM):
        return sum(partials)
    if kind is AggKind.AVG:
        count = sum(pair[0] for pair in partials)
        wsum = sum(pair[1] for pair in partials)
        return wsum / count if count else None
    extrema = [value for value in partials if value is not None]
    if not extrema:
        return None
    return max(extrema) if kind is AggKind.MAX else min(extrema)


class _ShardUnresponsive(Exception):
    """A worker broke its pipe, died, or blew a reply deadline."""


class _Worker:
    """Parent-side handle: process, pipes, buffer, journal, recovery."""

    __slots__ = (
        "index", "process", "conn", "control", "buffer", "lock",
        "log", "replay_base", "checkpoint", "checkpoint_disabled",
        "batches_since_checkpoint", "fold", "generation",
    )

    def __init__(self, index: int):
        self.index = index
        self.process: Any = None
        self.conn: Any = None
        self.control: Any = None
        self.buffer: list[tuple[str, int, dict | None]] = []
        #: Serializes data-pipe use and revive between the router
        #: thread and the heartbeat thread.
        self.lock = threading.Lock()
        self.log: Any = None
        #: Journal seq at first spawn — a disk journal resumed from a
        #: previous router run must not replay the old run's records.
        self.replay_base = 0
        #: Latest engine checkpoint document (with ``journal_seq``).
        self.checkpoint: dict[str, Any] | None = None
        self.checkpoint_disabled = False
        self.batches_since_checkpoint = 0
        #: In-process fold lane once this shard is degraded.
        self.fold: StreamEngine | None = None
        self.generation = 0


def _pipe_writable(conn: Any, timeout: float) -> bool:
    """True when ``send`` on the connection would not block (or when
    the fd is unpollable — then let ``send`` raise the real error)."""
    try:
        return bool(select.select([], [conn], [], timeout)[1])
    except (OSError, ValueError):
        return True


def _destroy_process(worker: _Worker, timeout: float = 2.0) -> None:
    """Tear down one worker process and both pipe ends; never raises.

    Escalation ladder: close pipes (unblocks a worker stuck in recv),
    ``terminate()``, and — when SIGTERM is ignored or the worker is
    wedged in uninterruptible state — ``kill()``. Always joins so no
    zombie is left, then closes the Process handle to release its fds.
    """
    for pipe in (worker.conn, worker.control):
        if pipe is not None:
            try:
                pipe.close()
            except OSError:
                pass
    worker.conn = None
    worker.control = None
    process = worker.process
    worker.process = None
    if process is None:
        return
    try:
        if process.is_alive():
            process.terminate()
            process.join(timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout)
        else:
            process.join(0.1)  # reap an already-dead child
    except (OSError, ValueError):
        pass
    try:
        process.close()
    except ValueError:  # still running after kill: nothing more to do
        pass


class ShardedStreamEngine:
    """Hash-partitioned multi-process variant of :class:`StreamEngine`.

    Same registration surface (``register`` / ``run`` / ``results`` /
    ``query_rows`` / ``inspect``), duck-type compatible with the admin
    server. Workers start lazily on the first ingested event, so all
    queries must be registered before ingestion begins.

    Supervision knobs (see the module docstring for the semantics):

    ``supervise``
        Master switch for heartbeats, per-shard journaling,
        checkpoints, and exact revive. Off = PR 4 behavior: a dead
        shard raises :class:`~repro.errors.EngineError`.
    ``heartbeat_interval_s`` / ``heartbeat_max_missed``
        Ping cadence and how many consecutive missed pongs mark a
        shard as wedged.
    ``restart_limit``
        Restarts granted per shard before it degrades into the local
        fold lane.
    ``send_timeout_s`` / ``overload_policy``
        Backpressure guard on data-pipe sends: ``"block"`` (restart the
        wedged worker, lossless), ``"shed_oldest"`` (drop + count), or
        ``"raise"`` (:class:`~repro.errors.OverloadError`).
    ``journal_dir``
        Directory for durable per-shard journals + checkpoints
        (``shard-NN/``); None keeps them in memory.
    ``checkpoint_every_batches``
        Worker state snapshot cadence, in delivered batches (0 never
        checkpoints; revive then replays the whole shard journal).
    """

    def __init__(
        self,
        shards: int = 2,
        batch_size: int = 256,
        vectorized: bool = False,
        registry: MetricsRegistry | None = None,
        stream_name: str = "sharded",
        start_method: str | None = None,
        supervise: bool = True,
        heartbeat_interval_s: float = 0.5,
        heartbeat_max_missed: int = 3,
        restart_limit: int = 3,
        send_timeout_s: float = 5.0,
        recv_timeout_s: float = 30.0,
        overload_policy: str = "block",
        journal_dir: str | Path | None = None,
        checkpoint_every_batches: int = 64,
        shutdown_timeout_s: float = 2.0,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if heartbeat_max_missed < 1:
            raise ValueError("heartbeat_max_missed must be at least 1")
        if restart_limit < 0:
            raise ValueError("restart_limit must be >= 0")
        if send_timeout_s <= 0 or recv_timeout_s <= 0:
            raise ValueError("send/recv timeouts must be positive")
        if checkpoint_every_batches < 0:
            raise ValueError("checkpoint_every_batches must be >= 0")
        if shutdown_timeout_s <= 0:
            raise ValueError("shutdown_timeout_s must be positive")
        if overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload_policy must be one of {OVERLOAD_POLICIES}, "
                f"got {overload_policy!r}"
            )
        self.shards = shards
        self.batch_size = batch_size
        self._vectorized = vectorized
        self.stream_name = stream_name
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self._supervise = supervise
        self._heartbeat_interval_s = heartbeat_interval_s
        self._heartbeat_max_missed = heartbeat_max_missed
        self._restart_limit = restart_limit
        self._send_timeout_s = send_timeout_s
        self._recv_timeout_s = recv_timeout_s
        self._overload_policy = overload_policy
        self._journal_dir = (
            None if journal_dir is None else Path(journal_dir)
        )
        self._checkpoint_every = checkpoint_every_batches
        self._shutdown_timeout_s = shutdown_timeout_s
        self.metrics = EngineMetrics()
        self.obs_registry = resolve_registry(registry)
        obs = self.obs_registry
        self._m_restarts = [
            obs.counter(
                "shard_restarts_total",
                "worker processes restarted by the shard supervisor",
                shard=str(index),
            )
            for index in range(shards)
        ]
        self._m_shard_failures = [
            obs.counter(
                "shard_failures_total",
                "shard failures observed (crash, hang, poisoned state)",
                shard=str(index),
            )
            for index in range(shards)
        ]
        self._g_degraded = obs.gauge(
            "shards_degraded",
            "shards folded into the local lane after exhausting restarts",
        )
        self._m_backpressure = obs.counter(
            "shard_backpressure_total",
            "data-pipe sends that hit the send timeout",
        )
        self._m_shed = obs.counter(
            "shard_shed_events_total",
            "events dropped by the shed_oldest overload policy",
        )
        self._m_checkpoints = obs.counter(
            "shard_checkpoints_total", "per-shard worker checkpoints taken"
        )
        #: All registrations, in order: name -> (query, sinks).
        self._specs: dict[str, tuple[Query, list[ResultSink]]] = {}
        #: The partition attribute all sharded queries agree on.
        self.shard_attribute: str | None = None
        self._sharded: dict[str, Query] = {}
        #: Relevant types of the sharded queries (IPC filter).
        self._sharded_types: frozenset[str] = frozenset()
        #: Non-partitionable queries run here, in-process.
        self._local = StreamEngine(
            routed=True,
            vectorized=vectorized,
            registry=registry,
            stream_name=f"{stream_name}-local",
        )
        self._local_names: list[str] = []
        self._workers: list[_Worker] = []
        self._worker_specs: list[tuple[str, Query]] = []
        self._shard_health = [
            ShardHealth(shard=index) for index in range(shards)
        ]
        #: Indices of shards folded into the local process.
        self.degraded_shards: set[int] = set()
        #: Events dropped under the shed_oldest overload policy.
        self.shed_events = 0
        self._monitor: HeartbeatSupervisor | None = None
        self._started = False
        self._closed = False
        self._clock_ms: int | None = None

    # ----- registration ------------------------------------------------------

    def register(
        self,
        query: Query,
        *sinks: ResultSink,
        name: str | None = None,
    ) -> None:
        """Register a query; must happen before the first event."""
        if self._started:
            raise EngineError(
                "register all queries before ingesting events; the worker "
                "processes are built from the registration set"
            )
        name = name or query.name or f"q{len(self._specs)}"
        if name in self._specs:
            raise EngineError(f"duplicate query name {name!r}")
        try:
            attributes = partition_attributes(query)
        except QueryError:
            attributes = ()
        leading = attributes[0] if attributes else None
        if leading is not None and self.shard_attribute is None:
            self.shard_attribute = leading
        self._specs[name] = (query, list(sinks))
        if leading is not None and leading == self.shard_attribute:
            self._sharded[name] = query
            self._sharded_types = self._sharded_types | frozenset(
                query.relevant_types
            )
        else:
            self._local.register(query, *sinks, name=name)
            self._local_names.append(name)

    # ----- worker lifecycle --------------------------------------------------

    def _spawn_into(self, worker: _Worker) -> None:
        """(Re)create one worker process with fresh data+control pipes."""
        data_parent, data_child = self._ctx.Pipe(duplex=True)
        ctl_parent, ctl_child = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker,
            args=(data_child, ctl_child, self._worker_specs,
                  self._vectorized),
            daemon=True,
        )
        process.start()
        data_child.close()
        ctl_child.close()
        worker.process = process
        worker.conn = data_parent
        worker.control = ctl_parent

    def _start(self) -> None:
        self._worker_specs = list(self._sharded.items())
        for index in range(self.shards):
            worker = _Worker(index)
            if self._supervise:
                directory = (
                    None
                    if self._journal_dir is None
                    else self._journal_dir / f"shard-{index:02d}"
                )
                worker.log = open_shard_log(
                    directory, registry=self.obs_registry
                )
                worker.replay_base = worker.log.next_seq
            self._spawn_into(worker)
            self._workers.append(worker)
        if self._supervise and self._sharded:
            self._monitor = HeartbeatSupervisor(
                self.shards,
                self._ping_shard,
                self._revive,
                interval_s=self._heartbeat_interval_s,
                max_missed=self._heartbeat_max_missed,
                registry=self.obs_registry,
                health=self._shard_health,
            )
            self._monitor.start()
        self._started = True

    def close(self) -> None:
        """Stop workers with terminate→kill escalation; idempotent and
        exception-safe (no leaked pipe fds, no zombie processes)."""
        if self._closed:
            return
        self._closed = True
        monitor = self._monitor
        if monitor is not None:
            monitor.stop()
            self._monitor = None
        for worker in self._workers:
            acquired = worker.lock.acquire(
                timeout=self._shutdown_timeout_s + 3.0
            )
            try:
                if worker.process is not None and worker.conn is not None:
                    try:
                        worker.conn.send(("stop", None))
                        if worker.conn.poll(
                            min(1.0, self._shutdown_timeout_s)
                        ):
                            worker.conn.recv()
                    except (OSError, EOFError, BrokenPipeError):
                        pass
                _destroy_process(worker, self._shutdown_timeout_s)
                if worker.log is not None:
                    worker.log.close()
                    worker.log = None
                worker.fold = None
            finally:
                if acquired:
                    worker.lock.release()
        self._workers.clear()

    def __enter__(self) -> "ShardedStreamEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----- supervision -------------------------------------------------------

    def _ping_shard(self, index: int) -> tuple[str, Any]:
        """Heartbeat probe of one shard (called by the monitor thread).

        Never blocks behind the router: a busy per-worker lock skips
        the round rather than stalling the monitor loop.
        """
        worker = self._workers[index]
        if not worker.lock.acquire(timeout=0.05):
            return ("busy", None)
        try:
            if self._closed:
                return ("busy", None)
            if worker.fold is not None:
                return ("ok", {"degraded": True})
            return self._ping_locked(worker)
        finally:
            worker.lock.release()

    def _ping_locked(self, worker: _Worker) -> tuple[str, Any]:
        process = worker.process
        if process is None or not process.is_alive():
            return ("dead", None)
        control = worker.control
        try:
            while control.poll(0):  # drop stale pongs from missed rounds
                control.recv()
            control.send(("ping", None))
            if not control.poll(self._heartbeat_interval_s):
                return ("miss", None)
            _, payload = control.recv()
        except (OSError, EOFError, BrokenPipeError):
            return ("dead", None)
        failure = (
            payload.get("failure") if isinstance(payload, dict) else None
        )
        if failure:
            return ("failed", failure)
        return ("ok", payload)

    def _revive(self, index: int, reason: str) -> None:
        """Monitor-thread entry point: restart one unhealthy shard."""
        worker = self._workers[index]
        with worker.lock:
            if self._closed or worker.fold is not None:
                return
            # The router may have revived it while we waited for the
            # lock — a healthy pong means there is nothing left to do.
            if self._ping_locked(worker)[0] == "ok":
                return
            self._handle_failure(worker, reason)

    def _handle_failure(self, worker: _Worker, reason: str) -> None:
        """Record one shard failure and recover (lock held by caller)."""
        health = self._shard_health[worker.index]
        health.failures += 1
        health.last_failure = reason
        self._m_shard_failures[worker.index].inc()
        if not self._supervise:
            raise EngineError(f"shard {worker.index} failed: {reason}")
        self._revive_locked(worker, reason)

    def _revive_locked(self, worker: _Worker, reason: str) -> None:
        """Kill, respawn, re-seed exactly (checkpoint + journal suffix
        replay); degrade into the fold lane once restarts run out."""
        if self._closed or worker.fold is not None:
            return
        health = self._shard_health[worker.index]
        while True:
            if health.restarts >= self._restart_limit:
                self._degrade_locked(worker, reason)
                return
            health.restarts += 1
            health.alive = True
            health.missed_heartbeats = 0
            health.last_pong_at = time.monotonic()
            self._m_restarts[worker.index].inc()
            worker.generation += 1
            try:
                self._respawn_and_reseed(worker)
            except Exception as error:
                reason = f"re-seed failed: {error!r}"
                health.failures += 1
                health.last_failure = reason
                self._m_shard_failures[worker.index].inc()
                continue
            _log.warning(
                "shard_restart",
                message=(
                    f"shard {worker.index} restarted "
                    f"(generation {worker.generation}): {reason}"
                ),
                shard=worker.index,
                generation=worker.generation,
                reason=reason,
            )
            return

    def _respawn_and_reseed(self, worker: _Worker) -> None:
        _destroy_process(worker, self._shutdown_timeout_s)
        self._spawn_into(worker)
        start_seq = worker.replay_base
        if worker.checkpoint is not None:
            self._roundtrip(worker, "seed", worker.checkpoint)
            start_seq = max(
                start_seq, int(worker.checkpoint.get("journal_seq", 0))
            )
        if worker.log is None:
            return
        chunk: list[tuple[str, int, dict | None]] = []
        for record in worker.log.replay(start_seq):
            chunk.append(record)
            if len(chunk) >= self.batch_size:
                worker.conn.send(("batch", chunk))
                chunk = []
        if chunk:
            worker.conn.send(("batch", chunk))

    def _degrade_locked(self, worker: _Worker, reason: str) -> None:
        """Fold this shard's key-range into an in-process lane, seeded
        the same exact way a revive would seed a fresh worker."""
        health = self._shard_health[worker.index]
        fold = StreamEngine(
            routed=True,
            vectorized=self._vectorized,
            stream_name=f"{self.stream_name}-fold-{worker.index}",
        )
        for name, query in self._sharded.items():
            fold.register(query, name=name)
        start_seq = worker.replay_base
        if worker.checkpoint is not None:
            _apply_seed(fold, worker.checkpoint)
            start_seq = max(
                start_seq, int(worker.checkpoint.get("journal_seq", 0))
            )
        dropped = 0
        if worker.log is not None:
            chunk: list[tuple[str, int, dict | None]] = []
            for record in worker.log.replay(start_seq):
                chunk.append(record)
                if len(chunk) >= 1024:
                    dropped += _feed_fold(fold, chunk)
                    chunk = []
            if chunk:
                dropped += _feed_fold(fold, chunk)
        _destroy_process(worker, self._shutdown_timeout_s)
        worker.fold = fold
        health.degraded = True
        health.alive = False
        self.degraded_shards.add(worker.index)
        self._g_degraded.set(float(len(self.degraded_shards)))
        _log.warning(
            "shard_degraded",
            message=(
                f"shard {worker.index} degraded after {health.restarts} "
                f"restarts; its key-range now runs in-process: {reason}"
            ),
            shard=worker.index,
            restarts=health.restarts,
            replay_dropped_events=dropped,
            reason=reason,
        )

    def _roundtrip(
        self, worker: _Worker, command: str, payload: Any = None
    ) -> Any:
        """One guarded request/reply on the data pipe (lock held).

        Raises :class:`_ShardUnresponsive` on pipe death or a blown
        reply deadline, :class:`EngineError` on an ``("error", ...)``
        reply.
        """
        try:
            worker.conn.send((command, payload))
            if not worker.conn.poll(self._recv_timeout_s):
                raise _ShardUnresponsive(
                    f"no reply to {command!r} within "
                    f"{self._recv_timeout_s}s"
                )
            status, value = worker.conn.recv()
        except (OSError, EOFError, BrokenPipeError) as error:
            raise _ShardUnresponsive(repr(error)) from error
        if status != "ok":
            raise EngineError(
                f"shard {worker.index} {command} failed: {value}"
            )
        return value

    def shard_health(self) -> list[dict[str, Any]]:
        """Per-shard supervision snapshots (restarts, heartbeat age,
        degraded flag) for ``inspect()`` and the admin plane."""
        return [health.snapshot() for health in self._shard_health]

    # ----- ingestion ---------------------------------------------------------

    def process(self, event: Event) -> None:
        """Route one event: local lane always, worker lane by key."""
        if not self._started:
            self._start()
        self.metrics.events += 1
        ts = event.ts
        if self._clock_ms is None or ts > self._clock_ms:
            self._clock_ms = ts
        self._local.process(event)
        if not self._sharded:
            return
        if event.event_type not in self._sharded_types:
            # No sharded pattern reacts to this type; workers sync their
            # clocks from the watermark at collect time instead.
            return
        record = (event.event_type, ts, event.attrs or None)
        key = event.get(self.shard_attribute, _MISSING)
        if key is _MISSING:
            # Keyless (e.g. a negated type without the attribute):
            # every partition is affected — broadcast (HPC does the
            # same across its in-process partitions).
            for worker in self._workers:
                self._buffer(worker, record)
        else:
            self._buffer(self._workers[shard_of(key, self.shards)], record)

    def _buffer(
        self, worker: _Worker, record: tuple[str, int, dict | None]
    ) -> None:
        worker.buffer.append(record)
        if len(worker.buffer) >= self.batch_size:
            self._flush_worker(worker)

    def _flush_worker(self, worker: _Worker) -> None:
        buffer = worker.buffer
        if not buffer:
            return
        worker.buffer = []
        with worker.lock:
            self._send_records(worker, buffer)

    def _send_records(
        self,
        worker: _Worker,
        records: list[tuple[str, int, dict | None]],
        journal: bool = True,
    ) -> None:
        """Deliver one batch with the backpressure guard (lock held).

        The journal-on-successful-send invariant: a batch is appended
        to the shard journal exactly when the worker accepted it, so
        checkpoint + journal-suffix replay reconstructs precisely what
        the worker had consumed.
        """
        if worker.fold is not None:
            self._fold_feed(worker, records)
            return
        attempts = 0
        while True:
            failed = None
            try:
                if _pipe_writable(worker.conn, self._send_timeout_s):
                    worker.conn.send(("batch", records))
                    break
                self._m_backpressure.inc()
                if self._overload_policy == "raise":
                    raise OverloadError(
                        f"shard {worker.index} pipe not writable within "
                        f"{self._send_timeout_s}s"
                    )
                if self._overload_policy == "shed_oldest":
                    self.shed_events += len(records)
                    self._m_shed.inc(len(records))
                    _log.warning(
                        "shard_shed",
                        message=(
                            f"shed {len(records)} events to stalled "
                            f"shard {worker.index} (shed_oldest policy)"
                        ),
                        shard=worker.index,
                        events=len(records),
                    )
                    return  # dropped, never journaled
                # "block" policy: a restart both unwedges the pipe and
                # preserves exactness (checkpoint + replay + redeliver).
                failed = "pipe stalled beyond the send timeout"
            except (OSError, EOFError, BrokenPipeError) as error:
                failed = f"send failed: {error!r}"
            attempts += 1
            if attempts > self._restart_limit + 1:
                raise EngineError(
                    f"shard {worker.index}: could not deliver a batch "
                    f"after {attempts} attempts ({failed})"
                )
            self._handle_failure(worker, failed)
            if worker.fold is not None:
                self._fold_feed(worker, records)
                return
        if journal and worker.log is not None:
            worker.log.append(records)
            worker.batches_since_checkpoint += 1
            if (
                self._checkpoint_every
                and not worker.checkpoint_disabled
                and worker.batches_since_checkpoint
                >= self._checkpoint_every
            ):
                self._checkpoint_locked(worker)

    def _checkpoint_locked(self, worker: _Worker) -> None:
        """Snapshot one worker's engine state and prune its journal."""
        try:
            state = self._roundtrip(worker, "checkpoint", None)
        except _ShardUnresponsive as error:
            self._handle_failure(worker, f"checkpoint failed: {error}")
            return
        except EngineError as error:
            # Deterministic serialization problem: a restart would not
            # fix it, so keep the worker and stop asking.
            worker.checkpoint_disabled = True
            _log.warning(
                "shard_checkpoint_disabled",
                message=(
                    f"shard {worker.index} cannot checkpoint "
                    f"({error}); revive will replay the full journal"
                ),
                shard=worker.index,
            )
            return
        state["journal_seq"] = worker.log.next_seq
        worker.checkpoint = state
        worker.log.save_checkpoint(state)
        worker.log.truncate_to(state["journal_seq"])
        worker.batches_since_checkpoint = 0
        self._m_checkpoints.inc()

    def _fold_feed(
        self,
        worker: _Worker,
        records: list[tuple[str, int, dict | None]],
    ) -> None:
        dropped = _feed_fold(worker.fold, records)
        if dropped:
            _log.warning(
                "fold_dropped",
                message=(
                    f"fold lane of degraded shard {worker.index} "
                    f"dropped a poison batch of {dropped} events"
                ),
                shard=worker.index,
                events=dropped,
            )

    def flush(self) -> None:
        """Push every buffered event down to its worker."""
        for worker in self._workers:
            self._flush_worker(worker)

    def run(self, stream: Iterable[Event]) -> int:
        """Drain a stream; deliver merged finals to sharded-query sinks."""
        started = time.perf_counter()
        processed = 0
        for event in stream:
            self.process(event)
            processed += 1
        merged = self._merged_results()
        ts = int(self._clock_ms or 0)
        for name, value in merged.items():
            _, sinks = self._specs[name]
            if not sinks:
                continue
            output = Output(name, ts, value)
            for sink in sinks:
                try:
                    sink.emit(output)
                except Exception:
                    self.metrics.sink_errors += 1
        self.metrics.elapsed_s += time.perf_counter() - started
        return processed

    # ----- results -----------------------------------------------------------

    def _request(
        self, worker: _Worker, command: str, payload: Any = None
    ) -> Any:
        """One request/reply with revive-and-retry on failure."""
        with worker.lock:
            failure = "unknown"
            for _ in range(self._restart_limit + 2):
                if worker.fold is not None:
                    return self._fold_request(worker, command, payload)
                try:
                    return self._roundtrip(worker, command, payload)
                except Exception as error:
                    failure = str(error) or repr(error)
                    self._handle_failure(
                        worker, f"{command} failed: {failure}"
                    )
            raise EngineError(
                f"shard {worker.index}: {command} kept failing "
                f"({failure})"
            )

    def _fold_request(
        self, worker: _Worker, command: str, payload: Any
    ) -> Any:
        """Serve a worker request from a degraded shard's fold lane."""
        fold = worker.fold
        if command == "collect":
            fold.advance_clock(int(payload))
            return {
                name: _partial_of(fold.executor_of(name))
                for name in self._sharded
            }
        if command == "rows":
            return fold.query_rows()
        if command == "inspect":
            state = fold.inspect()
            state["degraded"] = True
            return state
        if command == "state":
            from repro.obs.inspect import state_of

            return state_of(fold, payload)
        raise EngineError(
            f"command {command!r} is not served by a degraded shard"
        )

    def _collect(self, command: str, payload: Any = None) -> list[Any]:
        """Round-trip one request to every worker (flushes first)."""
        if not self._started:
            self._start()
        self.flush()
        return [
            self._request(worker, command, payload)
            for worker in self._workers
        ]

    def _merged_results(self) -> dict[str, Any]:
        if not self._sharded:
            return {}
        watermark = int(self._clock_ms or 0)
        partials_by_shard = self._collect("collect", watermark)
        return {
            name: _merge_partials(
                query,
                [partials[name] for partials in partials_by_shard],
            )
            for name, query in self._sharded.items()
        }

    def results(self) -> dict[str, Any]:
        """Merged aggregates of every query, in registration order."""
        merged = self._merged_results()
        local = self._local.results()
        return {
            name: (merged[name] if name in merged else local[name])
            for name in self._specs
        }

    def result(self, name: str) -> Any:
        if name not in self._specs:
            raise EngineError(f"unknown query {name!r}")
        if name in self._sharded:
            return self._merged_results()[name]
        return self._local.result(name)

    # ----- introspection -----------------------------------------------------

    @property
    def query_names(self) -> list[str]:
        return list(self._specs)

    @property
    def watermark_ms(self) -> float | None:
        return None if self._clock_ms is None else float(self._clock_ms)

    def query_rows(self) -> list[dict[str, Any]]:
        """Per-query cost rows with shard totals folded together.

        Additive fields (events routed, counter updates, live objects,
        partitions…) sum across the shards that hold a piece of the
        query; per-process latency quantiles are dropped rather than
        averaged wrongly.
        """
        rows = {row["query"]: row for row in self._local.query_rows()}
        if self._sharded and self._started:
            for shard_rows in self._collect("rows"):
                for row in shard_rows:
                    name = row["query"]
                    merged = rows.get(name)
                    if merged is None:
                        rows[name] = {
                            key: value
                            for key, value in row.items()
                            if key not in ("latency_us_p50", "latency_us_p99")
                        }
                        rows[name]["shards"] = 1
                        continue
                    merged["shards"] = merged.get("shards", 1) + 1
                    for key, value in row.items():
                        if key in _NON_ADDITIVE_ROW_KEYS:
                            continue
                        if isinstance(value, (int, float)):
                            merged[key] = merged.get(key, 0) + value
        return [rows[name] for name in self._specs if name in rows]

    def refresh_cost_metrics(self) -> None:
        self._local.refresh_cost_metrics()

    def executor_of(self, name: str) -> Any:
        """Local-lane executors only; sharded state lives in workers."""
        if name in self._local_names:
            return self._local.executor_of(name)
        raise EngineError(
            f"query {name!r} is sharded; its executors live in worker "
            f"processes — see inspect()"
        )

    def state_of(self, query_id: str) -> dict[str, Any] | None:
        """Structured state for one query (admin ``/queries/<id>/state``).

        Local-lane queries dump their in-process executor; sharded
        queries return every worker's piece side by side.
        """
        if query_id not in self._specs:
            return None
        if query_id in self._local_names:
            from repro.obs.inspect import state_of

            return state_of(self._local, query_id)
        if not self._started:
            return {"kind": "sharded", "query": query_id, "shards": []}
        return {
            "kind": "sharded",
            "query": query_id,
            "shards": self._collect("state", query_id),
        }

    def inspect(self) -> dict[str, Any]:
        workers: list[Any] = []
        if self._sharded and self._started:
            workers = self._collect("inspect")
        return {
            "kind": "sharded",
            "stream": self.stream_name,
            "shards": self.shards,
            "batch_size": self.batch_size,
            "shard_attribute": self.shard_attribute,
            "events": self.metrics.events,
            "watermark_ms": self.watermark_ms,
            "sharded_queries": list(self._sharded),
            "local_queries": list(self._local_names),
            "local": self._local.inspect(),
            "workers": workers,
            "supervised": self._supervise,
            "degraded_shards": sorted(self.degraded_shards),
            "shed_events": self.shed_events,
            "shard_health": self.shard_health(),
        }


def _feed_fold(
    fold: StreamEngine, records: list[tuple[str, int, dict | None]]
) -> int:
    """Feed replayed/live records to a fold lane one by one; a poison
    record is dropped (and counted) rather than wedging the degraded
    shard forever or taking its whole batch down with it."""
    dropped = 0
    for event_type, ts, attrs in records:
        try:
            fold.process(Event(event_type, ts, attrs))
        except Exception:
            dropped += 1
    return dropped


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
