"""Multi-core execution: hash-partitioned worker engines, supervised.

:class:`ShardedStreamEngine` runs one full :class:`StreamEngine` per
worker *process*, each owning a hash-partition of the stream keyed by a
partition attribute. The legality argument is the paper's own (HPC,
Sec. 3.4): a query with an equivalence chain or GROUP BY evaluates
independently per key, and because a hash assigns every key to exactly
one shard, per-shard results compose exactly —

* COUNT / SUM add across shards;
* AVG folds ``count_and_wsum()`` pairs (counts and weighted sums add;
  dividing once at the end loses nothing);
* MAX / MIN take the extremum of per-shard extrema;
* GROUP BY is a dict union: group values never straddle shards because
  the shard key *is* (or leads) the group key.

Queries that cannot be partitioned on the chosen attribute — no
equivalence chain or GROUP BY, or one on a different attribute — run on
a **local lane**: an in-process routed :class:`StreamEngine` that sees
every event, so their semantics (including per-TRIG sink emissions) are
exactly those of the single-process engine. Sharded queries deliver
their merged result to sinks once per :meth:`run` (per-TRIG emission
order is undefined across processes, so it is not simulated).

The shard hash must agree across processes, so it is
``zlib.crc32(repr(key))`` — Python's builtin ``hash`` is randomized
per process and would route the same key differently in parent and
tests.

Fault tolerance (``supervise=True``, the default) extends PR 2's
single-process guarantees to this path:

* every worker owns a **control pipe** besides its data pipe and
  answers heartbeat pings on it; a
  :class:`~repro.resilience.shard_supervisor.HeartbeatSupervisor`
  thread revives shards that die, wedge, or report a poisoned engine;
* every batch successfully handed to a worker is recorded in that
  shard's journal (in memory by default, on disk under
  ``journal_dir/shard-NN`` — reusing
  :class:`~repro.resilience.journal.EventJournal`); workers snapshot
  their engine state every ``checkpoint_every_batches`` deliveries, so
  a revive is *exact*: respawn, re-seed from the checkpoint, replay the
  journal suffix. Merged results stay bit-identical to the
  single-process reference even across a ``SIGKILL`` mid-stream;
* data-pipe sends are **timeout-guarded** (a slow shard can no longer
  wedge the router): on a stall the ``overload_policy`` decides —
  ``"block"`` restarts the wedged worker and redelivers (lossless),
  ``"shed_oldest"`` drops the stalled batch and counts it,
  ``"raise"`` raises :class:`~repro.errors.OverloadError` — mirroring
  the DeadLetterQueue policies;
* a shard that exhausts ``restart_limit`` is **degraded**: its
  key-range folds into an in-process lane seeded the same exact way,
  and the engine reports it via ``inspect()``/``shard_health()`` and
  the admin ``/healthz`` (503).

When NOT to shard: workloads dominated by queries without a partition
key (everything lands on the local lane plus IPC overhead), tiny
streams (worker startup costs more than it saves), or single-core
hosts (the workers time-slice one CPU and IPC is pure overhead).

Router durability (PR 7) closes the last single point of failure:

* the wire protocol is extracted behind
  :class:`~repro.engine.transport.ShardTransport` — ``transport="pipe"``
  keeps today's fork+two-pipe workers, ``transport="tcp"`` frames the
  same messages over TCP to ``python -m repro.shard_worker`` processes
  that may live on other hosts (``worker_addresses=``);
* with a router log attached (:class:`~repro.resilience.router_recovery
  .RouterLog`), every ingested event is appended to a partitioned
  ingest-lane WAL *before* routing, and the router periodically
  checkpoints its own progress (local-lane state, per-shard delivered
  watermarks, lane offsets). After a router SIGKILL,
  :func:`~repro.resilience.router_recovery.recover_router` rebuilds the
  engine, re-seeds every worker from its own checkpoint+journal, and
  replays the lane suffix with per-shard count-skip so nothing is
  delivered twice — merged results stay bit-identical;
* workers deduplicate redelivered batches themselves: every journaled
  batch carries its base journal sequence, and a worker that was
  already seeded past it skips the overlap;
* a worker whose router vanishes self-terminates: pipe/socket EOF ends
  the session immediately, and ``orphan_timeout_s`` of total silence
  (no data, no heartbeats) ends it even when the transport half-stays
  open.

Elastic membership (PR 10) makes worker *placement* dynamic without
touching the math that makes merges exact:

* the **partition count stays fixed** for the life of the engine —
  ``shard_of`` keeps assigning every key to the same partition — but
  each partition's *owner* is looked up in a versioned routing table
  (``partition index → member id``) fed by a
  :class:`~repro.resilience.membership.WorkerRegistry` (static
  ``--workers-file`` with hot-reload, or worker self-registration);
* joins, graceful leaves, and deaths reported by the registry are
  consumed by :meth:`ShardedStreamEngine.poll_membership` (wired into
  the heartbeat loop) and turn into **live partition migrations**:
  quiesce the partition at a batch boundary, checkpoint the source
  worker, flip the routing entry, spawn on the new owner, re-seed from
  checkpoint + journal suffix (the stock revive recipe, so worker-side
  count-skip dedup keeps exactly-once intact). Merged results stay
  bit-identical across any membership change mid-stream;
* a member that cannot even be dialed is reported dead back to the
  registry, and every partition it owned is re-placed the same exact
  way — SIGKILLing a whole worker host behaves like ``restart_limit``
  worth of ordinary revives, not data loss;
* the routing table (version + owners) rides the router checkpoint, so
  :func:`~repro.resilience.router_recovery.recover_router` restores
  placement along with progress.
"""

from __future__ import annotations

import multiprocessing as mp
import select
import signal
import threading
import time
import zlib
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import (
    EngineError,
    OverloadError,
    QueryError,
    TransportError,
)
from repro.events.batch import EventBatch
from repro.events.event import Event
from repro.core.checkpoint import restore as _executor_restore
from repro.core.hpc import partition_attributes
from repro.engine.engine import StreamEngine
from repro.engine.metrics import EngineMetrics
from repro.engine.sinks import Output, ResultSink
from repro.engine.transport import (
    CHANNEL_ERRORS,
    ShardTransport,
    WorkerConfig,
    build_transport,
    wait_readable,
)
from repro.obs.funnel import (
    NULL_FUNNEL,
    FunnelRecorder,
    resolve_funnel,
)
from repro.obs.logging import get_logger
from repro.obs.profile import SamplingProfiler, collapsed_text
from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    SnapshotMerger,
    registry_state,
    resolve_registry,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Stage,
    TraceRecorder,
    resolve_tracer,
    stitch_spans,
)
from repro.query.ast import AggKind, Query
from repro.query.parser import parse_query
from repro.resilience.checkpointer import (
    engine_state,
    load_latest_checkpoint,
)
from repro.resilience.membership import (
    DEAD,
    JOIN,
    LEAVE,
    MemberInfo,
    WorkerRegistry,
)
from repro.resilience.shard_supervisor import (
    HeartbeatSupervisor,
    ShardHealth,
    open_shard_log,
)

_log = get_logger("sharded")

OVERLOAD_POLICIES = ("block", "shed_oldest", "raise")

#: query_rows() fields that are per-process distributions, not totals —
#: summing them across shards would be meaningless.
_NON_ADDITIVE_ROW_KEYS = frozenset(
    {"query", "runtime_kind", "latency_us_p50", "latency_us_p99"}
)


def shard_of(key: Any, shards: int) -> int:
    """Deterministic cross-process shard assignment for one key."""
    return zlib.crc32(repr(key).encode("utf-8")) % shards


def _apply_seed(engine: StreamEngine, state: dict[str, Any]) -> None:
    """Restore every registration's executor from an engine checkpoint
    document in place (the registrations already exist; routing keeps
    pointing at the registration objects, whose ``executor`` attribute
    is looked up at dispatch time)."""
    for entry in state.get("registrations", []):
        registration = engine._registrations.get(entry["name"])
        if registration is None:
            continue
        registration.executor = _executor_restore(
            registration.executor.query,
            entry["state"],
            vectorized=bool(entry.get("vectorized", False)),
        )


class _SpanOutbox:
    """Worker-side retransmit buffer for trace shipments.

    Span drains used to be fire-and-forget: a shipment riding a reply
    that died with the pipe was gone (the residual loss PR 6
    documented). The outbox closes it — every drain of the worker
    tracer becomes a numbered batch that rides *every* shipment until
    the router acknowledges it (the ack piggybacks on heartbeat pings
    as ``("ping", {"ack": <seq>})``), so a transport blip only delays
    spans, it no longer loses them. The router deduplicates by batch
    sequence; the deque bound caps worst-case memory when a router
    never acks (an orphaned worker is exiting anyway)."""

    __slots__ = ("_batches", "_next")

    def __init__(self, capacity: int = 64):
        self._batches: deque[tuple[int, list[tuple]]] = deque(
            maxlen=capacity
        )
        self._next = 1

    def drain(self, tracer: TraceRecorder) -> None:
        if not tracer.enabled or not len(tracer):
            return
        spans = tracer.spans()
        tracer.clear()
        self._batches.append(
            (
                self._next,
                [
                    (s.ts, s.stage, s.event_type, s.detail,
                     s.trace_id, s.wall)
                    for s in spans
                ],
            )
        )
        self._next += 1

    def pending(self) -> list[tuple[int, list[tuple]]]:
        return list(self._batches)

    def ack(self, upto: int) -> None:
        while self._batches and self._batches[0][0] <= upto:
            self._batches.popleft()


def _worker_obs_payload(
    engine: StreamEngine,
    registry: MetricsRegistry,
    tracer: TraceRecorder,
    profiler: SamplingProfiler | None,
    outbox: _SpanOutbox | None = None,
) -> dict[str, Any]:
    """One observability shipment: metrics snapshot, trace spans,
    cumulative profile counts, and this process's wall clock (the
    router's skew anchor). Metric snapshots are absolute values —
    idempotent on the router side. With an ``outbox``, spans ship as
    acknowledged batches ``(seq, [span, ...])`` that are retransmitted
    until the router acks them; without one (legacy callers/tests),
    spans drain exactly once as a flat list and rely on
    ``_salvage_reply`` alone."""
    payload: dict[str, Any] = {"wall": time.time()}
    if registry.enabled:
        try:
            engine.refresh_cost_metrics()
        except Exception:
            pass  # cost rows are best-effort; ship what we have
        payload["metrics"] = registry_state(registry)
    if outbox is not None:
        outbox.drain(tracer)
        batches = outbox.pending()
        if batches:
            payload["spans"] = batches
    elif tracer.enabled and len(tracer):
        spans = tracer.spans()
        tracer.clear()
        payload["spans"] = [
            (s.ts, s.stage, s.event_type, s.detail, s.trace_id, s.wall)
            for s in spans
        ]
    if profiler is not None:
        payload["profile"] = profiler.counts()
    return payload


def _worker_obs_setup(
    obs: dict[str, Any],
) -> tuple[MetricsRegistry, TraceRecorder, SamplingProfiler | None]:
    """Build one worker's own registry/tracer/profiler from the obs
    config document (shared by the forked and the networked worker).

    Funnel instrumentation rides the same registry: ``obs["funnel"]``
    forces a live registry so the per-query stage counters ship with
    the ordinary metric snapshots and merge router-side.
    """
    registry = (
        MetricsRegistry()
        if obs.get("metrics") or obs.get("funnel")
        else NULL_REGISTRY
    )
    tracer = (
        TraceRecorder(capacity=int(obs.get("trace_capacity", 512)))
        if obs.get("trace")
        else NULL_TRACER
    )
    profiler: SamplingProfiler | None = None
    if obs.get("profile"):
        profiler = SamplingProfiler(
            interval_s=float(obs.get("profile_interval_s", 0.01))
        )
        profiler.start()
    return registry, tracer, profiler


def _build_worker_engine(
    specs: list[tuple[str, Any]],
    vectorized: bool,
    index: int,
    registry: MetricsRegistry,
    tracer: TraceRecorder,
    funnel: FunnelRecorder | None = None,
) -> tuple[StreamEngine, dict[str, Any]]:
    """One worker's routed engine over the registration set.

    Specs arrive as ``(name, query_text)`` pairs — query text is the
    transport-neutral form (``str(query)`` round-trips through the
    parser, the same property engine checkpoints rely on) — but
    in-process callers may still pass :class:`Query` objects."""
    engine = StreamEngine(
        routed=True,
        vectorized=vectorized,
        registry=registry,
        trace=tracer,
        funnel=funnel if funnel is not None else NULL_FUNNEL,
        stream_name=f"shard-{index}",
    )
    executors = {}
    for name, query in specs:
        if isinstance(query, str):
            query = parse_query(query, name=name)
        executors[name] = engine.register(query, name=name)
    return engine, executors


def _shard_worker(
    conn: Any,
    control: Any,
    specs: list[tuple[str, Any]],
    vectorized: bool,
    index: int = 0,
    obs: dict[str, Any] | None = None,
    orphan_timeout_s: float | None = None,
) -> None:
    """Forked-worker entry point: build the engine, run the loop.

    The worker builds its *own* registry/tracer from the ``obs`` config
    rather than resolving the process default: under the fork start
    method the child inherits the router's installed default registry,
    and writing into that copy would silently shadow the router's
    series instead of shipping. The networked worker
    (:mod:`repro.shard_worker`) reuses the same loop over framed TCP
    channels.
    """
    obs = obs or {}
    registry, tracer, profiler = _worker_obs_setup(obs)
    funnel = FunnelRecorder(registry) if obs.get("funnel") else NULL_FUNNEL
    engine, executors = _build_worker_engine(
        specs, vectorized, index, registry, tracer, funnel=funnel
    )
    try:
        _worker_loop(
            conn, control, engine, executors, registry, tracer,
            profiler, index=index, orphan_timeout_s=orphan_timeout_s,
        )
    finally:
        if profiler is not None:
            profiler.stop()


def _worker_loop(
    conn: Any,
    control: Any,
    engine: StreamEngine,
    executors: dict[str, Any],
    registry: MetricsRegistry,
    tracer: TraceRecorder,
    profiler: SamplingProfiler | None,
    index: int = 0,
    orphan_timeout_s: float | None = None,
) -> str:
    """Worker loop: a routed StreamEngine over one hash-partition.

    Two duplex channels (pipe or framed TCP), multiplexed with
    :func:`~repro.engine.transport.wait_readable` so heartbeats are
    answered even while data queues up. Returns why it stopped:
    ``"stop"`` (router shut down), ``"eof"`` (transport closed), or
    ``"orphan"`` (``orphan_timeout_s`` of total silence — no batches,
    no heartbeats — so the router is presumed gone and the worker
    exits instead of lingering).

    Data-channel protocol (request, reply):

    * ``("batch", [(type, ts, attrs), ...])`` — ingest; no reply (the
      channel's buffer provides natural backpressure via ``send``). A
      traced or journaled batch arrives as ``{"r": records, "t":
      [(offset, trace_id), ...], "q": base_seq}``: the worker stamps a
      ``shard_ingest`` span per traced record, and ``q`` — the shard-
      journal sequence of the first record — drives worker-side
      dedup: records below the worker's applied watermark (set by the
      last seed) are skipped, so a recovering router may redeliver
      conservatively and never double-counts.
    * ``("collect", watermark_ms)`` — advance clocks to the global
      watermark, reply ``("ok", {"partials": {name: partial}, "obs":
      ...})`` with composable partial results (see :func:`_partial_of`)
      plus a fresh observability shipment.
    * ``("obs", None)`` — reply ``("ok", obs_payload)``: the scrape-
      time pull of metrics/spans/profile when heartbeats are off or
      stale.
    * ``("seed", engine_checkpoint)`` — restore every executor from a
      checkpoint document (revive path), reply ok. The checkpoint's
      ``journal_seq`` becomes the dedup watermark.
    * ``("checkpoint", None)`` — reply ``("ok", engine_state(...))``.
    * ``("rows"/"inspect"/"state", ...)`` — ops-plane snapshots.
    * ``("hang", seconds)`` — fault injection: sleep on the data lane
      so the pipe backs up (heartbeats keep flowing).
    * ``("stop", None)`` — reply and exit.

    Control-channel protocol: ``("ping", {"ack": n})`` → ``("pong",
    {"events", "failure", "obs"})`` — every heartbeat piggybacks an
    observability shipment, and the ping's ``ack`` releases span
    batches the router has safely ingested (see :class:`_SpanOutbox`);
    ``("stall", s)`` / ``("stall_hard", s)`` — fault injection: go
    fully unresponsive (``stall_hard`` also ignores SIGTERM, to
    exercise the router's kill escalation).

    A batch that raises poisons the engine: the failure string rides
    every subsequent pong and the next collect replies ``("error",
    ...)`` — either way the supervisor restarts this process.
    """
    outbox = _SpanOutbox()
    spec_names = list(executors)
    failure: str | None = None
    #: Shard-journal watermark of applied records (dedup cursor).
    applied_seq = 0
    deadline = (
        time.monotonic() + orphan_timeout_s if orphan_timeout_s else None
    )
    while True:
        timeout = None
        if deadline is not None:
            timeout = max(0.0, deadline - time.monotonic())
        try:
            ready = wait_readable([conn, control], timeout)
        except OSError:
            return "eof"
        if not ready:
            if deadline is not None and time.monotonic() >= deadline:
                return "orphan"
            continue
        if deadline is not None:
            deadline = time.monotonic() + orphan_timeout_s
        if control in ready:
            try:
                command, payload = control.recv()
            except CHANNEL_ERRORS:
                return "eof"
            try:
                if command == "ping":
                    if isinstance(payload, dict):
                        ack = payload.get("ack")
                        if ack:
                            outbox.ack(int(ack))
                    control.send(
                        (
                            "pong",
                            {
                                "events": engine.metrics.events,
                                "failure": failure,
                                "obs": _worker_obs_payload(
                                    engine, registry, tracer, profiler,
                                    outbox,
                                ),
                            },
                        )
                    )
                elif command == "stall":
                    time.sleep(float(payload))
                elif command == "stall_hard":
                    signal.signal(signal.SIGTERM, signal.SIG_IGN)
                    time.sleep(float(payload))
            except CHANNEL_ERRORS:
                return "eof"
            continue
        try:
            command, payload = conn.recv()
        except CHANNEL_ERRORS:
            return "eof"
        if command == "batch":
            if isinstance(payload, dict) and "c" in payload:
                # Columnar flat buffer: decode straight into an
                # EventBatch and feed the worker engine's columnar
                # lane. The dedup cursor advances by the record count
                # exactly as it would for the plain-record shape.
                base = payload.get("q")
                total = int(payload.get("n", 0))
                skip = 0
                if base is not None:
                    skip = max(0, min(total, applied_seq - base))
                    applied_seq = max(applied_seq, base + total)
                if failure is not None:
                    continue  # poisoned: drain silently until restarted
                try:
                    cbatch = EventBatch.from_wire(payload["c"])
                    if skip:
                        cbatch = cbatch.islice(skip, len(cbatch))
                    if len(cbatch):
                        # The router already enforced stream order;
                        # shard-local subsequences inherit it.
                        engine.process_event_batch(
                            cbatch, enforce_order=False
                        )
                except Exception as error:
                    failure = f"{type(error).__name__}: {error}"
                continue
            traced: Any = ()
            base = None
            if isinstance(payload, dict):
                records = payload["r"]
                traced = payload.get("t", ())
                base = payload.get("q")
            else:
                records = payload
            if base is not None:
                # Worker-side dedup of redelivered (lane, seq) pairs:
                # a recovering router replays conservatively; records
                # already folded in by the seed are dropped here.
                skip = max(0, min(len(records), applied_seq - base))
                applied_seq = max(applied_seq, base + len(records))
                if skip:
                    records = records[skip:]
                    traced = [
                        (offset - skip, trace_id)
                        for offset, trace_id in traced
                        if offset >= skip
                    ]
                    if not records:
                        continue
            if tracer.enabled and traced:
                now = time.time()
                for offset, trace_id in traced:
                    # A corrupt offset must degrade to a missing
                    # span, never crash the worker main loop.
                    try:
                        if not 0 <= offset < len(records):
                            continue
                        rtype, rts, _ = records[offset]
                    except (TypeError, ValueError):
                        continue
                    tracer.record(
                        Stage.SHARD_INGEST,
                        rts,
                        rtype,
                        f"shard={index}",
                        trace_id=trace_id,
                        wall=now,
                    )
            if failure is not None:
                continue  # poisoned: drain silently until restarted
            try:
                engine.process_batch(
                    [Event(t, ts, attrs) for t, ts, attrs in records]
                )
            except Exception as error:  # reported via pong + collect
                failure = f"{type(error).__name__}: {error}"
        elif command == "collect":
            if failure is not None:
                conn.send(("error", failure))
                return "stop"
            try:
                engine.advance_clock(int(payload))
                partials = {
                    name: _partial_of(executor)
                    for name, executor in executors.items()
                }
                conn.send(
                    (
                        "ok",
                        {
                            "partials": partials,
                            "obs": _worker_obs_payload(
                                engine, registry, tracer, profiler,
                                outbox,
                            ),
                        },
                    )
                )
            except Exception as error:
                conn.send(("error", f"{type(error).__name__}: {error}"))
                return "stop"
        elif command == "obs":
            conn.send(
                ("ok", _worker_obs_payload(engine, registry, tracer,
                                           profiler, outbox))
            )
        elif command == "seed":
            try:
                _apply_seed(engine, payload)
                executors = {
                    name: engine._registrations[name].executor
                    for name in spec_names
                }
                applied_seq = int(payload.get("journal_seq", 0) or 0)
                failure = None
                conn.send(("ok", None))
            except Exception as error:
                conn.send(("error", f"{type(error).__name__}: {error}"))
                return "stop"
        elif command == "checkpoint":
            try:
                conn.send(("ok", engine_state(engine)))
            except Exception as error:
                conn.send(("error", f"{type(error).__name__}: {error}"))
        elif command == "rows":
            conn.send(("ok", engine.query_rows()))
        elif command == "inspect":
            conn.send(("ok", engine.inspect()))
        elif command == "state":
            from repro.obs.inspect import state_of

            conn.send(("ok", state_of(engine, payload)))
        elif command == "hang":
            time.sleep(float(payload))
        elif command == "stop":
            conn.send(("ok", engine.metrics.events))
            return "stop"


def _partial_of(executor: Any) -> Any:
    """One shard's composable partial result for one query.

    AVG ships ``(count, wsum)`` pairs — scalar or per-group — because
    per-shard averages do not compose; everything else ships its plain
    result.
    """
    query = executor.query
    if query.aggregate.kind is AggKind.AVG:
        if query.group_by is not None:
            return executor.group_count_and_wsum()
        return executor.count_and_wsum()
    return executor.result()


def _merge_partials(query: Query, partials: list[Any]) -> Any:
    """Fold per-shard partials into the single-process result."""
    kind = query.aggregate.kind
    if query.group_by is not None:
        if kind is AggKind.AVG:
            totals: dict[Any, tuple[int, float]] = {}
            for partial in partials:
                for group, (count, wsum) in partial.items():
                    base_count, base_wsum = totals.get(group, (0, 0.0))
                    totals[group] = (base_count + count, base_wsum + wsum)
            return {
                group: (wsum / count if count else None)
                for group, (count, wsum) in totals.items()
            }
        merged: dict[Any, Any] = {}
        for partial in partials:
            for group, value in partial.items():
                if group not in merged:
                    merged[group] = value
                elif kind in (AggKind.COUNT, AggKind.SUM):
                    # Unreachable when the shard key leads the group key
                    # (groups are disjoint across shards), but merge
                    # soundly anyway.
                    merged[group] += value
                elif value is not None:
                    held = merged[group]
                    if held is None:
                        merged[group] = value
                    elif kind is AggKind.MAX:
                        merged[group] = max(held, value)
                    else:
                        merged[group] = min(held, value)
        return merged
    if kind in (AggKind.COUNT, AggKind.SUM):
        return sum(partials)
    if kind is AggKind.AVG:
        count = sum(pair[0] for pair in partials)
        wsum = sum(pair[1] for pair in partials)
        return wsum / count if count else None
    extrema = [value for value in partials if value is not None]
    if not extrema:
        return None
    return max(extrema) if kind is AggKind.MAX else min(extrema)


class _ShardUnresponsive(Exception):
    """A worker broke its pipe, died, or blew a reply deadline."""


class _Worker:
    """Parent-side handle: process, pipes, buffer, journal, recovery."""

    __slots__ = (
        "index", "process", "conn", "control", "buffer", "lock",
        "log", "replay_base", "checkpoint", "checkpoint_disabled",
        "batches_since_checkpoint", "fold", "generation",
        "traced", "obs_state", "last_rows", "profile", "buffer_lock",
        "span_seen", "address",
    )

    def __init__(self, index: int):
        self.index = index
        self.process: Any = None
        self.conn: Any = None
        self.control: Any = None
        self.buffer: list[tuple[str, int, dict | None]] = []
        #: Guards every mutation of ``buffer``/``traced``: the ingest
        #: thread appends and flushes, the admin scrape thread flushes
        #: via ``_try_flush``. Held across capture *and* send so two
        #: concurrent flushers cannot deliver batches out of order.
        #: Lock order: ``buffer_lock`` before ``lock``, never reversed.
        self.buffer_lock = threading.Lock()
        #: Serializes data-pipe use and revive between the router
        #: thread and the heartbeat thread.
        self.lock = threading.Lock()
        self.log: Any = None
        #: Journal seq at first spawn — a disk journal resumed from a
        #: previous router run must not replay the old run's records.
        self.replay_base = 0
        #: Latest engine checkpoint document (with ``journal_seq``).
        self.checkpoint: dict[str, Any] | None = None
        self.checkpoint_disabled = False
        self.batches_since_checkpoint = 0
        #: In-process fold lane once this shard is degraded.
        self.fold: StreamEngine | None = None
        self.generation = 0
        #: Sampled trace ids pinned to buffered records: (offset, id).
        self.traced: list[tuple[int, str]] = []
        #: Latest shipped metrics snapshot: (generation, state list).
        self.obs_state: tuple[int, list[dict]] | None = None
        #: Last successful query_rows reply (stale-scrape fallback).
        self.last_rows: list[dict[str, Any]] | None = None
        #: Latest shipped profile counts ({collapsed_stack: samples}).
        self.profile: dict[str, int] | None = None
        #: Highest span-outbox batch sequence ingested from this
        #: worker generation (acked back on the next heartbeat ping).
        self.span_seen = 0
        #: Remote endpoint address, when the transport has one.
        self.address: tuple[str, int] | None = None


def _pipe_writable(conn: Any, timeout: float) -> bool:
    """True when ``send`` on the connection would not block (or when
    the fd is unpollable — then let ``send`` raise the real error)."""
    try:
        return bool(select.select([], [conn], [], timeout)[1])
    except (OSError, ValueError):
        return True


def _destroy_process(worker: _Worker, timeout: float = 2.0) -> None:
    """Tear down one worker process and both pipe ends; never raises.

    Escalation ladder: close pipes (unblocks a worker stuck in recv),
    ``terminate()``, and — when SIGTERM is ignored or the worker is
    wedged in uninterruptible state — ``kill()``. Always joins so no
    zombie is left, then closes the Process handle to release its fds.
    """
    for pipe in (worker.conn, worker.control):
        if pipe is not None:
            try:
                pipe.close()
            except OSError:
                pass
    worker.conn = None
    worker.control = None
    process = worker.process
    worker.process = None
    if process is None:
        return
    try:
        if process.is_alive():
            process.terminate()
            process.join(timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout)
        else:
            process.join(0.1)  # reap an already-dead child
    except (OSError, ValueError):
        pass
    try:
        process.close()
    except ValueError:  # still running after kill: nothing more to do
        pass


class ShardedStreamEngine:
    """Hash-partitioned multi-process variant of :class:`StreamEngine`.

    Same registration surface (``register`` / ``run`` / ``results`` /
    ``query_rows`` / ``inspect``), duck-type compatible with the admin
    server. Workers start lazily on the first ingested event, so all
    queries must be registered before ingestion begins.

    Supervision knobs (see the module docstring for the semantics):

    ``supervise``
        Master switch for heartbeats, per-shard journaling,
        checkpoints, and exact revive. Off = PR 4 behavior: a dead
        shard raises :class:`~repro.errors.EngineError`.
    ``heartbeat_interval_s`` / ``heartbeat_max_missed``
        Ping cadence and how many consecutive missed pongs mark a
        shard as wedged.
    ``restart_limit``
        Restarts granted per shard before it degrades into the local
        fold lane.
    ``send_timeout_s`` / ``overload_policy``
        Backpressure guard on data-pipe sends: ``"block"`` (restart the
        wedged worker, lossless), ``"shed_oldest"`` (drop + count), or
        ``"raise"`` (:class:`~repro.errors.OverloadError`).
    ``journal_dir``
        Directory for durable per-shard journals + checkpoints
        (``shard-NN/``); None keeps them in memory.
    ``checkpoint_every_batches``
        Worker state snapshot cadence, in delivered batches (0 never
        checkpoints; revive then replays the whole shard journal).

    Observability knobs (the distributed observability plane):

    ``collect_obs``
        Per-shard metrics collection: workers ship registry snapshots
        with every heartbeat pong and collect reply; the router merges
        them at scrape time under ``shard="N"`` labels, monotonic
        across worker revives. Defaults to on exactly when the router
        registry is enabled.
    ``trace`` / ``trace_sample``
        Cross-process tracing: every ``trace_sample``-th routed event
        gets a trace id that travels with its batch; ``drain_trace()``
        stitches router→shard→merge spans with wall-clock skew
        correction from heartbeat RTTs.
    ``profile`` / ``profile_interval_s``
        Opt-in sampling profiler in the router and every worker;
        ``collapsed_profile()`` concatenates per-process collapsed
        stacks (the admin ``/profile`` body).
    """

    def __init__(
        self,
        shards: int = 2,
        batch_size: int = 256,
        vectorized: bool = False,
        registry: MetricsRegistry | None = None,
        stream_name: str = "sharded",
        start_method: str | None = None,
        supervise: bool = True,
        heartbeat_interval_s: float = 0.5,
        heartbeat_max_missed: int = 3,
        restart_limit: int = 3,
        send_timeout_s: float = 5.0,
        recv_timeout_s: float = 30.0,
        overload_policy: str = "block",
        journal_dir: str | Path | None = None,
        checkpoint_every_batches: int = 64,
        shutdown_timeout_s: float = 2.0,
        trace: TraceRecorder | None = None,
        trace_sample: int = 64,
        collect_obs: bool | None = None,
        funnel: FunnelRecorder | None = None,
        profile: bool = False,
        profile_interval_s: float = 0.01,
        transport: str | ShardTransport | None = None,
        worker_addresses: Sequence[str] | None = None,
        orphan_timeout_s: float | None = None,
        router_checkpoint_every: int = 0,
        resume_shards: bool = False,
        membership: WorkerRegistry | None = None,
        membership_wait_s: float = 15.0,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if heartbeat_max_missed < 1:
            raise ValueError("heartbeat_max_missed must be at least 1")
        if restart_limit < 0:
            raise ValueError("restart_limit must be >= 0")
        if send_timeout_s <= 0 or recv_timeout_s <= 0:
            raise ValueError("send/recv timeouts must be positive")
        if checkpoint_every_batches < 0:
            raise ValueError("checkpoint_every_batches must be >= 0")
        if shutdown_timeout_s <= 0:
            raise ValueError("shutdown_timeout_s must be positive")
        if overload_policy not in OVERLOAD_POLICIES:
            raise ValueError(
                f"overload_policy must be one of {OVERLOAD_POLICIES}, "
                f"got {overload_policy!r}"
            )
        if trace_sample < 1:
            raise ValueError("trace_sample must be >= 1")
        if profile_interval_s <= 0:
            raise ValueError("profile_interval_s must be positive")
        if orphan_timeout_s is not None and orphan_timeout_s < 0:
            raise ValueError("orphan_timeout_s must be >= 0 (0 disables)")
        if router_checkpoint_every < 0:
            raise ValueError("router_checkpoint_every must be >= 0")
        if resume_shards and not supervise:
            raise ValueError(
                "resume_shards needs supervise=True (worker seeding "
                "replays per-shard journals)"
            )
        if membership is not None and not supervise:
            raise ValueError(
                "membership needs supervise=True (partition migration "
                "re-seeds workers from checkpoints and journals)"
            )
        self.shards = shards
        self.batch_size = batch_size
        self._vectorized = vectorized
        self.stream_name = stream_name
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self._transport = build_transport(
            transport,
            ctx=self._ctx,
            worker_addresses=worker_addresses,
            registry=registry,
        )
        self._orphan_timeout_s = orphan_timeout_s
        self._supervise = supervise
        self._heartbeat_interval_s = heartbeat_interval_s
        self._heartbeat_max_missed = heartbeat_max_missed
        self._restart_limit = restart_limit
        self._send_timeout_s = send_timeout_s
        self._recv_timeout_s = recv_timeout_s
        self._overload_policy = overload_policy
        self._journal_dir = (
            None if journal_dir is None else Path(journal_dir)
        )
        self._checkpoint_every = checkpoint_every_batches
        self._shutdown_timeout_s = shutdown_timeout_s
        self.metrics = EngineMetrics()
        self.obs_registry = resolve_registry(registry)
        obs = self.obs_registry
        self._m_restarts = [
            obs.counter(
                "shard_restarts_total",
                "worker processes restarted by the shard supervisor",
                shard=str(index),
            )
            for index in range(shards)
        ]
        self._m_shard_failures = [
            obs.counter(
                "shard_failures_total",
                "shard failures observed (crash, hang, poisoned state)",
                shard=str(index),
            )
            for index in range(shards)
        ]
        self._g_degraded = obs.gauge(
            "shards_degraded",
            "shards folded into the local lane after exhausting restarts",
        )
        self._m_backpressure = obs.counter(
            "shard_backpressure_total",
            "data-pipe sends that hit the send timeout",
        )
        self._m_shed = obs.counter(
            "shard_shed_events_total",
            "events dropped by the shed_oldest overload policy",
        )
        self._m_checkpoints = obs.counter(
            "shard_checkpoints_total", "per-shard worker checkpoints taken"
        )
        self._m_router_checkpoints = obs.counter(
            "router_checkpoints_total",
            "router-side progress checkpoints written to the router log",
        )
        # ----- elastic membership (partition ownership) -----
        self._membership = membership
        if membership_wait_s < 0:
            raise ValueError("membership_wait_s must be >= 0")
        #: How long first start waits for an empty-but-growable fleet
        #: (a join listener or workers file) to gain its first member
        #: before giving up — covers the cold-start race where the
        #: router ingests before any ``--advertise`` worker dialed in.
        self._membership_wait_s = membership_wait_s
        #: partition index → member id (``slot-N`` placeholders when no
        #: registry is attached; ownership is then transport-implicit).
        self._routing: list[str] = []
        #: Bumped on every ownership flip; exported, checkpointed, and
        #: asserted on by the differential suites.
        self.routing_version = 0
        #: Routing document injected by router recovery (version+owners).
        self._resume_routing: dict[str, Any] | None = None
        #: Completed partition migrations (joins, leaves, dead reroutes).
        self.migrations = 0
        #: Serializes poll_membership across the heartbeat tick thread
        #: and direct callers; migrations themselves take the per-worker
        #: locks, this only keeps event-drain ordering sane.
        self._membership_poll_lock = threading.Lock()
        self._m_migrations = obs.counter(
            "repro_migration_total",
            "partition migrations completed (join, leave, dead reroute)",
        )
        self._m_migration_replayed = obs.counter(
            "repro_migration_events_replayed_total",
            "journal-suffix events replayed into migrated partitions",
        )
        self._h_migration_pause = obs.histogram(
            "repro_migration_pause_us",
            "ingest pause of one partition during a live migration (µs)",
        )
        self._g_routing_version = obs.gauge(
            "repro_membership_routing_version",
            "monotonic version of the partition-to-worker routing table",
        )
        #: All registrations, in order: name -> (query, sinks).
        self._specs: dict[str, tuple[Query, list[ResultSink]]] = {}
        #: The partition attribute all sharded queries agree on.
        self.shard_attribute: str | None = None
        self._sharded: dict[str, Query] = {}
        #: Relevant types of the sharded queries (IPC filter).
        self._sharded_types: frozenset[str] = frozenset()
        # ----- the distributed observability plane -----
        self._trace = resolve_tracer(trace)
        self._trace_on = self._trace.enabled
        self._trace_sample = trace_sample
        self._route_seq = 0
        #: Sampled ids awaiting their MERGE span: (id, shard, type, ts).
        self._pending_traces: deque[tuple[str, int, str, int]] = deque(
            maxlen=512
        )
        #: Worker spans ingested from obs shipments, skew-corrected,
        #: awaiting a /trace drain.
        self._shard_spans: deque[dict[str, Any]] = deque(maxlen=4096)
        funnel = resolve_funnel(funnel)
        self._funnel = funnel
        self._collect_obs = (
            (self.obs_registry.enabled or funnel.enabled)
            if collect_obs is None
            else bool(collect_obs)
        )
        # Funnel-only runs (metrics registry disabled) still need a
        # live router-side registry to merge worker snapshots into;
        # the funnel recorder carries one.
        merge_registry = self.obs_registry
        if not merge_registry.enabled and funnel.enabled:
            merge_registry = funnel.registry
        self._merge_registry = merge_registry
        self._merger = (
            SnapshotMerger(merge_registry) if self._collect_obs else None
        )
        self._profile = profile
        self._profile_interval_s = profile_interval_s
        self._profiler: SamplingProfiler | None = None
        #: Worker-side observability config (crosses the fork/spawn).
        self._worker_obs = {
            "metrics": self._collect_obs,
            "trace": self._trace_on,
            "trace_capacity": 512,
            "profile": profile,
            "profile_interval_s": profile_interval_s,
            "funnel": funnel.enabled,
        }
        #: Non-partitionable queries run here, in-process.
        self._local = StreamEngine(
            routed=True,
            vectorized=vectorized,
            registry=registry,
            trace=trace,
            funnel=funnel,
            stream_name=f"{stream_name}-local",
        )
        self._local_names: list[str] = []
        self._workers: list[_Worker] = []
        self._worker_specs: list[tuple[str, Query]] = []
        self._shard_health = [
            ShardHealth(shard=index) for index in range(shards)
        ]
        #: Indices of shards folded into the local process.
        self.degraded_shards: set[int] = set()
        #: Events dropped under the shed_oldest overload policy.
        self.shed_events = 0
        self._monitor: HeartbeatSupervisor | None = None
        self._started = False
        self._closed = False
        self._clock_ms: int | None = None
        # ----- router durability (see attach_router_log) -----
        self._router_log: Any = None
        self._router_checkpoint_every = router_checkpoint_every
        self._events_since_router_checkpoint = 0
        #: Resume mode: ``_start`` re-seeds every worker from its own
        #: durable checkpoint + journal instead of starting fresh.
        self._resume_shards = resume_shards
        #: Per-shard checkpoint overrides injected by router recovery
        #: (e.g. the fold-lane state of a shard that was degraded).
        self._resume_checkpoints: dict[int, dict[str, Any]] = {}
        #: Events replayed into this engine by the last recovery.
        self.events_replayed = 0
        # ----- columnar lane caches (see process_event_batch) -----
        #: Single-entry (schema, sharded-type LUT) routing cache; batch
        #: runs share one growing schema, so identity works as the key.
        self._columnar_route: tuple[Any, Any] | None = None
        #: Bounded key→shard memo (crc32 per unique key, not per row).
        self._shard_of_key: dict[Any, int] = {}

    # ----- registration ------------------------------------------------------

    def register(
        self,
        query: Query,
        *sinks: ResultSink,
        name: str | None = None,
    ) -> None:
        """Register a query; must happen before the first event."""
        if self._started:
            raise EngineError(
                "register all queries before ingesting events; the worker "
                "processes are built from the registration set"
            )
        name = name or query.name or f"q{len(self._specs)}"
        if name in self._specs:
            raise EngineError(f"duplicate query name {name!r}")
        try:
            attributes = partition_attributes(query)
        except QueryError:
            attributes = ()
        leading = attributes[0] if attributes else None
        if leading is not None and self.shard_attribute is None:
            self.shard_attribute = leading
        self._specs[name] = (query, list(sinks))
        if leading is not None and leading == self.shard_attribute:
            self._sharded[name] = query
            self._sharded_types = self._sharded_types | frozenset(
                query.relevant_types
            )
        else:
            self._local.register(query, *sinks, name=name)
            self._local_names.append(name)

    # ----- worker lifecycle --------------------------------------------------

    def _resolved_orphan_timeout(self) -> float | None:
        """The orphan-silence budget shipped to workers.

        Explicit wins (0 disables); under supervision the default is
        generous — ten full miss budgets, floored at 10s — so a worker
        never self-terminates while its router is merely busy; without
        heartbeats there is no traffic floor to judge silence by, so
        the guard stays off (transport EOF still ends the worker).
        """
        if self._orphan_timeout_s is not None:
            return self._orphan_timeout_s or None
        if self._supervise:
            return max(
                10.0,
                self._heartbeat_interval_s
                * self._heartbeat_max_missed
                * 10.0,
            )
        return None

    def _spawn_into(self, worker: _Worker) -> None:
        """(Re)connect one worker through the transport (fresh pipes
        and a forked process, or a framed-TCP session). With a worker
        registry attached, the routing table decides *which* member
        serves this partition and the transport dials that member."""
        if self._membership is not None:
            endpoint = self._transport.open_member(
                worker.index, self._member_of(worker.index)
            )
        else:
            endpoint = self._transport.open(worker.index)
        worker.process = endpoint.process
        worker.conn = endpoint.conn
        worker.control = endpoint.control
        worker.address = endpoint.address
        worker.span_seen = 0

    def _member_of(self, index: int) -> MemberInfo:
        """The live member the routing table points this partition at."""
        member_id = self._routing[index]
        member = self._membership.get(member_id)
        if member is None or not member.live:
            raise TransportError(
                f"partition {index} is routed to {member_id!r}, which "
                f"is not a live member"
            )
        return member

    def _initial_routing(self) -> None:
        """Build the partition→member routing table at first start.

        Round-robin over live members in registry order, unless router
        recovery injected a routing document — then prior owners are
        honored wherever they are still live (their journals and the
        recovered watermarks describe that placement)."""
        if self._membership is None:
            self._routing = [f"slot-{i}" for i in range(self.shards)]
            return
        members = self._membership.live_members()
        if (
            not members
            and self._membership_wait_s > 0
            and self._membership.can_grow
        ):
            _log.info(
                "membership_wait",
                message=(
                    f"worker fleet is empty; waiting up to "
                    f"{self._membership_wait_s:g}s for the first member"
                ),
                wait_s=self._membership_wait_s,
            )
            self._membership.wait_for_members(self._membership_wait_s)
            members = self._membership.live_members()
        if not members:
            raise EngineError(
                f"the worker registry has no live members to place "
                f"{self.shards} partitions on"
            )
        resume = self._resume_routing or {}
        owners = resume.get("owners") or []
        live_ids = {member.member_id for member in members}
        self._routing = []
        for index in range(self.shards):
            owner = owners[index] if index < len(owners) else None
            if owner not in live_ids:
                owner = members[index % len(members)].member_id
            self._routing.append(owner)
        self.routing_version = int(resume.get("version", 0) or 0)
        self._g_routing_version.set(float(self.routing_version))

    def _bump_routing(self) -> None:
        self.routing_version += 1
        self._g_routing_version.set(float(self.routing_version))

    def _start(self) -> None:
        self._worker_specs = [
            (name, str(query)) for name, query in self._sharded.items()
        ]
        self._transport.bind(
            WorkerConfig(
                specs=self._worker_specs,
                vectorized=self._vectorized,
                obs=self._worker_obs,
                orphan_timeout_s=self._resolved_orphan_timeout(),
            )
        )
        if self._profile and self._profiler is None:
            self._profiler = SamplingProfiler(
                interval_s=self._profile_interval_s
            )
            self._profiler.start()
        self._initial_routing()
        for index in range(self.shards):
            worker = _Worker(index)
            if self._supervise:
                directory = (
                    None
                    if self._journal_dir is None
                    else self._journal_dir / f"shard-{index:02d}"
                )
                worker.log = open_shard_log(
                    directory, registry=self.obs_registry
                )
                if self._resume_shards:
                    # Router recovery: the journal's whole history is
                    # the re-seed recipe, not a stale prefix to skip.
                    worker.replay_base = 0
                    checkpoint = self._resume_checkpoints.get(index)
                    if checkpoint is None and directory is not None:
                        checkpoint, _ = load_latest_checkpoint(directory)
                    worker.checkpoint = checkpoint
                else:
                    worker.replay_base = worker.log.next_seq
            self._spawn_into(worker)
            if self._resume_shards:
                self._seed_worker(worker)
            self._workers.append(worker)
        if self._router_log is not None and getattr(
            self._router_log, "shard_attribute", None
        ) is None:
            self._router_log.shard_attribute = self.shard_attribute
        if self._supervise and self._sharded:
            self._monitor = HeartbeatSupervisor(
                self.shards,
                self._ping_shard,
                self._revive,
                interval_s=self._heartbeat_interval_s,
                max_missed=self._heartbeat_max_missed,
                registry=self.obs_registry,
                health=self._shard_health,
                tick=(
                    self._membership_tick
                    if self._membership is not None
                    else None
                ),
            )
            self._monitor.start()
        self._started = True

    def close(self) -> None:
        """Stop workers with terminate→kill escalation; idempotent and
        exception-safe (no leaked pipe fds, no zombie processes)."""
        if self._closed:
            return
        self._closed = True
        monitor = self._monitor
        if monitor is not None:
            monitor.stop()
            self._monitor = None
        profiler = self._profiler
        if profiler is not None:
            profiler.stop()
        for worker in self._workers:
            acquired = worker.lock.acquire(
                timeout=self._shutdown_timeout_s + 3.0
            )
            try:
                if worker.conn is not None:
                    try:
                        worker.conn.send(("stop", None))
                        if worker.conn.poll(
                            min(1.0, self._shutdown_timeout_s)
                        ):
                            worker.conn.recv()
                    except CHANNEL_ERRORS:
                        pass
                _destroy_process(worker, self._shutdown_timeout_s)
                if worker.log is not None:
                    worker.log.close()
                    worker.log = None
                worker.fold = None
            finally:
                if acquired:
                    worker.lock.release()
        self._workers.clear()
        try:
            self._transport.close()
        except Exception:  # transport teardown must never mask close
            pass
        log = self._router_log
        if log is not None:
            try:
                log.close()
            except Exception:
                pass
            self._router_log = None

    def __enter__(self) -> "ShardedStreamEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----- supervision -------------------------------------------------------

    def _ping_shard(self, index: int) -> tuple[str, Any]:
        """Heartbeat probe of one shard (called by the monitor thread).

        Never blocks behind the router: a busy per-worker lock skips
        the round rather than stalling the monitor loop.
        """
        worker = self._workers[index]
        if not worker.lock.acquire(timeout=0.05):
            return ("busy", None)
        try:
            if self._closed:
                return ("busy", None)
            if worker.fold is not None:
                return ("ok", {"degraded": True})
            return self._ping_locked(worker)
        finally:
            worker.lock.release()

    def _ping_locked(self, worker: _Worker) -> tuple[str, Any]:
        process = worker.process
        if worker.conn is None or worker.control is None:
            return ("dead", None)
        # A remote (networked) worker has no process handle; its
        # channel state is the only liveness signal we have.
        if process is not None and not process.is_alive():
            return ("dead", None)
        control = worker.control
        try:
            # Stale pongs from missed rounds are dropped, but the obs
            # shipment they carry is salvaged first — worker span
            # drains are destructive, so a discarded pong would lose
            # its spans for good.
            while control.poll(0):
                self._salvage_reply(worker, control.recv())
            sent_mono = time.monotonic()
            sent_wall = time.time()
            # The ack releases span batches this router has already
            # ingested from the worker's retransmit outbox.
            control.send(("ping", {"ack": worker.span_seen}))
            if not control.poll(self._heartbeat_interval_s):
                return ("miss", None)
            _, payload = control.recv()
        except CHANNEL_ERRORS:
            return ("dead", None)
        if isinstance(payload, dict):
            # RTT and clock skew from this very roundtrip: the worker's
            # wall clock is assumed read halfway through the RTT, so
            # skew = worker_wall - (send_wall + rtt/2). The skew
            # normalizes worker span wall times into the router clock.
            rtt = time.monotonic() - sent_mono
            health = self._shard_health[worker.index]
            health.rtt_s = rtt
            obs = payload.get("obs")
            if isinstance(obs, dict) and obs.get("wall"):
                health.clock_skew_s = (
                    float(obs["wall"]) - (sent_wall + rtt / 2.0)
                )
            self._ingest_obs(worker, payload)
        failure = (
            payload.get("failure") if isinstance(payload, dict) else None
        )
        if failure:
            return ("failed", failure)
        return ("ok", payload)

    def _ingest_obs(self, worker: _Worker, payload: Any) -> None:
        """Absorb one worker observability shipment (any thread).

        Metrics snapshots are *stored* (latest wins, keyed by process
        generation) and merged into the router registry at scrape time;
        spans are skew-corrected and queued for the next ``/trace``
        drain; profile counts overwrite the shard's latest.
        """
        if not isinstance(payload, dict):
            return
        obs = payload.get("obs")
        if not isinstance(obs, dict):
            return
        metrics = obs.get("metrics")
        if metrics is not None:
            worker.obs_state = (worker.generation, metrics)
        spans = obs.get("spans")
        if spans:
            # Two shipment shapes: acked outbox batches ``(seq,
            # [span6, ...])`` — deduplicated against the worker's
            # ``span_seen`` watermark, acked back on the next ping —
            # and the legacy flat list of 6-tuples (drain-once
            # shipments salvaged from stale replies).
            flat: list[tuple] = []
            for item in spans:
                if (
                    len(item) == 2
                    and isinstance(item[1], (list, tuple))
                ):
                    batch_seq, batch = item
                    if batch_seq <= worker.span_seen:
                        continue  # retransmit of an ingested batch
                    worker.span_seen = batch_seq
                    flat.extend(batch)
                else:
                    flat.append(item)
            skew = self._shard_health[worker.index].clock_skew_s or 0.0
            for ts, stage, event_type, detail, trace_id, wall in flat:
                self._shard_spans.append(
                    {
                        "seq": None,
                        "shard": worker.index,
                        "ts": ts,
                        "stage": stage,
                        "event_type": event_type,
                        "detail": detail,
                        "trace_id": trace_id,
                        "wall": (wall - skew) if wall else 0.0,
                    }
                )
        profile = obs.get("profile")
        if profile:
            worker.profile = profile

    def _salvage_reply(self, worker: _Worker, message: Any) -> None:
        """Recover the obs shipment riding a stale, discarded reply.

        Span drains are destructive on the worker side, so a pong from
        a missed heartbeat round or a data-pipe reply that blew its
        deadline would otherwise lose its spans forever.  Drain loops
        feed every discarded message through here; anything malformed
        is ignored (the drop was the point).  Pipes are recreated on
        revive, so a salvaged shipment is always from the worker's
        current generation.
        """
        try:
            _, payload = message
        except (TypeError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if "obs" in payload:
            self._ingest_obs(worker, payload)
        elif "wall" in payload:
            # A bare ("obs", None) reply: the payload *is* the shipment.
            self._ingest_obs(worker, {"obs": payload})

    def _revive(self, index: int, reason: str) -> None:
        """Monitor-thread entry point: restart one unhealthy shard."""
        worker = self._workers[index]
        with worker.lock:
            if self._closed or worker.fold is not None:
                return
            # The router may have revived it while we waited for the
            # lock — a healthy pong means there is nothing left to do.
            if self._ping_locked(worker)[0] == "ok":
                return
            self._handle_failure(worker, reason)

    def _handle_failure(self, worker: _Worker, reason: str) -> None:
        """Record one shard failure and recover (lock held by caller)."""
        health = self._shard_health[worker.index]
        health.failures += 1
        health.last_failure = reason
        self._m_shard_failures[worker.index].inc()
        if not self._supervise:
            raise EngineError(f"shard {worker.index} failed: {reason}")
        self._revive_locked(worker, reason)

    def _revive_locked(self, worker: _Worker, reason: str) -> None:
        """Kill, respawn, re-seed exactly (checkpoint + journal suffix
        replay); degrade into the fold lane once restarts run out."""
        if self._closed or worker.fold is not None:
            return
        health = self._shard_health[worker.index]
        while True:
            if health.restarts >= self._restart_limit:
                self._degrade_locked(worker, reason)
                return
            health.restarts += 1
            health.alive = True
            health.missed_heartbeats = 0
            health.last_pong_at = time.monotonic()
            self._m_restarts[worker.index].inc()
            worker.generation += 1
            try:
                self._respawn_and_reseed(worker)
            except Exception as error:
                reason = f"re-seed failed: {error!r}"
                health.failures += 1
                health.last_failure = reason
                self._m_shard_failures[worker.index].inc()
                continue
            if self._trace_on:
                self._trace.record(
                    Stage.SHARD_REVIVE,
                    int(self._clock_ms or 0),
                    "",
                    f"shard={worker.index} "
                    f"generation={worker.generation}: {reason}",
                    wall=time.time(),
                )
            _log.warning(
                "shard_restart",
                message=(
                    f"shard {worker.index} restarted "
                    f"(generation {worker.generation}): {reason}"
                ),
                shard=worker.index,
                generation=worker.generation,
                reason=reason,
            )
            return

    def _respawn_and_reseed(self, worker: _Worker) -> None:
        _destroy_process(worker, self._shutdown_timeout_s)
        if self._membership is not None:
            # The partition's owner may itself be the casualty: try it
            # first, then fail over to any other live member.
            self._place_and_seed(worker)
            return
        self._spawn_into(worker)
        self._seed_worker(worker)

    def _place_and_seed(
        self, worker: _Worker, prefer: str | None = None
    ) -> None:
        """Spawn + seed one partition on a live member (lock held).

        Tries ``prefer``, then the current owner, then every other live
        member in registry order. A member whose endpoint cannot even
        be dialed is reported **dead** to the registry (its remaining
        partitions are evacuated by the next membership poll); seeding
        failures on a reachable member propagate — the revive loop's
        restart budget owns those. Every ownership flip bumps the
        routing version."""
        candidates: list[str] = []
        for member_id in (prefer, self._routing[worker.index]):
            if member_id and member_id not in candidates:
                candidates.append(member_id)
        loads: dict[str, int] = {
            member.member_id: 0
            for member in self._membership.live_members()
        }
        for owner in self._routing:
            if owner in loads:
                loads[owner] += 1
        for member_id in sorted(
            loads, key=lambda mid: (loads[mid], mid)
        ):
            if member_id not in candidates:
                candidates.append(member_id)
        last_error: Exception | None = None
        for member_id in candidates:
            member = self._membership.get(member_id)
            if member is None or not member.live:
                continue
            if self._routing[worker.index] != member_id:
                self._routing[worker.index] = member_id
                self._bump_routing()
            try:
                self._spawn_into(worker)
            except TransportError as error:
                last_error = error
                self._membership.mark_dead(member_id)
                continue
            replayed = self._seed_worker(worker)
            if replayed:
                self._m_migration_replayed.inc(replayed)
            return
        raise last_error or TransportError(
            f"no live member could host partition {worker.index}"
        )

    def _seed_worker(self, worker: _Worker) -> int:
        """Re-seed a fresh worker exactly: checkpoint, then replay the
        journal suffix. Replay chunks carry their base journal
        sequence so the worker's dedup cursor tracks exactly what it
        has applied — a later conservative redelivery (router
        recovery) is then skippable worker-side. Returns the number of
        journal records replayed."""
        start_seq = worker.replay_base
        if worker.checkpoint is not None:
            self._roundtrip(worker, "seed", worker.checkpoint)
            start_seq = max(
                start_seq, int(worker.checkpoint.get("journal_seq", 0))
            )
        if worker.log is None:
            return 0
        replayed = 0
        chunk: list[tuple[str, int, dict | None]] = []
        chunk_base = start_seq
        for seq, record in worker.log.replay_seqs(start_seq):
            if not chunk:
                chunk_base = seq
            chunk.append(record)
            if len(chunk) >= self.batch_size:
                worker.conn.send(("batch", {"r": chunk, "q": chunk_base}))
                replayed += len(chunk)
                chunk = []
        if chunk:
            worker.conn.send(("batch", {"r": chunk, "q": chunk_base}))
            replayed += len(chunk)
        return replayed

    def _degrade_locked(self, worker: _Worker, reason: str) -> None:
        """Fold this shard's key-range into an in-process lane, seeded
        the same exact way a revive would seed a fresh worker."""
        health = self._shard_health[worker.index]
        # The fold lane shares the router registry and tracer: a
        # degraded shard's series fold into the local lane's (same
        # metric names, no shard label) instead of going dark, and its
        # merged remote series freeze at the last shipped snapshot —
        # still monotonic.
        fold = StreamEngine(
            routed=True,
            vectorized=self._vectorized,
            registry=self.obs_registry if self._collect_obs else None,
            trace=self._trace if self._trace_on else None,
            funnel=self._funnel,
            stream_name=f"{self.stream_name}-fold-{worker.index}",
        )
        for name, query in self._sharded.items():
            fold.register(query, name=name)
        start_seq = worker.replay_base
        if worker.checkpoint is not None:
            _apply_seed(fold, worker.checkpoint)
            start_seq = max(
                start_seq, int(worker.checkpoint.get("journal_seq", 0))
            )
        dropped = 0
        if worker.log is not None:
            chunk: list[tuple[str, int, dict | None]] = []
            for record in worker.log.replay(start_seq):
                chunk.append(record)
                if len(chunk) >= 1024:
                    dropped += _feed_fold(fold, chunk)
                    chunk = []
            if chunk:
                dropped += _feed_fold(fold, chunk)
        _destroy_process(worker, self._shutdown_timeout_s)
        worker.fold = fold
        health.degraded = True
        health.alive = False
        self.degraded_shards.add(worker.index)
        self._g_degraded.set(float(len(self.degraded_shards)))
        if self._trace_on:
            self._trace.record(
                Stage.SHARD_DEGRADE,
                int(self._clock_ms or 0),
                "",
                f"shard={worker.index} after {health.restarts} restarts: "
                f"{reason}",
                wall=time.time(),
            )
        _log.warning(
            "shard_degraded",
            message=(
                f"shard {worker.index} degraded after {health.restarts} "
                f"restarts; its key-range now runs in-process: {reason}"
            ),
            shard=worker.index,
            restarts=health.restarts,
            replay_dropped_events=dropped,
            reason=reason,
        )

    def _roundtrip(
        self,
        worker: _Worker,
        command: str,
        payload: Any = None,
        timeout: float | None = None,
    ) -> Any:
        """One guarded request/reply on the data pipe (lock held).

        Stale replies are drained first: a previous request that blew
        its deadline may have left its answer in the pipe, and pairing
        it with this request would desynchronize the protocol (any obs
        shipment riding a drained reply is salvaged, not lost). Raises
        :class:`_ShardUnresponsive` on pipe death or a blown reply
        deadline, :class:`EngineError` on an ``("error", ...)`` reply.
        """
        deadline = self._recv_timeout_s if timeout is None else timeout
        try:
            while worker.conn.poll(0):
                self._salvage_reply(worker, worker.conn.recv())
            worker.conn.send((command, payload))
            if not worker.conn.poll(deadline):
                raise _ShardUnresponsive(
                    f"no reply to {command!r} within {deadline}s"
                )
            status, value = worker.conn.recv()
        except CHANNEL_ERRORS as error:
            raise _ShardUnresponsive(repr(error)) from error
        if status != "ok":
            raise EngineError(
                f"shard {worker.index} {command} failed: {value}"
            )
        return value

    def shard_health(self) -> list[dict[str, Any]]:
        """Per-shard supervision snapshots (restarts, heartbeat age,
        degraded flag) for ``inspect()`` and the admin plane."""
        return [health.snapshot() for health in self._shard_health]

    # ----- elastic membership ------------------------------------------------

    def _membership_tick(self) -> None:
        """Heartbeat-loop hook: drain membership events, best-effort."""
        try:
            self.poll_membership()
        except Exception as error:  # never kill the heartbeat thread
            _log.warning(
                "membership_poll_error",
                message=f"membership poll raised {error!r}",
                error=type(error).__name__,
            )

    def poll_membership(self) -> list[tuple[str, str]]:
        """Consume queued membership events and rebalance partitions.

        Joins pull partitions off the most-loaded members onto the
        newcomer; graceful leaves migrate every owned partition away
        with a checkpoint handoff; deaths re-place the partitions from
        their checkpoints + journal suffixes (worker-side count-skip
        dedup keeps delivery exactly-once either way). Called by the
        heartbeat loop every round; safe to call directly. Returns the
        events that were handled.
        """
        if self._membership is None or not self._started or self._closed:
            return []
        if not self._membership_poll_lock.acquire(blocking=False):
            return []  # another thread is already draining
        try:
            events = self._membership.poll()
            for kind, member_id in events:
                try:
                    if kind == JOIN:
                        self._rebalance_for_join(member_id)
                    elif kind in (LEAVE, DEAD):
                        self._evacuate_member(member_id, kind)
                except (EngineError, OSError) as error:
                    _log.warning(
                        "membership_event_failed",
                        message=(
                            f"handling {kind} of {member_id} failed: "
                            f"{error!r}"
                        ),
                        member=member_id,
                        kind=kind,
                    )
            return events
        finally:
            self._membership_poll_lock.release()

    def migrate_partition(self, index: int, member_id: str) -> float:
        """Move one partition to another live member, exactly.

        The handoff: quiesce the partition at a batch boundary (flush
        its buffer to the current owner), checkpoint the source worker
        through ``engine_state`` and prune its journal, stop the source
        gracefully, flip the routing entry (bumping the version), spawn
        on the new owner and re-seed from checkpoint + journal suffix.
        If the source cannot checkpoint, the stored checkpoint plus the
        *full* journal suffix re-seeds instead — the stock revive
        recipe, so merged results stay bit-identical either way.
        Returns the partition's ingest pause in seconds.
        """
        if self._membership is None:
            raise EngineError(
                "migrate_partition needs a worker registry "
                "(membership=...)"
            )
        if not 0 <= index < self.shards:
            raise EngineError(f"no such partition {index}")
        if not self._started:
            raise EngineError(
                "start the engine before migrating partitions"
            )
        member = self._membership.get(member_id)
        if member is None or not member.live:
            raise EngineError(f"{member_id!r} is not a live member")
        if self._routing[index] == member_id:
            return 0.0
        worker = self._workers[index]
        with worker.buffer_lock:
            with worker.lock:
                return self._migrate_locked(worker, member_id)

    def _migrate_locked(self, worker: _Worker, member_id: str) -> float:
        if worker.fold is not None:
            raise EngineError(
                f"partition {worker.index} is degraded (in-process); "
                f"there is no worker state to migrate"
            )
        started = time.perf_counter()
        # Quiesce at a batch boundary: everything buffered goes to the
        # current owner (and its journal) first, so the checkpoint
        # below covers a consistent prefix of the partition's stream.
        buffer = worker.buffer
        traced = worker.traced
        worker.buffer = []
        worker.traced = []
        if buffer:
            if self._router_log is not None:
                self._router_log.commit()
            self._send_records(worker, buffer, traced=traced or None)
        if worker.fold is not None:
            # The flush exhausted the restart budget and degraded the
            # partition; its key-range now runs in-process — done.
            return time.perf_counter() - started
        try:
            if not worker.checkpoint_disabled:
                state = self._roundtrip(worker, "checkpoint", None)
                state["journal_seq"] = (
                    worker.log.next_seq if worker.log is not None else 0
                )
                worker.checkpoint = state
                if worker.log is not None:
                    worker.log.save_checkpoint(state)
                    worker.log.truncate_to(state["journal_seq"])
                worker.batches_since_checkpoint = 0
                self._m_checkpoints.inc()
            try:
                worker.conn.send(("stop", None))
                if worker.conn.poll(min(1.0, self._shutdown_timeout_s)):
                    worker.conn.recv()
            except CHANNEL_ERRORS:
                pass
        except (_ShardUnresponsive, EngineError):
            # Source is sick: re-seed from the stored checkpoint plus
            # the full journal suffix instead — still exact.
            pass
        _destroy_process(worker, self._shutdown_timeout_s)
        worker.generation += 1
        self._place_and_seed(worker, prefer=member_id)
        pause = time.perf_counter() - started
        self.migrations += 1
        self._m_migrations.inc()
        self._h_migration_pause.observe(pause * 1_000_000.0)
        _log.info(
            "partition_migrated",
            message=(
                f"partition {worker.index} migrated to "
                f"{self._routing[worker.index]} in {pause * 1000:.1f}ms "
                f"(routing v{self.routing_version})"
            ),
            shard=worker.index,
            member=self._routing[worker.index],
            routing_version=self.routing_version,
            pause_ms=round(pause * 1000, 3),
        )
        return pause

    def _reroute_partition(self, index: int, dest: str) -> None:
        """Re-place one partition whose owner is already gone (no
        graceful handoff possible): destroy the dead endpoint, flip
        routing, spawn + re-seed from checkpoint + journal suffix."""
        worker = self._workers[index]
        with worker.buffer_lock:
            with worker.lock:
                if worker.fold is not None or self._closed:
                    return
                started = time.perf_counter()
                worker.generation += 1
                _destroy_process(worker, self._shutdown_timeout_s)
                self._place_and_seed(worker, prefer=dest)
                pause = time.perf_counter() - started
        self.migrations += 1
        self._m_migrations.inc()
        self._h_migration_pause.observe(pause * 1_000_000.0)

    def _least_loaded(self, exclude: str | None = None) -> str | None:
        """The live member owning the fewest partitions (ties: id)."""
        loads: dict[str, int] = {}
        for member in self._membership.live_members():
            if member.member_id != exclude:
                loads[member.member_id] = 0
        if not loads:
            return None
        for owner in self._routing:
            if owner in loads:
                loads[owner] += 1
        return min(loads, key=lambda mid: (loads[mid], mid))

    def _rebalance_for_join(self, member_id: str) -> None:
        """Pull partitions onto a joined member until loads even out.

        Moves one partition at a time from the most-loaded donor, and
        only while a move strictly reduces imbalance (donor at least
        two ahead) — minimal churn, never a pointless swap."""
        member = self._membership.get(member_id)
        if member is None or not member.live:
            return
        while True:
            loads: dict[str, int] = {member_id: 0}
            movable: dict[str, list[int]] = {}
            for index, owner in enumerate(self._routing):
                loads[owner] = loads.get(owner, 0) + 1
                if owner != member_id and self._workers[index].fold is None:
                    movable.setdefault(owner, []).append(index)
            joiner_load = loads[member_id]
            donor = None
            for owner in sorted(movable):
                if loads[owner] >= joiner_load + 2 and (
                    donor is None or loads[owner] > loads[donor]
                ):
                    donor = owner
            if donor is None:
                return
            self.migrate_partition(movable[donor][-1], member_id)

    def _evacuate_member(self, member_id: str, kind: str) -> None:
        """Move every partition off a departed or dead member."""
        for index in range(self.shards):
            if self._routing[index] != member_id:
                continue
            if self._workers[index].fold is not None:
                continue
            dest = self._least_loaded(exclude=member_id)
            if dest is None:
                _log.warning(
                    "membership_no_destination",
                    message=(
                        f"no live member left to take partition {index} "
                        f"from {member_id}; the revive path will degrade "
                        f"it if its worker is unreachable"
                    ),
                    shard=index,
                    member=member_id,
                )
                return
            if kind == LEAVE:
                # Graceful: the departing worker still answers, so the
                # checkpoint handoff applies; fall back to a reroute.
                try:
                    self.migrate_partition(index, dest)
                    continue
                except EngineError:
                    pass
            self._reroute_partition(index, dest)

    def membership_view(self) -> dict[str, Any] | None:
        """Fleet + routing snapshot for ``/healthz`` and ``inspect()``
        (``None`` when no worker registry is attached)."""
        if self._membership is None:
            return None
        view = self._membership.snapshot()
        view["routing"] = {
            "version": self.routing_version,
            "owners": list(self._routing),
        }
        view["migrations"] = self.migrations
        return view

    # ----- ingestion ---------------------------------------------------------

    def attach_router_log(self, log: Any) -> None:
        """Attach the router's ingest-lane WAL (before ingestion).

        With a log attached every event is appended to its lane journal
        *before* routing (classic WAL discipline), and — when
        ``router_checkpoint_every`` is set — the router periodically
        persists its own progress document, so
        :func:`~repro.resilience.router_recovery.recover_router` can
        resume this engine bit-identically after a router SIGKILL.
        Requires durable shard journals (``journal_dir``): the lane WAL
        reconciles against them at recovery time.
        """
        if log is None:
            return
        if self._started or self.metrics.events:
            raise EngineError(
                "attach the router log before ingesting events; "
                "already-routed events would be missing from the WAL"
            )
        if self._supervise and self._journal_dir is None:
            raise EngineError(
                "router journaling requires durable shard journals "
                "(set journal_dir); recovery reconciles the lane WAL "
                "against each shard's on-disk journal"
            )
        self._router_log = log

    def router_checkpoint(self) -> dict[str, Any]:
        """Persist the router's own progress document (see
        :mod:`repro.resilience.router_recovery` for the recovery side).

        The document is the local lane's engine state (so it loads
        through the stock checkpoint reader) with ``journal_seq``
        holding the global ingest sequence and a ``"router"`` section
        carrying the distributed bookkeeping: per-shard delivered
        watermarks (shard-journal offsets after a full flush), lane
        journal offsets, query texts, and the fold-lane state of any
        degraded shard. Flushing first is what makes the watermarks
        honest: every event routed before the checkpoint is either in
        a shard journal or (shed_oldest only) dropped on purpose.
        """
        log = self._router_log
        if log is None:
            raise EngineError("no router log attached")
        self.flush()
        state = engine_state(self._local, journal_seq=log.ingest_seq)
        delivered: list[int] = []
        folds: dict[str, Any] = {}
        for worker in self._workers:
            seq = worker.log.next_seq if worker.log is not None else 0
            delivered.append(seq)
            if worker.fold is not None:
                fold_state = engine_state(worker.fold)
                fold_state["journal_seq"] = seq
                folds[str(worker.index)] = fold_state
        state["router"] = {
            "events": self.metrics.events,
            "clock_ms": self._clock_ms,
            "route_seq": self._route_seq,
            "shards": self.shards,
            "lanes": log.lanes,
            "batch_size": self.batch_size,
            "shard_attribute": self.shard_attribute,
            "queries": [
                [name, str(query), name in self._sharded]
                for name, (query, _) in self._specs.items()
            ],
            "lane_seqs": log.lane_seqs(),
            "commit_seq": log.commit_seq,
            "shard_delivered": delivered,
            "shed_events": self.shed_events,
            "degraded": sorted(self.degraded_shards),
            "folds": folds,
            "routing": {
                "version": self.routing_version,
                "owners": list(self._routing),
            },
        }
        log.checkpoint(state)
        self._events_since_router_checkpoint = 0
        self._m_router_checkpoints.inc()
        return state

    def _recovery_route(
        self,
        event: Event,
        counters: list[int],
        recovered: list[int],
    ) -> None:
        """Route one lane-replayed event with per-shard count-skip.

        Routing is deterministic, so during replay the *k*-th record
        bound for shard *i* lands on the same journal sequence it had
        in the crashed run; while that sequence is below the shard's
        recovered journal tail the record is already inside the worker
        (seeded from checkpoint + journal) and is skipped — delivered
        and journaled otherwise. Tracing is not replayed (spans
        describe the original run, not the recovery).
        """
        self.metrics.events += 1
        ts = event.ts
        if self._clock_ms is None or ts > self._clock_ms:
            self._clock_ms = ts
        self._local.process(event)
        if not self._sharded:
            return
        if event.event_type not in self._sharded_types:
            return
        record = (event.event_type, ts, event.attrs or None)
        key = event.get(self.shard_attribute, _MISSING)
        if key is _MISSING:
            targets: Iterable[_Worker] = self._workers
        else:
            targets = (self._workers[shard_of(key, self.shards)],)
        for worker in targets:
            index = worker.index
            position = counters[index]
            counters[index] = position + 1
            if position < recovered[index]:
                continue  # already applied via checkpoint + journal
            self._buffer(worker, record)

    def process(self, event: Event) -> None:
        """Route one event: local lane always, worker lane by key."""
        if not self._started:
            self._start()
        log = self._router_log
        if log is not None:
            # The cadence check runs *before* this event is appended:
            # a checkpoint must only ever cover events whose routing
            # fully completed (previous process() calls), or its
            # ingest watermark would claim an event the local lane
            # never saw.
            if (
                self._router_checkpoint_every
                and self._events_since_router_checkpoint
                >= self._router_checkpoint_every
            ):
                self.router_checkpoint()
            # WAL discipline, group-committed: the event is staged in
            # the lane WAL now and physically written (RouterLog
            # .commit) before any batch send, so the shard journals
            # are always a subset of the durable lanes and recovery
            # can reconcile by count alone. flush() is the explicit
            # durability ack for the tail.
            log.append(event)
            self._events_since_router_checkpoint += 1
        self.metrics.events += 1
        ts = event.ts
        if self._clock_ms is None or ts > self._clock_ms:
            self._clock_ms = ts
        self._local.process(event)
        if not self._sharded:
            return
        if event.event_type not in self._sharded_types:
            # No sharded pattern reacts to this type; workers sync their
            # clocks from the watermark at collect time instead.
            return
        record = (event.event_type, ts, event.attrs or None)
        key = event.get(self.shard_attribute, _MISSING)
        if key is _MISSING:
            # Keyless (e.g. a negated type without the attribute):
            # every partition is affected — broadcast (HPC does the
            # same across its in-process partitions).  Broadcasts are
            # not traced: one trace id per shard would stitch wrong.
            for worker in self._workers:
                self._buffer(worker, record)
            return
        worker = self._workers[shard_of(key, self.shards)]
        trace_id = None
        if self._trace_on:
            self._route_seq += 1
            if self._route_seq % self._trace_sample == 0:
                trace_id = f"e{self._route_seq}"
                self._trace.record(
                    Stage.ROUTE,
                    ts,
                    event.event_type,
                    f"shard={worker.index}",
                    trace_id=trace_id,
                    wall=time.time(),
                )
                self._pending_traces.append(
                    (trace_id, worker.index, event.event_type, ts)
                )
        self._buffer(worker, record, trace_id)

    def process_event_batch(self, batch: EventBatch) -> int:
        """Route one columnar batch: local lane columnar, workers by key.

        The zero-object counterpart of :meth:`process`: the local lane
        consumes the batch through its own columnar lane (which also
        enforces the stream-order contract), and each worker receives
        its hash-partition of the relevant rows as one flat-buffer
        sub-batch over the data pipe. Lanes that need per-event
        bookkeeping — the router WAL and trace sampling — fall back to
        per-event routing over the materialized batch, so durability
        and tracing semantics never fork from :meth:`process`.
        """
        count = len(batch)
        if count == 0:
            return 0
        if not self._started:
            self._start()
        if self._router_log is not None or self._trace_on:
            for event in batch.to_events():
                self.process(event)
            return count
        # Order check + local-lane consumption (raises before any row
        # of an out-of-order batch reaches metrics or the workers).
        self._local.process_event_batch(batch)
        self.metrics.events += count
        last = batch.last_ts()
        if self._clock_ms is None or last > self._clock_ms:
            self._clock_ms = last
        if not self._sharded:
            return count
        schema = batch.schema
        route = self._columnar_route
        if route is None or route[0] is not schema:
            lut = np.fromiter(
                (name in self._sharded_types for name in schema.types),
                dtype=bool,
                count=len(schema.types),
            )
            route = (schema, lut)
            self._columnar_route = route
        rows = np.flatnonzero(route[1][batch.codes])
        if not rows.size:
            return count
        buckets: list[list[int]] = [[] for _ in self._workers]
        attribute = self.shard_attribute
        column = None if attribute is None else batch.cols.get(attribute)
        if column is None:
            # No key column at all: every relevant row is keyless and
            # broadcasts, exactly like the per-event path.
            row_list = rows.tolist()
            for bucket in buckets:
                bucket.extend(row_list)
        else:
            keys = column[rows].tolist()
            mask = batch.present.get(attribute)
            keyed = (
                [True] * len(keys) if mask is None else mask[rows].tolist()
            )
            memo = self._shard_of_key
            shards = self.shards
            for row, key, has_key in zip(rows.tolist(), keys, keyed):
                if not has_key:
                    for bucket in buckets:
                        bucket.append(row)
                    continue
                try:
                    index = memo[key]
                except KeyError:
                    index = shard_of(key, shards)
                    if len(memo) < 65536:
                        memo[key] = index
                except TypeError:  # unhashable key: hash it every time
                    index = shard_of(key, shards)
                buckets[index].append(row)
        for worker, bucket in zip(self._workers, buckets):
            if not bucket:
                continue
            if len(bucket) == count:
                sub = batch
            else:
                sub = batch.take(np.asarray(bucket, dtype=np.int64))
            # Per-event records buffered before this batch must reach
            # the worker first, or the shard would see time run
            # backwards; the flush also keeps journal order == arrival
            # order for replay.
            self._flush_worker(worker)
            with worker.lock:
                self._send_records(
                    worker, sub.to_records(), wire=sub.to_wire()
                )
        return count

    def _buffer(
        self,
        worker: _Worker,
        record: tuple[str, int, dict | None],
        trace_id: str | None = None,
    ) -> None:
        with worker.buffer_lock:
            if trace_id is not None:
                worker.traced.append((len(worker.buffer), trace_id))
            worker.buffer.append(record)
            if len(worker.buffer) < self.batch_size:
                return
        self._flush_worker(worker)

    def _flush_worker(self, worker: _Worker) -> None:
        """Capture-and-send one worker's buffer (any thread).

        The whole operation runs under ``buffer_lock`` — the capture
        so an append racing from another thread cannot land in the
        orphaned list, the send so two concurrent flushers (ingest
        thread + scrape thread) cannot deliver batches out of order.
        """
        log = self._router_log
        with worker.buffer_lock:
            buffer = worker.buffer
            if not buffer:
                return
            if log is not None:
                # Group commit: every record in this buffer was staged
                # in the WAL before it was buffered (process() order),
                # so committing here — before the send below — keeps
                # the shard journals a subset of the durable WAL.
                log.commit()
            traced = worker.traced
            worker.buffer = []
            worker.traced = []
            with worker.lock:
                self._send_records(worker, buffer, traced=traced or None)

    def _send_records(
        self,
        worker: _Worker,
        records: list[tuple[str, int, dict | None]],
        journal: bool = True,
        traced: list[tuple[int, str]] | None = None,
        wire: bytes | None = None,
    ) -> None:
        """Deliver one batch with the backpressure guard (lock held).

        The journal-on-successful-send invariant: a batch is appended
        to the shard journal exactly when the worker accepted it, so
        checkpoint + journal-suffix replay reconstructs precisely what
        the worker had consumed.  ``traced`` rides along as batch
        offsets so the worker can stamp ``shard_ingest`` spans; the
        journal stores plain records only (replay is untraced).

        ``wire`` switches the pipe payload to the columnar flat buffer
        (``records`` must be its record form): the worker decodes it
        straight into an :class:`EventBatch` while the journal and the
        fold lane keep consuming plain records.
        """
        if worker.fold is not None:
            if traced:
                # Degraded lane: the "shard" stage happens in-process.
                for offset, trace_id in traced:
                    event_type, ts, _ = records[offset]
                    self._trace.record(
                        Stage.SHARD_INGEST,
                        ts,
                        event_type,
                        f"shard={worker.index} lane=fold",
                        trace_id=trace_id,
                        wall=time.time(),
                    )
            self._fold_feed(worker, records)
            return
        # The base journal sequence travels with the batch: the worker
        # advances its dedup cursor by it, so redelivery after a
        # router recovery can never double-apply.  A revive inside the
        # retry loop below does not move ``next_seq`` (replay stops
        # exactly there), so the base stays valid across attempts.
        base = (
            worker.log.next_seq
            if journal and worker.log is not None
            else None
        )
        payload: Any = records
        if wire is not None:
            payload = {"c": wire, "n": len(records)}
            if base is not None:
                payload["q"] = base
        elif traced or base is not None:
            payload = {"r": records}
            if traced:
                payload["t"] = traced
            if base is not None:
                payload["q"] = base
        attempts = 0
        while True:
            failed = None
            try:
                if _pipe_writable(worker.conn, self._send_timeout_s):
                    worker.conn.send(("batch", payload))
                    break
                self._m_backpressure.inc()
                if self._overload_policy == "raise":
                    raise OverloadError(
                        f"shard {worker.index} pipe not writable within "
                        f"{self._send_timeout_s}s"
                    )
                if self._overload_policy == "shed_oldest":
                    self.shed_events += len(records)
                    self._m_shed.inc(len(records))
                    _log.warning(
                        "shard_shed",
                        message=(
                            f"shed {len(records)} events to stalled "
                            f"shard {worker.index} (shed_oldest policy)"
                        ),
                        shard=worker.index,
                        events=len(records),
                    )
                    return  # dropped, never journaled
                # "block" policy: a restart both unwedges the pipe and
                # preserves exactness (checkpoint + replay + redeliver).
                failed = "pipe stalled beyond the send timeout"
            except CHANNEL_ERRORS as error:
                failed = f"send failed: {error!r}"
            attempts += 1
            if attempts > self._restart_limit + 1:
                raise EngineError(
                    f"shard {worker.index}: could not deliver a batch "
                    f"after {attempts} attempts ({failed})"
                )
            self._handle_failure(worker, failed)
            if worker.fold is not None:
                self._fold_feed(worker, records)
                return
        if journal and worker.log is not None:
            worker.log.append(records)
            worker.batches_since_checkpoint += 1
            if (
                self._checkpoint_every
                and not worker.checkpoint_disabled
                and worker.batches_since_checkpoint
                >= self._checkpoint_every
            ):
                self._checkpoint_locked(worker)

    def _checkpoint_locked(self, worker: _Worker) -> None:
        """Snapshot one worker's engine state and prune its journal."""
        try:
            state = self._roundtrip(worker, "checkpoint", None)
        except _ShardUnresponsive as error:
            self._handle_failure(worker, f"checkpoint failed: {error}")
            return
        except EngineError as error:
            # Deterministic serialization problem: a restart would not
            # fix it, so keep the worker and stop asking.
            worker.checkpoint_disabled = True
            _log.warning(
                "shard_checkpoint_disabled",
                message=(
                    f"shard {worker.index} cannot checkpoint "
                    f"({error}); revive will replay the full journal"
                ),
                shard=worker.index,
            )
            return
        state["journal_seq"] = worker.log.next_seq
        worker.checkpoint = state
        worker.log.save_checkpoint(state)
        worker.log.truncate_to(state["journal_seq"])
        worker.batches_since_checkpoint = 0
        self._m_checkpoints.inc()

    def _fold_feed(
        self,
        worker: _Worker,
        records: list[tuple[str, int, dict | None]],
    ) -> None:
        dropped = _feed_fold(worker.fold, records)
        if dropped:
            _log.warning(
                "fold_dropped",
                message=(
                    f"fold lane of degraded shard {worker.index} "
                    f"dropped a poison batch of {dropped} events"
                ),
                shard=worker.index,
                events=dropped,
            )

    def flush(self) -> None:
        """Push every buffered event down to its worker.

        With a router log attached this is also the durability ack:
        everything staged in the WAL is committed even when no worker
        buffer holds it (events of non-sharded types, for instance).
        """
        if self._router_log is not None:
            self._router_log.commit()
        for worker in self._workers:
            self._flush_worker(worker)

    def run(self, stream: Iterable[Event]) -> int:
        """Drain a stream; deliver merged finals to sharded-query sinks.

        The stream may yield :class:`EventBatch` instances (columnar
        lane) or plain events; the two shapes can be mixed.
        """
        started = time.perf_counter()
        processed = 0
        for item in stream:
            if isinstance(item, EventBatch):
                processed += self.process_event_batch(item)
            else:
                self.process(item)
                processed += 1
        merged = self._merged_results()
        ts = int(self._clock_ms or 0)
        for name, value in merged.items():
            _, sinks = self._specs[name]
            if not sinks:
                continue
            output = Output(name, ts, value)
            for sink in sinks:
                try:
                    sink.emit(output)
                except Exception:
                    self.metrics.sink_errors += 1
        self.metrics.elapsed_s += time.perf_counter() - started
        return processed

    # ----- results -----------------------------------------------------------

    def _request(
        self, worker: _Worker, command: str, payload: Any = None
    ) -> Any:
        """One request/reply with revive-and-retry on failure."""
        with worker.lock:
            failure = "unknown"
            for _ in range(self._restart_limit + 2):
                if worker.fold is not None:
                    return self._fold_request(worker, command, payload)
                try:
                    return self._roundtrip(worker, command, payload)
                except Exception as error:
                    failure = str(error) or repr(error)
                    self._handle_failure(
                        worker, f"{command} failed: {failure}"
                    )
            raise EngineError(
                f"shard {worker.index}: {command} kept failing "
                f"({failure})"
            )

    def _fold_request(
        self, worker: _Worker, command: str, payload: Any
    ) -> Any:
        """Serve a worker request from a degraded shard's fold lane."""
        fold = worker.fold
        if command == "collect":
            fold.advance_clock(int(payload))
            return {
                "partials": {
                    name: _partial_of(fold.executor_of(name))
                    for name in self._sharded
                }
            }
        if command == "rows":
            return fold.query_rows()
        if command == "inspect":
            state = fold.inspect()
            state["degraded"] = True
            return state
        if command == "state":
            from repro.obs.inspect import state_of

            return state_of(fold, payload)
        raise EngineError(
            f"command {command!r} is not served by a degraded shard"
        )

    def _collect(self, command: str, payload: Any = None) -> list[Any]:
        """Round-trip one request to every worker (flushes first)."""
        if not self._started:
            self._start()
        self.flush()
        return [
            self._request(worker, command, payload)
            for worker in self._workers
        ]

    def _merged_results(self) -> dict[str, Any]:
        if not self._sharded:
            return {}
        watermark = int(self._clock_ms or 0)
        replies = self._collect("collect", watermark)
        partials_by_shard: list[dict[str, Any]] = []
        for worker, reply in zip(self._workers, replies):
            # Collect replies piggyback an observability snapshot so a
            # merge also refreshes metrics/traces without extra trips.
            if isinstance(reply, dict) and "partials" in reply:
                self._ingest_obs(worker, reply)
                partials_by_shard.append(reply["partials"])
            else:
                partials_by_shard.append(reply)
        if self._trace_on and self._pending_traces:
            now = time.time()
            while self._pending_traces:
                trace_id, shard, event_type, ts = (
                    self._pending_traces.popleft()
                )
                self._trace.record(
                    Stage.MERGE,
                    watermark if watermark else ts,
                    event_type,
                    f"shard={shard}",
                    trace_id=trace_id,
                    wall=now,
                )
        return {
            name: _merge_partials(
                query,
                [partials[name] for partials in partials_by_shard],
            )
            for name, query in self._sharded.items()
        }

    def results(self) -> dict[str, Any]:
        """Merged aggregates of every query, in registration order."""
        merged = self._merged_results()
        local = self._local.results()
        return {
            name: (merged[name] if name in merged else local[name])
            for name in self._specs
        }

    def result(self, name: str) -> Any:
        if name not in self._specs:
            raise EngineError(f"unknown query {name!r}")
        if name in self._sharded:
            return self._merged_results()[name]
        return self._local.result(name)

    # ----- introspection -----------------------------------------------------

    @property
    def query_names(self) -> list[str]:
        return list(self._specs)

    @property
    def watermark_ms(self) -> float | None:
        return None if self._clock_ms is None else float(self._clock_ms)

    def _try_flush(self, worker: _Worker, timeout: float = 0.5) -> None:
        """Best-effort flush of one worker's buffer (scrape path).

        Unlike :meth:`_flush_worker` this never blocks past ``timeout``
        on a busy lock; on failure the batch is re-stashed so the
        ingest path delivers it later.  Both locks are timed acquires
        in ``buffer_lock`` → ``lock`` order: the buffer lock keeps the
        capture atomic against a concurrently appending ingest thread,
        the pipe lock guards the send.
        """
        if not worker.buffer:
            return
        if not worker.buffer_lock.acquire(timeout=timeout):
            return
        try:
            buffer = worker.buffer
            if not buffer:
                return
            if not worker.lock.acquire(timeout=timeout):
                return
            try:
                traced = worker.traced
                worker.buffer = []
                worker.traced = []
                try:
                    self._send_records(
                        worker, buffer, traced=traced or None
                    )
                except Exception:
                    # Put the batch back; no append raced us (the
                    # ingest path needs buffer_lock), so the trace
                    # offsets are still exact.
                    worker.buffer = buffer
                    worker.traced = traced
            finally:
                worker.lock.release()
        finally:
            worker.buffer_lock.release()

    def _scrape_rows(
        self, worker: _Worker
    ) -> tuple[list[dict[str, Any]] | None, bool]:
        """One shard's cost rows for the admin plane: ``(rows, stale)``.

        A shard mid-restart (lock held by the revive path, or pipe
        dead) must not wedge ``/queries``: the scrape returns the
        shard's last known rows flagged stale instead of blocking or
        raising, and never triggers a revive of its own.
        """
        if not worker.lock.acquire(timeout=0.5):
            return (worker.last_rows, True)
        try:
            if worker.fold is not None:
                return (worker.fold.query_rows(), False)
            try:
                rows = self._roundtrip(worker, "rows", timeout=2.0)
            except (_ShardUnresponsive, EngineError):
                return (worker.last_rows, True)
            worker.last_rows = rows
            return (rows, False)
        finally:
            worker.lock.release()

    def query_rows(self) -> list[dict[str, Any]]:
        """Per-query cost rows with shard totals folded together.

        Additive fields (events routed, counter updates, live objects,
        partitions…) sum across the shards that hold a piece of the
        query; per-process latency quantiles are dropped rather than
        averaged wrongly.  A shard mid-restart marks ``stale`` exactly
        the queries it contributes to — its last-known rows, or every
        sharded query when it has nothing to contribute — so queries
        whose shards all answered fresh stay unflagged.
        """
        rows = {row["query"]: row for row in self._local.query_rows()}
        stale_queries: set[str] = set()
        if self._sharded and self._started:
            for worker in self._workers:
                self._try_flush(worker)
                shard_rows, stale = self._scrape_rows(worker)
                if stale:
                    if shard_rows:
                        stale_queries.update(
                            row["query"] for row in shard_rows
                        )
                    else:
                        # Nothing known about this shard: every
                        # sharded query misses its piece.
                        stale_queries.update(self._sharded)
                for row in shard_rows or ():
                    name = row["query"]
                    merged = rows.get(name)
                    if merged is None:
                        rows[name] = {
                            key: value
                            for key, value in row.items()
                            if key not in ("latency_us_p50", "latency_us_p99")
                        }
                        rows[name]["shards"] = 1
                        continue
                    merged["shards"] = merged.get("shards", 1) + 1
                    for key, value in row.items():
                        if key in _NON_ADDITIVE_ROW_KEYS:
                            continue
                        if isinstance(value, (int, float)):
                            merged[key] = merged.get(key, 0) + value
            for name in self._sharded:
                if name not in rows:
                    # Every holder of this query was unreachable: still
                    # surface the query, flagged, instead of dropping it.
                    rows[name] = {"query": name, "stale": True}
                elif name in stale_queries:
                    rows[name]["stale"] = True
        return [rows[name] for name in self._specs if name in rows]

    # ----- observability plane ----------------------------------------------

    def _pull_obs(self, worker: _Worker) -> None:
        """Refresh one worker's stored obs snapshot (never raises).

        Scrape-path only: short lock/poll deadlines, no revive — a
        shard mid-restart just keeps its previous snapshot, which the
        merger re-ingests idempotently.
        """
        if not worker.lock.acquire(timeout=0.25):
            return
        try:
            if worker.fold is not None or worker.conn is None:
                return
            try:
                while worker.conn.poll(0):
                    self._salvage_reply(worker, worker.conn.recv())
                worker.conn.send(("obs", None))
                if not worker.conn.poll(min(2.0, self._recv_timeout_s)):
                    return
                status, payload = worker.conn.recv()
            except CHANNEL_ERRORS:
                return
            if status == "ok":
                self._ingest_obs(worker, payload)
        finally:
            worker.lock.release()

    def _export_shard_health(self) -> None:
        """Publish supervision health as Prometheus series."""
        registry = self.obs_registry
        for health in (h.snapshot() for h in self._shard_health):
            shard = str(health["shard"])
            registry.counter(
                "repro_shard_restarts_total",
                "times this shard's worker process was restarted",
                shard=shard,
            ).value = float(health["restarts"])
            registry.gauge(
                "repro_shard_degraded",
                "1 when this shard has been folded into the local lane",
                shard=shard,
            ).set(1.0 if health["degraded"] else 0.0)
            age = health["heartbeat_age_s"]
            if age is not None:
                registry.gauge(
                    "repro_shard_heartbeat_age_seconds",
                    "seconds since this shard last answered a heartbeat",
                    shard=shard,
                ).set(age)

    def refresh_cost_metrics(self) -> None:
        """Refresh every lane's gauges and merge shard snapshots.

        Called by the admin server before ``/metrics``: local-lane and
        fold-lane engines refresh in-process; live workers are polled
        for a fresh snapshot (best-effort, stale-tolerant) and every
        stored snapshot is re-ingested into the shard merger so the
        router registry exports the whole fleet under ``shard=`` labels.
        """
        self._local.refresh_cost_metrics()
        for worker in self._workers:
            if worker.fold is not None:
                try:
                    worker.fold.refresh_cost_metrics()
                except Exception:
                    pass
        if self._supervise or self._started:
            self._export_shard_health()
        if self._merger is not None and self._started:
            for worker in self._workers:
                self._pull_obs(worker)
                state = worker.obs_state
                if state is not None:
                    generation, metrics = state
                    self._merger.ingest(
                        str(worker.index), metrics, generation=generation
                    )

    def drain_trace(self) -> dict[str, Any]:
        """Drain router + shard spans, stitched across the fleet.

        The admin server prefers this hook over its own tracer drain
        for sharded engines: spans recorded by workers (skew-corrected
        at ingestion) are merged with the router's own, and sampled
        trace ids are stitched into route → shard_ingest → merge spans.
        """
        if not self._trace_on:
            return {"spans": [], "recorded_total": 0, "enabled": False}
        spans = [
            {
                "seq": span.seq,
                "shard": "router",
                "ts": span.ts,
                "stage": span.stage,
                "event_type": span.event_type,
                "detail": span.detail,
                "trace_id": span.trace_id,
                "wall": span.wall,
            }
            for span in self._trace.spans()
        ]
        recorded_total = self._trace.recorded_total
        self._trace.clear()
        while self._shard_spans:
            spans.append(self._shard_spans.popleft())
        return {
            "enabled": True,
            "recorded_total": recorded_total,
            "spans": spans,
            "stitched": stitch_spans(spans),
        }

    def collapsed_profile(self) -> str | None:
        """Fleet-wide collapsed-stack profile, or ``None`` when off.

        Concatenates the router's samples (rooted ``router;``) with the
        latest counts each worker shipped (rooted ``shard-N;``) so one
        download feeds a single flamegraph of the whole fleet.
        """
        if not self._profile:
            return None
        sections: list[str] = []
        if self._profiler is not None:
            sections.append(
                collapsed_text(self._profiler.counts(), root="router")
            )
        for worker in self._workers:
            if worker.profile:
                sections.append(
                    collapsed_text(
                        worker.profile, root=f"shard-{worker.index}"
                    )
                )
        text = "".join(sections)
        return text if text else "# no samples yet\n"

    def executor_of(self, name: str) -> Any:
        """Local-lane executors only; sharded state lives in workers."""
        if name in self._local_names:
            return self._local.executor_of(name)
        raise EngineError(
            f"query {name!r} is sharded; its executors live in worker "
            f"processes — see inspect()"
        )

    def state_of(self, query_id: str) -> dict[str, Any] | None:
        """Structured state for one query (admin ``/queries/<id>/state``).

        Local-lane queries dump their in-process executor; sharded
        queries return every worker's piece side by side.
        """
        if query_id not in self._specs:
            return None
        if query_id in self._local_names:
            from repro.obs.inspect import state_of

            return state_of(self._local, query_id)
        if not self._started:
            return {"kind": "sharded", "query": query_id, "shards": []}
        return {
            "kind": "sharded",
            "query": query_id,
            "shards": self._collect("state", query_id),
        }

    @property
    def funnel(self) -> FunnelRecorder:
        """The router-side funnel recorder. Its registry is always the
        merge target the worker funnel snapshots land in, so readers
        (workload profile, admin) can go straight to
        ``engine.funnel.registry``."""
        return self._funnel

    def explain(self) -> dict[str, Any]:
        """Structured plan: routing lane per query (see
        :mod:`repro.obs.explain`)."""
        from repro.obs.explain import explain_engine
        return explain_engine(self)

    def inspect(self) -> dict[str, Any]:
        workers: list[Any] = []
        if self._sharded and self._started:
            workers = self._collect("inspect")
        return {
            "kind": "sharded",
            "stream": self.stream_name,
            "shards": self.shards,
            "batch_size": self.batch_size,
            "shard_attribute": self.shard_attribute,
            "events": self.metrics.events,
            "watermark_ms": self.watermark_ms,
            "sharded_queries": list(self._sharded),
            "local_queries": list(self._local_names),
            "local": self._local.inspect(),
            "workers": workers,
            "supervised": self._supervise,
            "transport": self._transport.describe(),
            "router_journal": self._router_log is not None,
            "degraded_shards": sorted(self.degraded_shards),
            "shed_events": self.shed_events,
            "shard_health": self.shard_health(),
            "membership": self.membership_view(),
            "routing_version": self.routing_version,
            "migrations": self.migrations,
        }


def _feed_fold(
    fold: StreamEngine, records: list[tuple[str, int, dict | None]]
) -> int:
    """Feed replayed/live records to a fold lane one by one; a poison
    record is dropped (and counted) rather than wedging the degraded
    shard forever or taking its whole batch down with it."""
    dropped = 0
    for event_type, ts, attrs in records:
        try:
            fold.process(Event(event_type, ts, attrs))
        except Exception:
            dropped += 1
    return dropped


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
