"""Multi-core execution: hash-partitioned worker engines.

:class:`ShardedStreamEngine` runs one full :class:`StreamEngine` per
worker *process*, each owning a hash-partition of the stream keyed by a
partition attribute. The legality argument is the paper's own (HPC,
Sec. 3.4): a query with an equivalence chain or GROUP BY evaluates
independently per key, and because a hash assigns every key to exactly
one shard, per-shard results compose exactly —

* COUNT / SUM add across shards;
* AVG folds ``count_and_wsum()`` pairs (counts and weighted sums add;
  dividing once at the end loses nothing);
* MAX / MIN take the extremum of per-shard extrema;
* GROUP BY is a dict union: group values never straddle shards because
  the shard key *is* (or leads) the group key.

Queries that cannot be partitioned on the chosen attribute — no
equivalence chain or GROUP BY, or one on a different attribute — run on
a **local lane**: an in-process routed :class:`StreamEngine` that sees
every event, so their semantics (including per-TRIG sink emissions) are
exactly those of the single-process engine. Sharded queries deliver
their merged result to sinks once per :meth:`run` (per-TRIG emission
order is undefined across processes, so it is not simulated).

The shard hash must agree across processes, so it is
``zlib.crc32(repr(key))`` — Python's builtin ``hash`` is randomized
per process and would route the same key differently in parent and
tests.

When NOT to shard: workloads dominated by queries without a partition
key (everything lands on the local lane plus IPC overhead), tiny
streams (worker startup costs more than it saves), or single-core
hosts (the workers time-slice one CPU and IPC is pure overhead).
"""

from __future__ import annotations

import multiprocessing as mp
import time
import zlib
from typing import Any, Iterable

from repro.errors import EngineError, QueryError
from repro.events.event import Event
from repro.core.hpc import partition_attributes
from repro.engine.engine import StreamEngine
from repro.engine.metrics import EngineMetrics
from repro.engine.sinks import Output, ResultSink
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.query.ast import AggKind, Query

#: query_rows() fields that are per-process distributions, not totals —
#: summing them across shards would be meaningless.
_NON_ADDITIVE_ROW_KEYS = frozenset(
    {"query", "runtime_kind", "latency_us_p50", "latency_us_p99"}
)


def shard_of(key: Any, shards: int) -> int:
    """Deterministic cross-process shard assignment for one key."""
    return zlib.crc32(repr(key).encode("utf-8")) % shards


def _shard_worker(
    conn: Any,
    specs: list[tuple[str, Query]],
    vectorized: bool,
) -> None:
    """Worker loop: a routed StreamEngine over one hash-partition.

    Protocol (request, reply over one duplex pipe):

    * ``("batch", [(type, ts, attrs), ...])`` — ingest; no reply (the
      pipe's buffer provides natural backpressure via ``send``).
    * ``("collect", watermark_ms)`` — advance clocks to the global
      watermark, reply ``("ok", {name: partial})`` with composable
      partial results (see :func:`_partial_of`).
    * ``("rows", None)`` — reply per-query cost rows.
    * ``("inspect", None)`` — reply the engine's state summary.
    * ``("stop", None)`` — reply and exit.

    Any exception is reported as ``("error", repr)`` on the next
    request that expects a reply, then the worker exits.
    """
    engine = StreamEngine(routed=True, vectorized=vectorized)
    executors = {
        name: engine.register(query, name=name) for name, query in specs
    }
    failure: str | None = None
    while True:
        try:
            command, payload = conn.recv()
        except (EOFError, OSError):
            return
        if command == "batch":
            if failure is not None:
                continue  # poisoned: drain silently until collected
            try:
                engine.process_batch(
                    [Event(t, ts, attrs) for t, ts, attrs in payload]
                )
            except Exception as error:  # report on next collect
                failure = f"{type(error).__name__}: {error}"
        elif command == "collect":
            if failure is not None:
                conn.send(("error", failure))
                return
            try:
                engine.advance_clock(int(payload))
                partials = {
                    name: _partial_of(executor)
                    for name, executor in executors.items()
                }
                conn.send(("ok", partials))
            except Exception as error:
                conn.send(("error", f"{type(error).__name__}: {error}"))
                return
        elif command == "rows":
            conn.send(("ok", engine.query_rows()))
        elif command == "inspect":
            conn.send(("ok", engine.inspect()))
        elif command == "state":
            from repro.obs.inspect import state_of

            conn.send(("ok", state_of(engine, payload)))
        elif command == "stop":
            conn.send(("ok", engine.metrics.events))
            return


def _partial_of(executor: Any) -> Any:
    """One shard's composable partial result for one query.

    AVG ships ``(count, wsum)`` pairs — scalar or per-group — because
    per-shard averages do not compose; everything else ships its plain
    result.
    """
    query = executor.query
    if query.aggregate.kind is AggKind.AVG:
        if query.group_by is not None:
            return executor.group_count_and_wsum()
        return executor.count_and_wsum()
    return executor.result()


def _merge_partials(query: Query, partials: list[Any]) -> Any:
    """Fold per-shard partials into the single-process result."""
    kind = query.aggregate.kind
    if query.group_by is not None:
        if kind is AggKind.AVG:
            totals: dict[Any, tuple[int, float]] = {}
            for partial in partials:
                for group, (count, wsum) in partial.items():
                    base_count, base_wsum = totals.get(group, (0, 0.0))
                    totals[group] = (base_count + count, base_wsum + wsum)
            return {
                group: (wsum / count if count else None)
                for group, (count, wsum) in totals.items()
            }
        merged: dict[Any, Any] = {}
        for partial in partials:
            for group, value in partial.items():
                if group not in merged:
                    merged[group] = value
                elif kind in (AggKind.COUNT, AggKind.SUM):
                    # Unreachable when the shard key leads the group key
                    # (groups are disjoint across shards), but merge
                    # soundly anyway.
                    merged[group] += value
                elif value is not None:
                    held = merged[group]
                    if held is None:
                        merged[group] = value
                    elif kind is AggKind.MAX:
                        merged[group] = max(held, value)
                    else:
                        merged[group] = min(held, value)
        return merged
    if kind in (AggKind.COUNT, AggKind.SUM):
        return sum(partials)
    if kind is AggKind.AVG:
        count = sum(pair[0] for pair in partials)
        wsum = sum(pair[1] for pair in partials)
        return wsum / count if count else None
    extrema = [value for value in partials if value is not None]
    if not extrema:
        return None
    return max(extrema) if kind is AggKind.MAX else min(extrema)


class _Worker:
    """Parent-side handle: process, pipe, and the outgoing buffer."""

    __slots__ = ("process", "conn", "buffer")

    def __init__(self, process: Any, conn: Any):
        self.process = process
        self.conn = conn
        self.buffer: list[tuple[str, int, dict | None]] = []


class ShardedStreamEngine:
    """Hash-partitioned multi-process variant of :class:`StreamEngine`.

    Same registration surface (``register`` / ``run`` / ``results`` /
    ``query_rows`` / ``inspect``), duck-type compatible with the admin
    server. Workers start lazily on the first ingested event, so all
    queries must be registered before ingestion begins.
    """

    def __init__(
        self,
        shards: int = 2,
        batch_size: int = 256,
        vectorized: bool = False,
        registry: MetricsRegistry | None = None,
        stream_name: str = "sharded",
        start_method: str | None = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.shards = shards
        self.batch_size = batch_size
        self._vectorized = vectorized
        self.stream_name = stream_name
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self.metrics = EngineMetrics()
        self.obs_registry = resolve_registry(registry)
        #: All registrations, in order: name -> (query, sinks).
        self._specs: dict[str, tuple[Query, list[ResultSink]]] = {}
        #: The partition attribute all sharded queries agree on.
        self.shard_attribute: str | None = None
        self._sharded: dict[str, Query] = {}
        #: Relevant types of the sharded queries (IPC filter).
        self._sharded_types: frozenset[str] = frozenset()
        #: Non-partitionable queries run here, in-process.
        self._local = StreamEngine(
            routed=True,
            vectorized=vectorized,
            registry=registry,
            stream_name=f"{stream_name}-local",
        )
        self._local_names: list[str] = []
        self._workers: list[_Worker] = []
        self._started = False
        self._closed = False
        self._clock_ms: int | None = None

    # ----- registration ------------------------------------------------------

    def register(
        self,
        query: Query,
        *sinks: ResultSink,
        name: str | None = None,
    ) -> None:
        """Register a query; must happen before the first event."""
        if self._started:
            raise EngineError(
                "register all queries before ingesting events; the worker "
                "processes are built from the registration set"
            )
        name = name or query.name or f"q{len(self._specs)}"
        if name in self._specs:
            raise EngineError(f"duplicate query name {name!r}")
        try:
            attributes = partition_attributes(query)
        except QueryError:
            attributes = ()
        leading = attributes[0] if attributes else None
        if leading is not None and self.shard_attribute is None:
            self.shard_attribute = leading
        self._specs[name] = (query, list(sinks))
        if leading is not None and leading == self.shard_attribute:
            self._sharded[name] = query
            self._sharded_types = self._sharded_types | frozenset(
                query.relevant_types
            )
        else:
            self._local.register(query, *sinks, name=name)
            self._local_names.append(name)

    # ----- worker lifecycle --------------------------------------------------

    def _start(self) -> None:
        specs = list(self._sharded.items())
        for _ in range(self.shards):
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=_shard_worker,
                args=(child_conn, specs, self._vectorized),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append(_Worker(process, parent_conn))
        self._started = True

    def close(self) -> None:
        """Stop the workers; idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(("stop", None))
                worker.conn.recv()
            except (OSError, EOFError, BrokenPipeError):
                pass
            worker.conn.close()
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
        self._workers.clear()

    def __enter__(self) -> "ShardedStreamEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ----- ingestion ---------------------------------------------------------

    def process(self, event: Event) -> None:
        """Route one event: local lane always, worker lane by key."""
        if not self._started:
            self._start()
        self.metrics.events += 1
        ts = event.ts
        if self._clock_ms is None or ts > self._clock_ms:
            self._clock_ms = ts
        self._local.process(event)
        if not self._sharded:
            return
        if event.event_type not in self._sharded_types:
            # No sharded pattern reacts to this type; workers sync their
            # clocks from the watermark at collect time instead.
            return
        record = (event.event_type, ts, event.attrs or None)
        key = event.get(self.shard_attribute, _MISSING)
        if key is _MISSING:
            # Keyless (e.g. a negated type without the attribute):
            # every partition is affected — broadcast (HPC does the
            # same across its in-process partitions).
            for worker in self._workers:
                self._buffer(worker, record)
        else:
            self._buffer(self._workers[shard_of(key, self.shards)], record)

    def _buffer(
        self, worker: _Worker, record: tuple[str, int, dict | None]
    ) -> None:
        buffer = worker.buffer
        buffer.append(record)
        if len(buffer) >= self.batch_size:
            worker.conn.send(("batch", buffer))
            worker.buffer = []

    def flush(self) -> None:
        """Push every buffered event down to its worker."""
        for worker in self._workers:
            if worker.buffer:
                worker.conn.send(("batch", worker.buffer))
                worker.buffer = []

    def run(self, stream: Iterable[Event]) -> int:
        """Drain a stream; deliver merged finals to sharded-query sinks."""
        started = time.perf_counter()
        processed = 0
        for event in stream:
            self.process(event)
            processed += 1
        merged = self._merged_results()
        ts = int(self._clock_ms or 0)
        for name, value in merged.items():
            _, sinks = self._specs[name]
            if not sinks:
                continue
            output = Output(name, ts, value)
            for sink in sinks:
                try:
                    sink.emit(output)
                except Exception:
                    self.metrics.sink_errors += 1
        self.metrics.elapsed_s += time.perf_counter() - started
        return processed

    # ----- results -----------------------------------------------------------

    def _collect(self, command: str, payload: Any = None) -> list[Any]:
        """Round-trip one request to every worker (flushes first)."""
        if not self._started:
            self._start()
        self.flush()
        for worker in self._workers:
            worker.conn.send((command, payload))
        replies = []
        for index, worker in enumerate(self._workers):
            try:
                status, value = worker.conn.recv()
            except (EOFError, OSError) as error:
                raise EngineError(
                    f"shard {index} died: {error!r}"
                ) from error
            if status != "ok":
                raise EngineError(f"shard {index} failed: {value}")
            replies.append(value)
        return replies

    def _merged_results(self) -> dict[str, Any]:
        if not self._sharded:
            return {}
        watermark = int(self._clock_ms or 0)
        partials_by_shard = self._collect("collect", watermark)
        return {
            name: _merge_partials(
                query,
                [partials[name] for partials in partials_by_shard],
            )
            for name, query in self._sharded.items()
        }

    def results(self) -> dict[str, Any]:
        """Merged aggregates of every query, in registration order."""
        merged = self._merged_results()
        local = self._local.results()
        return {
            name: (merged[name] if name in merged else local[name])
            for name in self._specs
        }

    def result(self, name: str) -> Any:
        if name not in self._specs:
            raise EngineError(f"unknown query {name!r}")
        if name in self._sharded:
            return self._merged_results()[name]
        return self._local.result(name)

    # ----- introspection -----------------------------------------------------

    @property
    def query_names(self) -> list[str]:
        return list(self._specs)

    @property
    def watermark_ms(self) -> float | None:
        return None if self._clock_ms is None else float(self._clock_ms)

    def query_rows(self) -> list[dict[str, Any]]:
        """Per-query cost rows with shard totals folded together.

        Additive fields (events routed, counter updates, live objects,
        partitions…) sum across the shards that hold a piece of the
        query; per-process latency quantiles are dropped rather than
        averaged wrongly.
        """
        rows = {row["query"]: row for row in self._local.query_rows()}
        if self._sharded and self._started:
            for shard_rows in self._collect("rows"):
                for row in shard_rows:
                    name = row["query"]
                    merged = rows.get(name)
                    if merged is None:
                        rows[name] = {
                            key: value
                            for key, value in row.items()
                            if key not in ("latency_us_p50", "latency_us_p99")
                        }
                        rows[name]["shards"] = 1
                        continue
                    merged["shards"] = merged.get("shards", 1) + 1
                    for key, value in row.items():
                        if key in _NON_ADDITIVE_ROW_KEYS:
                            continue
                        if isinstance(value, (int, float)):
                            merged[key] = merged.get(key, 0) + value
        return [rows[name] for name in self._specs if name in rows]

    def refresh_cost_metrics(self) -> None:
        self._local.refresh_cost_metrics()

    def executor_of(self, name: str) -> Any:
        """Local-lane executors only; sharded state lives in workers."""
        if name in self._local_names:
            return self._local.executor_of(name)
        raise EngineError(
            f"query {name!r} is sharded; its executors live in worker "
            f"processes — see inspect()"
        )

    def state_of(self, query_id: str) -> dict[str, Any] | None:
        """Structured state for one query (admin ``/queries/<id>/state``).

        Local-lane queries dump their in-process executor; sharded
        queries return every worker's piece side by side.
        """
        if query_id not in self._specs:
            return None
        if query_id in self._local_names:
            from repro.obs.inspect import state_of

            return state_of(self._local, query_id)
        if not self._started:
            return {"kind": "sharded", "query": query_id, "shards": []}
        return {
            "kind": "sharded",
            "query": query_id,
            "shards": self._collect("state", query_id),
        }

    def inspect(self) -> dict[str, Any]:
        workers: list[Any] = []
        if self._sharded and self._started:
            workers = self._collect("inspect")
        return {
            "kind": "sharded",
            "stream": self.stream_name,
            "shards": self.shards,
            "batch_size": self.batch_size,
            "shard_attribute": self.shard_attribute,
            "events": self.metrics.events,
            "watermark_ms": self.watermark_ms,
            "sharded_queries": list(self._sharded),
            "local_queries": list(self._local_names),
            "local": self._local.inspect(),
            "workers": workers,
        }


class _Missing:
    __slots__ = ()


_MISSING = _Missing()
